"""Dependency-DAG discovery (paper section 2.2.2).

"Dependencies between transactions is represented by a directed acyclic
graph (DAG), which is discovered by nodes in the consensus stage through
concurrency control or software transaction memory."

We discover the DAG the way a consensus-stage node can: speculatively
execute the candidate batch once (on a throwaway copy of the state) while
recording read/write sets, then draw an edge i → j (i before j in block
order) whenever the two access sets conflict or the transactions share a
sender (nonce ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .journal import ExecutionArtifact, capture_artifact
from .state import WorldState
from .transaction import Transaction


def discover_access_sets(
    transactions: list[Transaction],
    state: WorldState,
    block_context=None,
    trace: bool = False,
) -> list[ExecutionArtifact]:
    """Speculatively execute the batch once, keeping everything it found.

    Returns one :class:`~repro.chain.journal.ExecutionArtifact` per
    transaction — access set, receipt, write journal, read values and
    (with ``trace=True``) the dataflow trace — so consumers can *reuse*
    the pre-execution instead of running the EVM a second time. The
    artifact list is access-set-compatible (``.reads`` / ``.writes`` /
    ``conflicts_with``), so it drops directly into
    :func:`build_dag_edges` and :func:`verify_dag`.

    The input *state* is left untouched: execution happens in place under
    a journal snapshot that is reverted at the end (no more deep-copying
    the whole world state per block, so pre-execution cost scales with
    the block, not with total chain state).
    """
    from ..evm.context import BlockContext  # local imports avoid a cycle
    from ..evm.interpreter import EVM
    from ..evm.tracer import Tracer

    context = block_context or BlockContext()
    artifacts: list[ExecutionArtifact] = []
    block_token = state.snapshot()
    saved_access, state.access = state.access, None
    try:
        for tx in transactions:
            tracer = Tracer() if trace else None
            evm = EVM(state, block=context, tracer=tracer)
            tx_token = state.snapshot()
            access = state.begin_access_tracking()
            try:
                receipt = evm.execute_transaction(tx)
            finally:
                state.end_access_tracking()
            artifacts.append(capture_artifact(
                state, tx, receipt, access,
                state.changes_since(tx_token),
                coinbase=context.coinbase,
                steps=tracer.steps if tracer is not None else None,
            ))
    finally:
        state.access = None
        state.revert(block_token)
        state.access = saved_access
    return artifacts


def build_dag_edges(
    transactions: list[Transaction],
    access_sets: list,
) -> list[tuple[int, int]]:
    """Conflict edges (i, j) with i < j in block order.

    Includes read/write-set conflicts and same-sender ordering. The result
    is acyclic by construction (edges always point forward in block order)
    and identical — order included — to the reference pairwise builder
    (:func:`build_dag_edges_pairwise`), but is computed from an inverted
    index keyed by ``(address, slot)``: cost is proportional to the total
    number of accesses (plus output edges), not to the square of the
    block size. *access_sets* may be :class:`~repro.chain.state.AccessSet`
    or :class:`~repro.chain.journal.ExecutionArtifact` instances.
    """
    edges: set[tuple[int, int]] = set()

    # Same-sender ordering: every pair within a sender group.
    by_sender: dict[int, list[int]] = {}
    for index, tx in enumerate(transactions):
        by_sender.setdefault(tx.sender, []).append(index)
    for group in by_sender.values():
        for a in range(len(group)):
            for b in range(a + 1, len(group)):
                edges.add((group[a], group[b]))

    # Inverted index: key -> (writer indices, reader indices).
    writers: dict[tuple, list[int]] = {}
    readers: dict[tuple, list[int]] = {}
    for index, access in enumerate(access_sets):
        for key in access.writes:
            writers.setdefault(key, []).append(index)
        for key in access.reads:
            readers.setdefault(key, []).append(index)

    for key, writer_list in writers.items():
        # W/W conflicts.
        for a in range(len(writer_list)):
            for b in range(a + 1, len(writer_list)):
                i, j = writer_list[a], writer_list[b]
                edges.add((i, j) if i < j else (j, i))
        # W/R and R/W conflicts.
        for w in writer_list:
            for r in readers.get(key, ()):
                if w != r:
                    edges.add((w, r) if w < r else (r, w))

    return sorted(edges, key=lambda edge: (edge[1], edge[0]))


def build_dag_edges_pairwise(
    transactions: list[Transaction],
    access_sets: list,
) -> list[tuple[int, int]]:
    """Reference O(n²) pairwise conflict builder.

    Kept as the executable specification :func:`build_dag_edges` is
    property-tested against (`tests/chain/test_dag_index.py`).
    """
    edges: list[tuple[int, int]] = []
    for j in range(len(transactions)):
        for i in range(j):
            if transactions[i].sender == transactions[j].sender:
                edges.append((i, j))
            elif access_sets[i].conflicts_with(access_sets[j]):
                edges.append((i, j))
    return edges


def transitive_reduction(
    count: int, edges: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Drop edges implied by transitivity (keeps schedules identical).

    The paper stores the DAG in the block; a reduced DAG is smaller on the
    wire and speeds up the scheduler's indegree bookkeeping.
    """
    successors: list[set[int]] = [set() for _ in range(count)]
    for i, j in edges:
        successors[i].add(j)

    # reach[i] = nodes reachable from i via >=2 hops
    reach_two: list[set[int]] = [set() for _ in range(count)]
    for i in range(count - 1, -1, -1):
        for j in successors[i]:
            reach_two[i] |= successors[j]
            reach_two[i] |= reach_two[j]

    return [(i, j) for i, j in edges if j not in reach_two[i]]


@dataclass
class DagVerification:
    """Outcome of checking a block-embedded DAG against local analysis.

    ``ok`` is True only when the DAG is structurally sound, acyclic, and
    covers every read/write conflict the validator discovered locally —
    the condition for the spatio-temporal schedule to be serializable.
    """

    ok: bool
    #: Structural defects: out-of-range endpoints, self-loops.
    malformed_edges: list[tuple[int, int]] = field(default_factory=list)
    #: True when the edge set contains a directed cycle (including any
    #: backward edge, which closes a cycle with block order).
    cyclic: bool = False
    #: Locally-discovered dependency pairs with no ordering path in the
    #: block DAG (the fatal case: the schedule could reorder them).
    missing_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Block edges not justified by any local dependency (an adversary
    #: can use these to serialize the whole block — a slowdown attack).
    spurious_edges: list[tuple[int, int]] = field(default_factory=list)

    def reason(self) -> str:
        """Human-readable one-line failure summary."""
        if self.ok:
            return "ok"
        parts = []
        if self.malformed_edges:
            parts.append(f"{len(self.malformed_edges)} malformed edge(s)")
        if self.cyclic:
            parts.append("cycle")
        if self.missing_pairs:
            parts.append(f"{len(self.missing_pairs)} uncovered conflict(s)")
        if self.spurious_edges:
            parts.append(f"{len(self.spurious_edges)} spurious edge(s)")
        return ", ".join(parts)


def _closure(count: int, successors: list[int]) -> list[int]:
    """Reachability bitmasks for a forward-edge DAG (index order is a
    valid topological order, so one reverse sweep suffices)."""
    reach = [0] * count
    for i in range(count - 1, -1, -1):
        mask = successors[i]
        reachable = mask
        while mask:
            j = (mask & -mask).bit_length() - 1
            reachable |= reach[j]
            mask &= mask - 1
        reach[i] = reachable
    return reach


def verify_dag(
    count: int,
    edges: list[tuple[int, int]],
    required_pairs: set[tuple[int, int]],
) -> DagVerification:
    """Check a block-embedded DAG before trusting it for scheduling.

    *required_pairs* are the direct dependency pairs (i, j), i < j, the
    validator derived from its own speculative execution
    (:func:`build_dag_edges` output). The block DAG passes iff:

    1. every edge is in range and loop-free;
    2. the edge set is acyclic (block DAGs may only point forward);
    3. every required pair is connected by a directed path (conflict
       coverage — transitive reduction by the proposer is fine);
    4. every block edge lies within the transitive closure of the
       required pairs (no fabricated ordering constraints).
    """
    result = DagVerification(ok=True)
    forward: list[int] = [0] * count
    for i, j in edges:
        if not (0 <= i < count and 0 <= j < count) or i == j:
            result.malformed_edges.append((i, j))
            continue
        if i > j:
            # A backward edge closes a cycle with the forward ordering
            # the rest of the pipeline assumes.
            result.cyclic = True
            continue
        forward[i] |= 1 << j

    block_reach = _closure(count, forward)

    required_forward: list[int] = [0] * count
    for i, j in required_pairs:
        required_forward[i] |= 1 << j
    required_reach = _closure(count, required_forward)

    for i, j in sorted(required_pairs):
        if not (block_reach[i] >> j) & 1:
            result.missing_pairs.append((i, j))
    for i, j in edges:
        if 0 <= i < j < count and not (required_reach[i] >> j) & 1:
            result.spurious_edges.append((i, j))

    result.ok = not (
        result.malformed_edges
        or result.cyclic
        or result.missing_pairs
        or result.spurious_edges
    )
    return result


def rebuild_dag(
    transactions: list[Transaction],
    state: WorldState,
    block_context=None,
) -> tuple[list[tuple[int, int]], list[ExecutionArtifact]]:
    """Locally re-derive a block's dependency DAG (untrusted-DAG path).

    Returns the transitively-reduced edges plus the execution artifacts
    so the caller can reuse them (verification bookkeeping, and the
    execute-once pipeline's replay path).
    """
    artifacts = discover_access_sets(transactions, state, block_context)
    edges = transitive_reduction(
        len(transactions), build_dag_edges(transactions, artifacts)
    )
    return edges, artifacts


def to_networkx(count: int, edges: list[tuple[int, int]]):
    """The dependency DAG as a networkx DiGraph (for graph analytics:
    longest paths, width, visualization)."""
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(range(count))
    graph.add_edges_from(edges)
    return graph


def dependency_ratio(count: int, edges: list[tuple[int, int]]) -> float:
    """Fraction of transactions with at least one incoming dependency.

    This is the x-axis of the paper's Figs. 14–16 and Table 9.
    """
    if count == 0:
        return 0.0
    dependent = {j for _, j in edges}
    return len(dependent) / count


def indegrees(count: int, edges: list[tuple[int, int]]) -> list[int]:
    """Indegree per transaction index."""
    degrees = [0] * count
    for _, j in edges:
        degrees[j] += 1
    return degrees


def critical_path_length(count: int, edges: list[tuple[int, int]]) -> int:
    """Longest chain length (in transactions) through the DAG."""
    successors: list[list[int]] = [[] for _ in range(count)]
    for i, j in edges:
        successors[i].append(j)
    depth = [1] * count
    # Edges point forward in index order, so a reverse sweep is a valid
    # topological order.
    for i in range(count - 1, -1, -1):
        for j in successors[i]:
            depth[i] = max(depth[i], 1 + depth[j])
    return max(depth, default=0)
