"""Blocks and block headers (paper Table 4 "Block Header").

A block carries its transactions *and* the serialized inter-transaction
dependency DAG: the paper (footnote 3) notes that "DAGs are serialised and
persistently stored in blocks" by the consensus stage so every verifying
node can schedule in parallel without re-deriving dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import keccak256
from . import rlp
from .transaction import Transaction

#: Number of recent block hashes reachable by BLOCKHASH (paper Table 4).
BLOCKHASH_WINDOW = 256


@dataclass(frozen=True)
class BlockHeader:
    """Fixed-length block metadata (paper Table 4)."""

    height: int
    timestamp: int
    coinbase: int
    difficulty: int
    gas_limit: int
    parent_hash: bytes = b"\x00" * 32

    def to_rlp(self) -> bytes:
        return rlp.encode(
            [
                rlp.encode_int(self.height),
                rlp.encode_int(self.timestamp),
                rlp.encode_int(self.coinbase),
                rlp.encode_int(self.difficulty),
                rlp.encode_int(self.gas_limit),
                self.parent_hash,
            ]
        )

    def hash(self) -> bytes:
        return keccak256(self.to_rlp())


@dataclass
class Block:
    """A block: header, transaction batch, and the serialized DAG."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)
    #: Dependency edges as (i, j) index pairs: transaction j depends on the
    #: execution result of transaction i (i must commit before j starts).
    dag_edges: list[tuple[int, int]] = field(default_factory=list)
    #: Hashes of up to the previous 256 blocks, most recent first
    #: (services the BLOCKHASH instruction).
    recent_hashes: list[bytes] = field(default_factory=list)
    #: Consensus-stage pre-execution artifacts, one per transaction
    #: (:class:`~repro.chain.journal.ExecutionArtifact`). Node-local —
    #: never serialized; executors use them for execute-once replay.
    artifacts: list | None = field(default=None, repr=False, compare=False)

    def to_rlp(self) -> bytes:
        return rlp.encode(
            [
                self.header.to_rlp(),
                [tx.to_rlp() for tx in self.transactions],
                [
                    [rlp.encode_int(i), rlp.encode_int(j)]
                    for i, j in self.dag_edges
                ],
            ]
        )

    @classmethod
    def from_rlp(cls, blob: bytes) -> "Block":
        item = rlp.decode(blob)
        if not isinstance(item, list) or len(item) != 3:
            raise rlp.RLPDecodingError("block must be a 3-item list")
        header_blob, tx_items, edge_items = item
        header_fields = rlp.decode(header_blob)
        header = BlockHeader(
            height=rlp.decode_int(header_fields[0]),
            timestamp=rlp.decode_int(header_fields[1]),
            coinbase=rlp.decode_int(header_fields[2]),
            difficulty=rlp.decode_int(header_fields[3]),
            gas_limit=rlp.decode_int(header_fields[4]),
            parent_hash=header_fields[5],
        )
        # Each transaction is embedded as its own RLP blob (a byte string
        # item), so it decodes directly.
        transactions = [Transaction.from_rlp(t) for t in tx_items]
        edges = [
            (rlp.decode_int(edge[0]), rlp.decode_int(edge[1]))
            for edge in edge_items
        ]
        return cls(header=header, transactions=transactions, dag_edges=edges)

    def hash(self) -> bytes:
        return self.header.hash()

    def blockhash(self, height: int) -> int:
        """BLOCKHASH semantics: hash of one of the 256 most recent blocks."""
        distance = self.header.height - height
        if distance < 1 or distance > BLOCKHASH_WINDOW:
            return 0
        if distance - 1 < len(self.recent_hashes):
            return int.from_bytes(self.recent_hashes[distance - 1], "big")
        return 0
