"""Blocks and block headers (paper Table 4 "Block Header").

A block carries its transactions *and* the serialized inter-transaction
dependency DAG: the paper (footnote 3) notes that "DAGs are serialised and
persistently stored in blocks" by the consensus stage so every verifying
node can schedule in parallel without re-deriving dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto import keccak256
from . import rlp
from .transaction import Transaction

#: Number of recent block hashes reachable by BLOCKHASH (paper Table 4).
BLOCKHASH_WINDOW = 256


@dataclass(frozen=True)
class BlockHeader:
    """Fixed-length block metadata (paper Table 4)."""

    height: int
    timestamp: int
    coinbase: int
    difficulty: int
    gas_limit: int
    parent_hash: bytes = b"\x00" * 32
    #: Merkle root of the post-block world state (see repro.trie).
    #: Empty until sealed; a header without one (legacy wire form, or a
    #: node running with Merkleization off) still round-trips.
    state_root: bytes = b""

    def to_rlp(self) -> bytes:
        fields = [
            rlp.encode_int(self.height),
            rlp.encode_int(self.timestamp),
            rlp.encode_int(self.coinbase),
            rlp.encode_int(self.difficulty),
            rlp.encode_int(self.gas_limit),
            self.parent_hash,
        ]
        # Deprecation-window wire form: the 7th field is only emitted
        # once sealed, so unsealed headers keep their legacy encoding
        # (and hash) bit-identically.
        if self.state_root:
            fields.append(self.state_root)
        return rlp.encode(fields)

    @classmethod
    def from_rlp(cls, blob: bytes) -> "BlockHeader":
        """Decode a header; malformed input raises RLPDecodingError."""
        fields = rlp.as_list(rlp.decode(blob), "block header")
        if len(fields) not in (6, 7):
            raise rlp.RLPDecodingError(
                f"block header must be a 6- or 7-item list, "
                f"got {len(fields)}"
            )
        parent_hash = rlp.as_bytes(fields[5], "header parent_hash")
        if len(parent_hash) != 32:
            raise rlp.RLPDecodingError("header parent_hash must be 32 bytes")
        state_root = b""
        if len(fields) == 7:
            state_root = rlp.as_bytes(fields[6], "header state_root")
            if len(state_root) != 32:
                raise rlp.RLPDecodingError(
                    "header state_root must be 32 bytes"
                )
        return cls(
            height=rlp.decode_int(fields[0]),
            timestamp=rlp.decode_int(fields[1]),
            coinbase=rlp.decode_int(fields[2]),
            difficulty=rlp.decode_int(fields[3]),
            gas_limit=rlp.decode_int(fields[4]),
            parent_hash=parent_hash,
            state_root=state_root,
        )

    def hash(self) -> bytes:
        return keccak256(self.to_rlp())


@dataclass
class Block:
    """A block: header, transaction batch, and the serialized DAG."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)
    #: Dependency edges as (i, j) index pairs: transaction j depends on the
    #: execution result of transaction i (i must commit before j starts).
    dag_edges: list[tuple[int, int]] = field(default_factory=list)
    #: Hashes of up to the previous 256 blocks, most recent first
    #: (services the BLOCKHASH instruction).
    recent_hashes: list[bytes] = field(default_factory=list)
    #: Consensus-stage pre-execution artifacts, one per transaction
    #: (:class:`~repro.chain.journal.ExecutionArtifact`). Node-local —
    #: never serialized; executors use them for execute-once replay.
    artifacts: list | None = field(default=None, repr=False, compare=False)
    #: Conflict-aware packing lanes: index lists partitioning
    #: ``transactions`` into serial chains with no conflicts between
    #: lanes (``Mempool.take_packed``). Node-local — never serialized;
    #: the DAG in ``dag_edges`` stays the portable dependency encoding.
    packed_lanes: list[list[int]] | None = field(
        default=None, repr=False, compare=False
    )
    #: Width of the packed cut (transactions ÷ longest lane); ``None``
    #: for FIFO-packed blocks.
    packed_parallelism: float | None = field(
        default=None, repr=False, compare=False
    )

    def to_rlp(self) -> bytes:
        return rlp.encode(
            [
                self.header.to_rlp(),
                [tx.to_rlp() for tx in self.transactions],
                [
                    [rlp.encode_int(i), rlp.encode_int(j)]
                    for i, j in self.dag_edges
                ],
            ]
        )

    @classmethod
    def from_rlp(cls, blob: bytes) -> "Block":
        item = rlp.as_list(rlp.decode(blob), "block", 3)
        header_blob, tx_items, edge_items = item
        header = BlockHeader.from_rlp(
            rlp.as_bytes(header_blob, "block header")
        )
        # Each transaction is embedded as its own RLP blob (a byte string
        # item), so it decodes directly.
        transactions = [
            Transaction.from_rlp(rlp.as_bytes(t, "block transaction"))
            for t in rlp.as_list(tx_items, "block transactions")
        ]
        edges = []
        for edge in rlp.as_list(edge_items, "block dag edges"):
            pair = rlp.as_list(edge, "dag edge", 2)
            edges.append((rlp.decode_int(pair[0]), rlp.decode_int(pair[1])))
        return cls(header=header, transactions=transactions, dag_edges=edges)

    def hash(self) -> bytes:
        return self.header.hash()

    def blockhash(self, height: int) -> int:
        """BLOCKHASH semantics: hash of one of the 256 most recent blocks."""
        distance = self.header.height - height
        if distance < 1 or distance > BLOCKHASH_WINDOW:
            return 0
        if distance - 1 < len(self.recent_hashes):
            return int.from_bytes(self.recent_hashes[distance - 1], "big")
        return 0
