"""Mempool: the dissemination-stage transaction pool (paper Fig. 4).

The pool records *when* each transaction was first heard. The hotspot
optimizer's pre-execution relies on the paper's observation (via
Forerunner [12]) that 91.45%–98.15% of a block's transactions are already
known to a node before the block arrives; :meth:`Mempool.known_before`
exposes exactly that predicate.

Admission is hardened against hostile dissemination: transactions whose
gas limit cannot cover their intrinsic gas, or value-bearing transactions
from unfunded senders, are refused with a typed :class:`AdmissionError`
instead of silently pooling; a configurable capacity evicts oldest-first
so an attacker cannot grow the pool without bound. Re-announcing an
already-pooled hash raises :class:`DuplicateTransactionError`, and an
optional per-sender pending cap (:class:`SenderLimitError`) stops one
sender from flooding everyone else out through the capacity eviction.

Storage is insertion-ordered (Python dicts preserve insertion order and
``heard_at`` stamps are monotone in live operation), so ``take`` /
``take_packed`` / ``pending`` / eviction all walk arrival order without
re-sorting the pool; an explicit out-of-order ``heard_at`` (tests,
gossip replays) just marks the order dirty for one lazy re-sort.

Admission also builds each transaction's access-set bloom filter
(:mod:`repro.chain.bloom`), which :meth:`take_packed` uses for
FAFO-style conflict-aware block packing: greedily fill the cut with
mutually non-conflicting transactions grouped into parallel *lanes*,
deferring conflicters — bounded by an aging rule so nothing starves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import get_registry
from .bloom import AccessBloom, AccessEstimator, bloom_for_transaction
from .transaction import Transaction


class AdmissionError(ValueError):
    """A disseminated transaction failed the pool's intrinsic checks."""


class IntrinsicGasError(AdmissionError):
    """gas_limit is below the transaction's intrinsic gas."""


class InsufficientFundsError(AdmissionError):
    """A value-bearing transaction from a sender with no balance."""


class DuplicateTransactionError(AdmissionError):
    """The transaction's hash is already pooled."""


class SenderLimitError(AdmissionError):
    """The sender already has the maximum pending transactions."""


class _PoolEntry:
    __slots__ = ("tx", "heard_at", "bloom", "deferrals")

    def __init__(self, tx: Transaction, heard_at: int, bloom: AccessBloom):
        self.tx = tx
        self.heard_at = heard_at
        self.bloom = bloom
        #: Consecutive packed cuts that skipped this transaction.
        self.deferrals = 0


@dataclass(frozen=True)
class PackingPolicy:
    """Knobs for :meth:`Mempool.take_packed`.

    *lane_depth* caps how many transactions one conflict chain (lane)
    contributes per block once a second lane exists — it balances lanes
    for parallel dispatch; ``None`` leaves chains unbounded. With
    *aging_bound* deferrals behind it, a transaction is force-included
    (its conflicting lanes merge) rather than skipped again.
    *scan_window* bounds how far past the cut size the packer looks for
    non-conflicting fill (``None``: 8× the cut size).
    """

    lane_depth: int | None = None
    aging_bound: int = 8
    scan_window: int | None = None

    def __post_init__(self) -> None:
        if self.lane_depth is not None and self.lane_depth <= 0:
            raise ValueError("lane_depth must be positive")
        if self.aging_bound < 0:
            raise ValueError("aging_bound must be >= 0")
        if self.scan_window is not None and self.scan_window <= 0:
            raise ValueError("scan_window must be positive")


@dataclass
class PackedTake:
    """One conflict-aware cut: transactions, lanes, deferral stats.

    ``transactions`` preserves arrival order (the cut is a FIFO
    *subsequence*); ``lanes`` partitions its indices into serial
    conflict chains with no bloom conflicts *between* lanes, so the
    discovered DAG never crosses lanes and :mod:`repro.parallel` can
    dispatch them concurrently.
    """

    transactions: list[Transaction] = field(default_factory=list)
    lanes: list[list[int]] = field(default_factory=list)
    #: Transactions scanned but pushed to a later block this cut.
    deferred: int = 0
    #: Aged transactions force-included by merging their lanes.
    forced: int = 0

    @property
    def parallelism(self) -> float:
        """Width of the cut: transactions over the longest lane."""
        if not self.transactions:
            return 0.0
        longest = max(len(lane) for lane in self.lanes)
        return len(self.transactions) / longest


class Mempool:
    """Pending transactions, ordered by arrival."""

    def __init__(
        self,
        capacity: int | None = None,
        state=None,
        per_sender_cap: int | None = None,
        estimator: AccessEstimator | None = None,
        trust_estimates: bool = False,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("mempool capacity must be positive")
        if per_sender_cap is not None and per_sender_cap <= 0:
            raise ValueError("per-sender cap must be positive")
        self._pool: dict[bytes, _PoolEntry] = {}
        self._arrival_counter = 0
        #: Set when an explicit out-of-order ``heard_at`` broke the
        #: dict's insertion order; the next ordered walk re-sorts once.
        self._order_dirty = False
        #: Maximum pooled transactions; oldest are evicted beyond it.
        self.capacity = capacity
        #: Maximum pending transactions per sender; the sender's further
        #: submissions are refused (not others' evicted).
        self.per_sender_cap = per_sender_cap
        #: Pending-transaction count per sender address.
        self._by_sender: dict[int, int] = {}
        #: Optional world state used for balance-aware admission and the
        #: pure-transfer bloom derivation.
        self.state = state
        #: Optional last-seen access estimator for undeclared calls.
        self.estimator = estimator
        #: Reorder on heuristic (estimator) blooms too. Off by default:
        #: undeclared contract calls then get opaque blooms and are
        #: never reordered relative to anything.
        self.trust_estimates = trust_estimates

    def __len__(self) -> int:
        return len(self._pool)

    def _check_admission(self, tx: Transaction) -> None:
        # Intrinsic gas needs the fee schedule; imported lazily because
        # repro.evm transitively imports repro.chain at package init.
        from ..evm.gas import DEFAULT_SCHEDULE

        intrinsic = DEFAULT_SCHEDULE.intrinsic_gas(tx.data, tx.is_create)
        if tx.gas_limit < intrinsic:
            raise IntrinsicGasError(
                f"gas limit {tx.gas_limit} below intrinsic gas {intrinsic}"
            )
        if tx.value > 0 and self.state is not None:
            # Bypass access tracking: admission peeks must not pollute
            # any in-progress dependency analysis.
            saved_access = self.state.access
            self.state.access = None
            try:
                balance = self.state.get_balance(tx.sender)
            finally:
                self.state.access = saved_access
            if balance == 0:
                raise InsufficientFundsError(
                    f"sender {tx.sender:#x} has no balance for a "
                    f"value-bearing transaction"
                )

    def add(
        self,
        tx: Transaction,
        heard_at: int | None = None,
        bloom: AccessBloom | None = None,
    ) -> bool:
        """Record a disseminated transaction (unique by hash).

        Returns True when newly pooled. Raises :class:`AdmissionError`
        when the transaction fails intrinsic checks, is a duplicate of a
        pooled hash, or would push its sender past the per-sender cap
        (in every case it is not pooled). *bloom* carries a previously
        derived access bloom across a spill/readmit cycle; by default
        one is built here, at admission, where the caller already holds
        whatever lock guards :attr:`state`.
        """
        registry = get_registry()
        tx_hash = tx.hash()
        try:
            if tx_hash in self._pool:
                registry.counter("mempool.duplicates").inc()
                raise DuplicateTransactionError(
                    f"transaction {tx_hash.hex()[:16]}… already pooled"
                )
            if (
                self.per_sender_cap is not None
                and self._by_sender.get(tx.sender, 0) >= self.per_sender_cap
            ):
                raise SenderLimitError(
                    f"sender {tx.sender:#x} already has "
                    f"{self.per_sender_cap} pending transactions"
                )
            self._check_admission(tx)
        except AdmissionError as err:
            registry.counter(
                "mempool.rejections", reason=type(err).__name__
            ).inc()
            raise
        if heard_at is None:
            heard_at = self._arrival_counter
        elif self._pool and heard_at < next(
            reversed(self._pool.values())
        ).heard_at:
            self._order_dirty = True
        self._arrival_counter = max(self._arrival_counter, heard_at) + 1
        if bloom is None:
            bloom = bloom_for_transaction(
                tx,
                state=self.state,
                estimator=self.estimator,
                trust_estimates=self.trust_estimates,
            )
        self._pool[tx_hash] = _PoolEntry(tx, heard_at, bloom)
        self._by_sender[tx.sender] = self._by_sender.get(tx.sender, 0) + 1
        registry.counter("mempool.added").inc()
        if self.capacity is not None and len(self._pool) > self.capacity:
            self._evict_oldest(len(self._pool) - self.capacity)
        registry.gauge("mempool.size").set(len(self._pool))
        return True

    def _ordered(self) -> dict[bytes, _PoolEntry]:
        """The pool in arrival order; re-sorts only after an
        out-of-order ``heard_at`` dirtied the insertion order."""
        if self._order_dirty:
            self._pool = dict(
                sorted(
                    self._pool.items(), key=lambda item: item[1].heard_at
                )
            )
            self._order_dirty = False
        return self._pool

    def _forget(self, tx_hash: bytes) -> None:
        entry = self._pool.pop(tx_hash)
        remaining = self._by_sender.get(entry.tx.sender, 0) - 1
        if remaining > 0:
            self._by_sender[entry.tx.sender] = remaining
        else:
            self._by_sender.pop(entry.tx.sender, None)

    def _evict_oldest(self, count: int) -> None:
        victims = []
        for tx_hash in self._ordered():
            if len(victims) >= count:
                break
            victims.append(tx_hash)
        for tx_hash in victims:
            self._forget(tx_hash)
        get_registry().counter("mempool.evicted").inc(count)

    def contains(self, tx: Transaction) -> bool:
        return tx.hash() in self._pool

    @property
    def clock(self) -> int:
        """The current dissemination timestamp (monotone arrival counter).

        ``known_before(tx, pool.clock)`` asks: had this node already heard
        the transaction by *now*?
        """
        return self._arrival_counter

    def known_before(self, tx: Transaction, time: int) -> bool:
        """Was *tx* disseminated to this node before *time*?"""
        entry = self._pool.get(tx.hash())
        return entry is not None and entry.heard_at < time

    def take(
        self, count: int, gas_target: int | None = None
    ) -> list[Transaction]:
        """Remove and return up to *count* transactions, oldest first.

        With *gas_target*, stop before the transaction whose gas limit
        would push the cumulative total past the target — except that the
        very first transaction is always taken (a single over-budget
        transaction must not wedge block building forever).
        """
        taken: list[Transaction] = []
        gas = 0
        for entry in self._ordered().values():
            if len(taken) >= count:
                break
            if (
                gas_target is not None
                and taken
                and gas + entry.tx.gas_limit > gas_target
            ):
                break
            taken.append(entry.tx)
            gas += entry.tx.gas_limit
        for tx in taken:
            self._forget(tx.hash())
        return taken

    def take_packed(
        self,
        count: int,
        gas_target: int | None = None,
        policy: PackingPolicy | None = None,
    ) -> PackedTake:
        """Cut up to *count* transactions, conflict-aware (FAFO-style).

        Scans arrival order and greedily groups transactions into
        parallel *lanes* via their access blooms:

        * no conflict with any lane → opens a new lane;
        * conflict with exactly one lane with room → joins it (a serial
          chain);
        * conflict with several lanes → deferred to a later block —
          unless it has already been deferred ``aging_bound`` times, in
          which case the lanes merge and it is included (no starvation).

        **Skipped-set rule** (the pack-equivalence invariant): once a
        transaction is deferred, every later transaction whose bloom
        conflicts with the deferred set is deferred too. The cut is
        therefore a FIFO subsequence in which every pair of potentially
        conflicting transactions keeps its arrival order — across the
        whole chain the packed history is a conflict-preserving
        permutation of FIFO, so receipts and state digest are
        bit-identical to FIFO replay (property-tested).

        The oldest pooled transaction is always selected (scanned first,
        nothing deferred yet), so every transaction's backlog rank
        strictly shrinks each cut: inclusion within (rank + 1) cuts is
        structural, the aging bound just tightens it.

        Gas accounting matches :meth:`take`: the scan stops before the
        transaction that would exceed *gas_target* (first always fits).
        """
        policy = policy or PackingPolicy()
        scan_window = policy.scan_window or count * 8
        ordered = self._ordered()

        # A group is [aggregate bloom, indices, member blooms]: the
        # aggregate is the no-conflict fast path (no false negatives);
        # on a hit the member list is checked pairwise, so aggregate
        # saturation costs time, never packing quality.
        def hits(bloom: AccessBloom, group: list) -> bool:
            return bloom.may_conflict(group[0]) and any(
                bloom.may_conflict(member) for member in group[2]
            )

        def absorb(group: list, bloom: AccessBloom) -> None:
            group[0].merge(bloom)
            group[2].append(bloom)

        def new_group(bloom: AccessBloom) -> list:
            return [AccessBloom(bits=bloom.bits, hashes=bloom.hashes),
                    [], []]

        selected: list[Transaction] = []
        lanes: list[list] = []
        skipped: list | None = None
        deferred = forced = scanned = 0
        gas = 0
        for entry in ordered.values():
            if len(selected) >= count or scanned >= scan_window:
                break
            scanned += 1
            bloom = entry.bloom
            if (
                gas_target is not None
                and selected
                and gas + entry.tx.gas_limit > gas_target
            ):
                break
            if skipped is not None and hits(bloom, skipped):
                # Skipped-set rule: never jump the queue past a deferred
                # conflicter — that would reorder a conflicting pair.
                entry.deferrals += 1
                absorb(skipped, bloom)
                deferred += 1
                continue
            conflicting = [lane for lane in lanes if hits(bloom, lane)]
            if not conflicting:
                lane = new_group(bloom)
                lanes.append(lane)
            elif len(conflicting) == 1 and (
                policy.lane_depth is None
                or len(conflicting[0][1]) < policy.lane_depth
            ):
                lane = conflicting[0]
            elif entry.deferrals >= policy.aging_bound:
                # Aged out: merge every conflicting lane into one and
                # include the transaction — it never conflicts with the
                # deferred set (checked above), so FIFO order among
                # conflicters is still intact.
                lane = conflicting[0]
                for other in conflicting[1:]:
                    lane[0].merge(other[0])
                    lane[1].extend(other[1])
                    lane[2].extend(other[2])
                    lanes.remove(other)
                lane[1].sort()
                forced += 1
            else:
                entry.deferrals += 1
                if skipped is None:
                    skipped = new_group(bloom)
                absorb(skipped, bloom)
                deferred += 1
                continue
            absorb(lane, bloom)
            lane[1].append(len(selected))
            selected.append(entry.tx)
            gas += entry.tx.gas_limit

        for tx in selected:
            self._forget(tx.hash())
        registry = get_registry()
        if registry.enabled:
            registry.counter("mempool.packed_deferred").inc(deferred)
            if forced:
                registry.counter("mempool.packed_forced").inc(forced)
            registry.gauge("mempool.size").set(len(self._pool))
        return PackedTake(
            transactions=selected,
            lanes=[lane[1] for lane in lanes],
            deferred=deferred,
            forced=forced,
        )

    def observe_block(self, artifacts) -> None:
        """Feed committed execution artifacts to the access estimator."""
        if self.estimator is None or not artifacts:
            return
        for artifact in artifacts:
            self.estimator.observe(artifact)

    def observe_outcomes(self, artifacts, abort_counts=None) -> None:
        """Feed OCC outcomes (actual access sets + per-transaction abort
        counts from the speculative engine) to the access estimator —
        the online-correction path that decays stale estimates (see
        :meth:`AccessEstimator.observe_actual`)."""
        if self.estimator is None or not artifacts:
            return
        for index, artifact in enumerate(artifacts):
            if artifact is None:
                continue
            aborts = abort_counts[index] if abort_counts else 0
            self.estimator.observe_actual(artifact, aborts=aborts)

    def remove(self, transactions: list[Transaction]) -> None:
        """Drop transactions that were included in a block."""
        for tx in transactions:
            if tx.hash() in self._pool:
                self._forget(tx.hash())
        get_registry().gauge("mempool.size").set(len(self._pool))

    def pending(self) -> list[Transaction]:
        """All pooled transactions, oldest first (non-destructive)."""
        return [entry.tx for entry in self._ordered().values()]

    def spill_entries(self) -> list[tuple[Transaction, bytes]]:
        """(transaction, serialized bloom) pairs for the spill file.

        Blooms ride along so declared-access filters (whose tags are
        not on the wire) survive a drain/restart cycle; arrival order is
        preserved.
        """
        return [
            (entry.tx, entry.bloom.to_bytes())
            for entry in self._ordered().values()
        ]
