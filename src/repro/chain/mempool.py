"""Mempool: the dissemination-stage transaction pool (paper Fig. 4).

The pool records *when* each transaction was first heard. The hotspot
optimizer's pre-execution relies on the paper's observation (via
Forerunner [12]) that 91.45%–98.15% of a block's transactions are already
known to a node before the block arrives; :meth:`Mempool.known_before`
exposes exactly that predicate.

Admission is hardened against hostile dissemination: transactions whose
gas limit cannot cover their intrinsic gas, or value-bearing transactions
from unfunded senders, are refused with a typed :class:`AdmissionError`
instead of silently pooling; a configurable capacity evicts oldest-first
so an attacker cannot grow the pool without bound.
"""

from __future__ import annotations

from ..obs import get_registry
from .transaction import Transaction


class AdmissionError(ValueError):
    """A disseminated transaction failed the pool's intrinsic checks."""


class IntrinsicGasError(AdmissionError):
    """gas_limit is below the transaction's intrinsic gas."""


class InsufficientFundsError(AdmissionError):
    """A value-bearing transaction from a sender with no balance."""


class Mempool:
    """Pending transactions, ordered by arrival."""

    def __init__(
        self,
        capacity: int | None = None,
        state=None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("mempool capacity must be positive")
        self._pool: dict[bytes, tuple[Transaction, int]] = {}
        self._arrival_counter = 0
        #: Maximum pooled transactions; oldest are evicted beyond it.
        self.capacity = capacity
        #: Optional world state used for balance-aware admission.
        self.state = state

    def __len__(self) -> int:
        return len(self._pool)

    def _check_admission(self, tx: Transaction) -> None:
        # Intrinsic gas needs the fee schedule; imported lazily because
        # repro.evm transitively imports repro.chain at package init.
        from ..evm.gas import DEFAULT_SCHEDULE

        intrinsic = DEFAULT_SCHEDULE.intrinsic_gas(tx.data, tx.is_create)
        if tx.gas_limit < intrinsic:
            raise IntrinsicGasError(
                f"gas limit {tx.gas_limit} below intrinsic gas {intrinsic}"
            )
        if tx.value > 0 and self.state is not None:
            # Bypass access tracking: admission peeks must not pollute
            # any in-progress dependency analysis.
            saved_access = self.state.access
            self.state.access = None
            try:
                balance = self.state.get_balance(tx.sender)
            finally:
                self.state.access = saved_access
            if balance == 0:
                raise InsufficientFundsError(
                    f"sender {tx.sender:#x} has no balance for a "
                    f"value-bearing transaction"
                )

    def add(self, tx: Transaction, heard_at: int | None = None) -> bool:
        """Record a disseminated transaction (idempotent by hash).

        Returns True when newly pooled, False for a duplicate. Raises
        :class:`AdmissionError` when the transaction fails intrinsic
        checks (it is not pooled).
        """
        registry = get_registry()
        tx_hash = tx.hash()
        if tx_hash in self._pool:
            registry.counter("mempool.duplicates").inc()
            return False
        try:
            self._check_admission(tx)
        except AdmissionError as err:
            registry.counter(
                "mempool.rejections", reason=type(err).__name__
            ).inc()
            raise
        if heard_at is None:
            heard_at = self._arrival_counter
        self._arrival_counter = max(self._arrival_counter, heard_at) + 1
        self._pool[tx_hash] = (tx, heard_at)
        registry.counter("mempool.added").inc()
        if self.capacity is not None and len(self._pool) > self.capacity:
            self._evict_oldest(len(self._pool) - self.capacity)
        registry.gauge("mempool.size").set(len(self._pool))
        return True

    def _evict_oldest(self, count: int) -> None:
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        for tx_hash, _ in ordered[:count]:
            del self._pool[tx_hash]
        get_registry().counter("mempool.evicted").inc(count)

    def contains(self, tx: Transaction) -> bool:
        return tx.hash() in self._pool

    @property
    def clock(self) -> int:
        """The current dissemination timestamp (monotone arrival counter).

        ``known_before(tx, pool.clock)`` asks: had this node already heard
        the transaction by *now*?
        """
        return self._arrival_counter

    def known_before(self, tx: Transaction, time: int) -> bool:
        """Was *tx* disseminated to this node before *time*?"""
        entry = self._pool.get(tx.hash())
        return entry is not None and entry[1] < time

    def take(self, count: int) -> list[Transaction]:
        """Remove and return up to *count* transactions, oldest first."""
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        taken = [tx for _, (tx, _) in ordered[:count]]
        for tx in taken:
            self._pool.pop(tx.hash(), None)
        return taken

    def remove(self, transactions: list[Transaction]) -> None:
        """Drop transactions that were included in a block."""
        for tx in transactions:
            self._pool.pop(tx.hash(), None)
        get_registry().gauge("mempool.size").set(len(self._pool))

    def pending(self) -> list[Transaction]:
        """All pooled transactions, oldest first (non-destructive)."""
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        return [tx for _, (tx, _) in ordered]
