"""Mempool: the dissemination-stage transaction pool (paper Fig. 4).

The pool records *when* each transaction was first heard. The hotspot
optimizer's pre-execution relies on the paper's observation (via
Forerunner [12]) that 91.45%–98.15% of a block's transactions are already
known to a node before the block arrives; :meth:`Mempool.known_before`
exposes exactly that predicate.

Admission is hardened against hostile dissemination: transactions whose
gas limit cannot cover their intrinsic gas, or value-bearing transactions
from unfunded senders, are refused with a typed :class:`AdmissionError`
instead of silently pooling; a configurable capacity evicts oldest-first
so an attacker cannot grow the pool without bound. Re-announcing an
already-pooled hash raises :class:`DuplicateTransactionError`, and an
optional per-sender pending cap (:class:`SenderLimitError`) stops one
sender from flooding everyone else out through the capacity eviction.
"""

from __future__ import annotations

from ..obs import get_registry
from .transaction import Transaction


class AdmissionError(ValueError):
    """A disseminated transaction failed the pool's intrinsic checks."""


class IntrinsicGasError(AdmissionError):
    """gas_limit is below the transaction's intrinsic gas."""


class InsufficientFundsError(AdmissionError):
    """A value-bearing transaction from a sender with no balance."""


class DuplicateTransactionError(AdmissionError):
    """The transaction's hash is already pooled."""


class SenderLimitError(AdmissionError):
    """The sender already has the maximum pending transactions."""


class Mempool:
    """Pending transactions, ordered by arrival."""

    def __init__(
        self,
        capacity: int | None = None,
        state=None,
        per_sender_cap: int | None = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("mempool capacity must be positive")
        if per_sender_cap is not None and per_sender_cap <= 0:
            raise ValueError("per-sender cap must be positive")
        self._pool: dict[bytes, tuple[Transaction, int]] = {}
        self._arrival_counter = 0
        #: Maximum pooled transactions; oldest are evicted beyond it.
        self.capacity = capacity
        #: Maximum pending transactions per sender; the sender's further
        #: submissions are refused (not others' evicted).
        self.per_sender_cap = per_sender_cap
        #: Pending-transaction count per sender address.
        self._by_sender: dict[int, int] = {}
        #: Optional world state used for balance-aware admission.
        self.state = state

    def __len__(self) -> int:
        return len(self._pool)

    def _check_admission(self, tx: Transaction) -> None:
        # Intrinsic gas needs the fee schedule; imported lazily because
        # repro.evm transitively imports repro.chain at package init.
        from ..evm.gas import DEFAULT_SCHEDULE

        intrinsic = DEFAULT_SCHEDULE.intrinsic_gas(tx.data, tx.is_create)
        if tx.gas_limit < intrinsic:
            raise IntrinsicGasError(
                f"gas limit {tx.gas_limit} below intrinsic gas {intrinsic}"
            )
        if tx.value > 0 and self.state is not None:
            # Bypass access tracking: admission peeks must not pollute
            # any in-progress dependency analysis.
            saved_access = self.state.access
            self.state.access = None
            try:
                balance = self.state.get_balance(tx.sender)
            finally:
                self.state.access = saved_access
            if balance == 0:
                raise InsufficientFundsError(
                    f"sender {tx.sender:#x} has no balance for a "
                    f"value-bearing transaction"
                )

    def add(self, tx: Transaction, heard_at: int | None = None) -> bool:
        """Record a disseminated transaction (unique by hash).

        Returns True when newly pooled. Raises :class:`AdmissionError`
        when the transaction fails intrinsic checks, is a duplicate of a
        pooled hash, or would push its sender past the per-sender cap
        (in every case it is not pooled).
        """
        registry = get_registry()
        tx_hash = tx.hash()
        try:
            if tx_hash in self._pool:
                registry.counter("mempool.duplicates").inc()
                raise DuplicateTransactionError(
                    f"transaction {tx_hash.hex()[:16]}… already pooled"
                )
            if (
                self.per_sender_cap is not None
                and self._by_sender.get(tx.sender, 0) >= self.per_sender_cap
            ):
                raise SenderLimitError(
                    f"sender {tx.sender:#x} already has "
                    f"{self.per_sender_cap} pending transactions"
                )
            self._check_admission(tx)
        except AdmissionError as err:
            registry.counter(
                "mempool.rejections", reason=type(err).__name__
            ).inc()
            raise
        if heard_at is None:
            heard_at = self._arrival_counter
        self._arrival_counter = max(self._arrival_counter, heard_at) + 1
        self._pool[tx_hash] = (tx, heard_at)
        self._by_sender[tx.sender] = self._by_sender.get(tx.sender, 0) + 1
        registry.counter("mempool.added").inc()
        if self.capacity is not None and len(self._pool) > self.capacity:
            self._evict_oldest(len(self._pool) - self.capacity)
        registry.gauge("mempool.size").set(len(self._pool))
        return True

    def _forget(self, tx_hash: bytes) -> None:
        tx, _ = self._pool.pop(tx_hash)
        remaining = self._by_sender.get(tx.sender, 0) - 1
        if remaining > 0:
            self._by_sender[tx.sender] = remaining
        else:
            self._by_sender.pop(tx.sender, None)

    def _evict_oldest(self, count: int) -> None:
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        for tx_hash, _ in ordered[:count]:
            self._forget(tx_hash)
        get_registry().counter("mempool.evicted").inc(count)

    def contains(self, tx: Transaction) -> bool:
        return tx.hash() in self._pool

    @property
    def clock(self) -> int:
        """The current dissemination timestamp (monotone arrival counter).

        ``known_before(tx, pool.clock)`` asks: had this node already heard
        the transaction by *now*?
        """
        return self._arrival_counter

    def known_before(self, tx: Transaction, time: int) -> bool:
        """Was *tx* disseminated to this node before *time*?"""
        entry = self._pool.get(tx.hash())
        return entry is not None and entry[1] < time

    def take(
        self, count: int, gas_target: int | None = None
    ) -> list[Transaction]:
        """Remove and return up to *count* transactions, oldest first.

        With *gas_target*, stop before the transaction whose gas limit
        would push the cumulative total past the target — except that the
        very first transaction is always taken (a single over-budget
        transaction must not wedge block building forever).
        """
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        taken: list[Transaction] = []
        gas = 0
        for _, (tx, _) in ordered[:count]:
            if (
                gas_target is not None
                and taken
                and gas + tx.gas_limit > gas_target
            ):
                break
            taken.append(tx)
            gas += tx.gas_limit
        for tx in taken:
            self._forget(tx.hash())
        return taken

    def remove(self, transactions: list[Transaction]) -> None:
        """Drop transactions that were included in a block."""
        for tx in transactions:
            if tx.hash() in self._pool:
                self._forget(tx.hash())
        get_registry().gauge("mempool.size").set(len(self._pool))

    def pending(self) -> list[Transaction]:
        """All pooled transactions, oldest first (non-destructive)."""
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        return [tx for _, (tx, _) in ordered]
