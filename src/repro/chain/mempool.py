"""Mempool: the dissemination-stage transaction pool (paper Fig. 4).

The pool records *when* each transaction was first heard. The hotspot
optimizer's pre-execution relies on the paper's observation (via
Forerunner [12]) that 91.45%–98.15% of a block's transactions are already
known to a node before the block arrives; :meth:`Mempool.known_before`
exposes exactly that predicate.
"""

from __future__ import annotations

from .transaction import Transaction


class Mempool:
    """Pending transactions, ordered by arrival."""

    def __init__(self) -> None:
        self._pool: dict[bytes, tuple[Transaction, int]] = {}
        self._arrival_counter = 0

    def __len__(self) -> int:
        return len(self._pool)

    def add(self, tx: Transaction, heard_at: int | None = None) -> None:
        """Record a disseminated transaction (idempotent by hash)."""
        tx_hash = tx.hash()
        if tx_hash in self._pool:
            return
        if heard_at is None:
            heard_at = self._arrival_counter
        self._arrival_counter = max(self._arrival_counter, heard_at) + 1
        self._pool[tx_hash] = (tx, heard_at)

    def contains(self, tx: Transaction) -> bool:
        return tx.hash() in self._pool

    @property
    def clock(self) -> int:
        """The current dissemination timestamp (monotone arrival counter).

        ``known_before(tx, pool.clock)`` asks: had this node already heard
        the transaction by *now*?
        """
        return self._arrival_counter

    def known_before(self, tx: Transaction, time: int) -> bool:
        """Was *tx* disseminated to this node before *time*?"""
        entry = self._pool.get(tx.hash())
        return entry is not None and entry[1] < time

    def take(self, count: int) -> list[Transaction]:
        """Remove and return up to *count* transactions, oldest first."""
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        taken = [tx for _, (tx, _) in ordered[:count]]
        for tx in taken:
            self._pool.pop(tx.hash(), None)
        return taken

    def remove(self, transactions: list[Transaction]) -> None:
        """Drop transactions that were included in a block."""
        for tx in transactions:
            self._pool.pop(tx.hash(), None)

    def pending(self) -> list[Transaction]:
        """All pooled transactions, oldest first (non-destructive)."""
        ordered = sorted(self._pool.items(), key=lambda item: item[1][1])
        return [tx for _, (tx, _) in ordered]
