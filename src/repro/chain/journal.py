"""Write journals and execution artifacts (the execute-once pipeline).

Speculative pre-execution in the consensus stage (``discover_access_sets``)
used to throw its work away: receipts and traces were discarded and every
transaction was functionally executed a second time by the scheduler
drivers. An :class:`ExecutionArtifact` keeps that work — the receipt, the
dataflow trace, the access set, the *write journal* (post-values of every
key the transaction mutated) and the *read values* (entry values of every
key the outcome depends on) — so downstream consumers can *replay* the
transaction by applying its journal, after checking that its read values
are still what they were at pre-execution time.

Replay soundness: a transaction is a deterministic function of the entry
values of the keys it reads. If every recorded read value matches the
current state, re-execution would reproduce the recorded receipt and
writes exactly, so applying the journal is equivalent to executing — at a
fraction of the cost. When any read value differs (wrong DAG, injected
fault, adversarial access set) the consumer falls back to real execution.

The one non-positional entry is the coinbase fee: fees are credited
outside access tracking (by design — they must not serialize the block),
and every transaction touches the same coinbase balance, so the journal
records the fee as a *delta* op that commutes across transactions rather
than a post-value that would clobber.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .receipt import Receipt
from .state import BALANCE_KEY, CODE_KEY, NONCE_KEY, AccessSet, WorldState
from .transaction import Transaction

# Write ops are tagged tuples, picklable for process workers:
#   ("balance", address, value)        — absolute post-value
#   ("balance_delta", address, delta)  — commutative credit (coinbase fee)
#   ("nonce", address, value)
#   ("code", address, code_bytes)
#   ("storage", address, slot, value)
#   ("delete", address)                — SELFDESTRUCT, account removed


@dataclass
class WriteJournal:
    """Post-state of one transaction as an ordered list of write ops."""

    ops: list[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def apply(self, state: WorldState) -> None:
        """Replay the ops onto *state* (journaled, access-untracked).

        The replay goes through the normal journaled setters so callers
        can still snapshot/revert across it (the validator's whole-block
        rollback and the scheduler's mid-flight retraction rely on this).
        """
        with state.untracked():
            for op in self.ops:
                kind = op[0]
                if kind == "storage":
                    state.set_storage(op[1], op[2], op[3])
                elif kind == "balance":
                    state.set_balance(op[1], op[2])
                elif kind == "balance_delta":
                    state.set_balance(
                        op[1], state.get_balance(op[1]) + op[2]
                    )
                elif kind == "nonce":
                    state.set_nonce(op[1], op[2])
                elif kind == "code":
                    state.set_code(op[1], op[2])
                elif kind == "delete":
                    state.delete_account(op[1])
                else:  # pragma: no cover - defensive
                    raise RuntimeError(f"unknown write op {kind!r}")

    def post_values(self) -> dict[tuple, object]:
        """Key -> absolute post-value map (delta/delete ops excluded).

        This is what the parallel coordinator folds into its committed
        overlay to build read views for dependent transactions.
        """
        values: dict[tuple, object] = {}
        for op in self.ops:
            kind = op[0]
            if kind == "storage":
                values[(op[1], op[2])] = op[3]
            elif kind == "balance":
                values[(op[1], BALANCE_KEY)] = op[2]
            elif kind == "nonce":
                values[(op[1], NONCE_KEY)] = op[2]
            elif kind == "code":
                values[(op[1], CODE_KEY)] = op[2]
        return values

    @property
    def has_delete(self) -> bool:
        return any(op[0] == "delete" for op in self.ops)


@dataclass
class ExecutionArtifact:
    """Everything one speculative pre-execution produced.

    ``read_values`` maps ``(address, slot)`` keys — storage slots plus the
    :data:`~repro.chain.state.BALANCE_KEY` / :data:`CODE_KEY` /
    :data:`NONCE_KEY` sentinels — to the value each key held when the
    transaction started executing. ``steps`` is the dataflow trace
    (``None`` unless the pre-execution ran with tracing enabled).
    """

    tx: Transaction
    receipt: Receipt
    access: AccessSet
    journal: WriteJournal
    read_values: dict[tuple, object] = field(default_factory=dict)
    steps: list | None = None

    # AccessSet-compatible surface, so artifact lists drop into every
    # consumer of ``discover_access_sets`` (DAG building, verification).
    @property
    def reads(self) -> set:
        return self.access.reads

    @property
    def writes(self) -> set:
        return self.access.writes

    def conflicts_with(self, other) -> bool:
        access = other.access if hasattr(other, "access") else other
        return self.access.conflicts_with(access)

    def is_fresh(self, state: WorldState) -> bool:
        """True when every recorded read value still matches *state*.

        Untracked reads, so the check itself never pollutes dependency
        analysis. Freshness is exactly the replay-soundness condition:
        fresh ⇒ applying :attr:`journal` equals re-executing :attr:`tx`.
        """
        with state.untracked():
            for (address, slot), expected in self.read_values.items():
                if slot == BALANCE_KEY:
                    current = state.get_balance(address)
                elif slot == NONCE_KEY:
                    current = state.get_nonce(address)
                elif slot == CODE_KEY:
                    current = state.get_code(address)
                else:
                    current = state.get_storage(address, slot)
                if current != expected:
                    return False
        return True


def _journal_key(entry: tuple) -> tuple | None:
    """Map a state-journal entry to its (address, slot) key."""
    kind = entry[0]
    if kind == "storage":
        return (entry[1], entry[2])
    if kind == "balance":
        return (entry[1], BALANCE_KEY)
    if kind == "nonce":
        return (entry[1], NONCE_KEY)
    if kind == "code":
        return (entry[1], CODE_KEY)
    return None  # created/deleted handled at the account level


def _read_key(state: WorldState, address: int, slot) -> object:
    if slot == BALANCE_KEY:
        return state.get_balance(address)
    if slot == NONCE_KEY:
        return state.get_nonce(address)
    if slot == CODE_KEY:
        return state.get_code(address)
    return state.get_storage(address, slot)


def capture_artifact(
    state: WorldState,
    tx: Transaction,
    receipt: Receipt,
    access: AccessSet,
    changes: list[tuple],
    coinbase: int,
    steps: list | None = None,
) -> ExecutionArtifact:
    """Build an artifact for a transaction that just executed on *state*.

    *changes* is ``state.changes_since(token)`` for a snapshot taken
    immediately before the transaction ran; the current state holds the
    transaction's post-values. Entry values come from the journal's old
    values (first entry per key wins), so nothing is re-executed or
    reverted here.
    """
    entry_values: dict[tuple, object] = {}
    deleted: dict[int, object] = {}
    created: set[int] = set()
    order: list[tuple] = []
    for entry in changes:
        kind = entry[0]
        if kind == "created":
            created.add(entry[1])
            continue
        if kind == "deleted":
            if entry[1] not in deleted:
                deleted[entry[1]] = entry[2]
            continue
        key = _journal_key(entry)
        if key not in entry_values:
            entry_values[key] = entry[-1]
            order.append(key)

    ops: list[tuple] = []
    fee_delta = 0
    with state.untracked():
        # Accounts deleted and not recreated vanish entirely; deleted-
        # then-recreated accounts are rebuilt field by field from scratch.
        for address, old_acct in deleted.items():
            if not state.has_account(address):
                ops.append(("delete", address))
                continue
            ops.append(("delete", address))
            ops.append(("balance", address, state.get_balance(address)))
            ops.append(("nonce", address, state.get_nonce(address)))
            ops.append(("code", address, state.get_code(address)))
            acct = state._accounts[address]
            for slot, value in sorted(acct.storage.items()):
                ops.append(("storage", address, slot, value))
        for key in order:
            address, slot = key
            if address in deleted:
                continue  # already rebuilt above
            current = _read_key(state, address, slot)
            old = entry_values[key]
            if slot not in (BALANCE_KEY, NONCE_KEY, CODE_KEY):
                old = 0 if old is None else old
            if current == old:
                continue  # net no-op (e.g. write-then-revert)
            if slot == BALANCE_KEY and address == coinbase:
                fee_delta += current - old
                continue
            if slot == BALANCE_KEY:
                ops.append(("balance", address, current))
            elif slot == NONCE_KEY:
                ops.append(("nonce", address, current))
            elif slot == CODE_KEY:
                ops.append(("code", address, current))
            else:
                ops.append(("storage", address, slot, current))
        if fee_delta:
            ops.append(("balance_delta", coinbase, fee_delta))

        # Read values: the tracked read set, plus the implicit untracked
        # dependencies — the sender's balance (value check + fee payment),
        # the sender's nonce, and the entry value of every nonce the
        # transaction bumped (CREATE address derivation).
        read_values: dict[tuple, object] = {}
        implicit = [(tx.sender, BALANCE_KEY), (tx.sender, NONCE_KEY)]
        for key in list(access.reads) + implicit:
            address, slot = key
            if key in entry_values:
                old = entry_values[key]
                if slot not in (BALANCE_KEY, NONCE_KEY, CODE_KEY):
                    old = 0 if old is None else old
                read_values[key] = old
            elif address in deleted or address in created:
                # Key belongs to an account this tx deleted/created and
                # the specific field was never journaled: its entry value
                # is the pre-state of the (deleted) account or zero.
                if address in deleted:
                    acct = deleted[address]
                    if slot == BALANCE_KEY:
                        read_values[key] = acct.balance
                    elif slot == NONCE_KEY:
                        read_values[key] = acct.nonce
                    elif slot == CODE_KEY:
                        read_values[key] = acct.code
                    else:
                        read_values[key] = acct.storage.get(slot, 0)
                else:
                    read_values[key] = (
                        b"" if slot == CODE_KEY else 0
                    )
            else:
                read_values[key] = _read_key(state, address, slot)
        for key, old in entry_values.items():
            if key[1] == NONCE_KEY and key not in read_values:
                read_values[key] = old

    return ExecutionArtifact(
        tx=tx,
        receipt=receipt,
        access=access,
        journal=WriteJournal(ops),
        read_values=read_values,
        steps=steps,
    )
