"""The authenticated view of a :class:`~repro.chain.state.WorldState`.

One account tree plus one storage subtrie per contract. The account
leaf value commits to ``(nonce, balance, code_hash, storage_root)``, so
the single 32-byte state root authenticates every balance and every
storage slot in the system.

Incrementality is driven by the state's first-touch pre-image capture
(``WorldState._trie_pre``): :meth:`StateTrie.update` drains it and
re-derives only the touched leaves, so a block's root update costs
O(touched · depth) rather than O(state). Accounts that are absent or
*empty* (``Account.is_empty``) are not in the trie, matching the flat
digest's convention; zero-valued slots are likewise absent from their
subtrie.
"""

from __future__ import annotations

import time

from ..obs import get_registry
from .proof import AccountProof, ProofStep, StorageProof
from .tree import MerkleTree
from .verify import (
    account_key,
    account_value_hash,
    slot_key,
    storage_value_hash,
)

__all__ = ["StateTrie"]


class StateTrie:
    """Incremental Merkle trie mirror of one ``WorldState``."""

    def __init__(self) -> None:
        # Shared rehash meter: the account tree and every storage
        # subtrie increment the same cell, so per-update deltas count
        # total hashing work no matter which tree it landed in.
        self._counter = [0]
        self._tree = MerkleTree(self._counter)
        self._storage: dict[int, MerkleTree] = {}
        # address -> (nonce, balance, code_hash, storage_root), the
        # committed leaf contents proofs are cut from.
        self._info: dict[int, tuple[int, int, bytes, bytes]] = {}
        self._keys: dict[int, bytes] = {}
        self._registry = get_registry()

    # -- construction ------------------------------------------------------
    def attach(self, state) -> bytes:
        """Bind to *state*: full build, then enable first-touch capture.

        Any pre-images captured before the build are stale against the
        freshly built trie, so the capture buffer is reset.
        """
        self._tree = MerkleTree(self._counter)
        self._storage.clear()
        self._info.clear()
        for address, account in state._accounts.items():
            if account.is_empty:
                continue
            self._set_leaf(address, account, rebuild_storage=True)
        state._track_trie = True
        state._trie_pre.clear()
        return self.root()

    @classmethod
    def rebuild_root(cls, state) -> bytes:
        """From-scratch root of *state*, with no tracking side effects.

        The property-test oracle: the incrementally maintained root must
        be bit-identical to this after every block.
        """
        trie = cls()
        for address, account in state._accounts.items():
            if account.is_empty:
                continue
            trie._set_leaf(address, account, rebuild_storage=True)
        return trie.root()

    # -- incremental maintenance -------------------------------------------
    def update(self, state) -> bytes:
        """Fold the state's captured dirty set into the trie; new root."""
        started = time.perf_counter()
        rehashed_before = self._counter[0]
        pre_images = state._trie_pre
        for address, pre in pre_images.items():
            account = state._accounts.get(address)
            if account is None or account.is_empty:
                self._drop_leaf(address)
                continue
            # A wholesale storage replacement (delete/redeploy,
            # transplant via load_account) invalidates the old subtrie;
            # slot diffs only describe in-place mutation.
            if pre.storage_full is not None or address not in self._storage:
                self._set_leaf(address, account, rebuild_storage=True)
            else:
                subtrie = self._storage[address]
                for slot, old in pre.slots.items():
                    new = account.storage.get(slot, 0)
                    if new == old:
                        continue
                    if new:
                        subtrie.set(slot_key(slot), storage_value_hash(new))
                    else:
                        subtrie.delete(slot_key(slot))
                self._set_leaf(address, account, rebuild_storage=False)
        pre_images.clear()
        root = self.root()
        self._registry.counter("trie.root_updates").inc()
        self._registry.counter("trie.nodes_rehashed").inc(
            self._counter[0] - rehashed_before
        )
        self._registry.histogram("trie.root_update_ms").observe(
            (time.perf_counter() - started) * 1000.0
        )
        return root

    def root(self) -> bytes:
        return self._tree.root()

    @property
    def nodes_rehashed(self) -> int:
        return self._counter[0]

    # -- proofs ------------------------------------------------------------
    def account_proof(self, address: int) -> AccountProof:
        """Inclusion proof for *address*; KeyError when not in the trie."""
        if address not in self._info:
            raise KeyError(f"account {address:#x} is not in the trie")
        nonce, balance, code_hash, storage_root = self._info[address]
        steps = self._tree.prove(self._account_key(address))
        return AccountProof(
            address=address,
            nonce=nonce,
            balance=balance,
            code_hash=code_hash,
            storage_root=storage_root,
            steps=tuple(ProofStep(bit, sib) for bit, sib in steps),
        )

    def storage_proof(self, address: int, slot: int, value: int) -> StorageProof:
        """Inclusion proof that ``address.storage[slot] == value``.

        The trie holds only value *hashes*, so the caller (who read the
        state under its lock) supplies the claimed value; it is
        cross-checked against the committed leaf before a proof is cut.
        KeyError for absent accounts/slots — exclusion is not provable
        and the RPC maps absence to a typed error instead.
        """
        account = self.account_proof(address)
        subtrie = self._storage.get(address)
        if subtrie is None:
            raise KeyError(f"account {address:#x} has no storage entries")
        key = slot_key(slot)
        committed = subtrie.get(key)
        if committed is None:
            raise KeyError(f"slot {slot:#x} is not in the storage trie")
        if storage_value_hash(value) != committed:
            raise ValueError(
                f"value {value:#x} does not match the committed slot hash"
            )
        steps = subtrie.prove(key)
        return StorageProof(
            account=account,
            slot=slot,
            value=value,
            steps=tuple(ProofStep(bit, sib) for bit, sib in steps),
        )

    # -- witness support ---------------------------------------------------
    def expanded_nodes(self, addresses) -> list[tuple]:
        """Flat node list of the account tree, expanded along the paths
        of *addresses* (present or not); everything else stubbed."""
        keys = [self._account_key(address) for address in addresses]
        return self._tree.serialize_expanded(keys)

    # -- internals ---------------------------------------------------------
    def _account_key(self, address: int) -> bytes:
        key = self._keys.get(address)
        if key is None:
            key = account_key(address)
            self._keys[address] = key
        return key

    def _set_leaf(self, address: int, account, rebuild_storage: bool) -> None:
        if rebuild_storage:
            subtrie = MerkleTree(self._counter)
            for slot, value in account.storage.items():
                if value:
                    subtrie.set(slot_key(slot), storage_value_hash(value))
            self._storage[address] = subtrie
        storage_root = self._storage[address].root()
        code_hash = account.code_hash
        self._info[address] = (
            account.nonce,
            account.balance,
            code_hash,
            storage_root,
        )
        self._tree.set(
            self._account_key(address),
            account_value_hash(
                account.nonce, account.balance, code_hash, storage_root
            ),
        )

    def _drop_leaf(self, address: int) -> None:
        self._tree.delete(self._account_key(address))
        self._storage.pop(address, None)
        self._info.pop(address, None)
