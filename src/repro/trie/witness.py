"""Block witnesses and stateless (witness-only) validation.

A witness is everything a node with *no state at all* needs to re-execute
one block and recompute the post-state root bit-identically:

* the pre-state root it starts from,
* the account tree expanded along every touched address's path (all
  other subtrees collapsed to hash stubs),
* the pre-block contents of every touched account (fields + storage),
  which are the preimages of the expanded leaves.

Wire form (RLP, nesting kept flat so arbitrarily deep tries stay within
:data:`repro.chain.rlp.MAX_DEPTH`):

    [version=1, pre_root, tree_items, account_entries]

``tree_items`` is the flat post-order node list of
:meth:`~repro.trie.tree.MerkleTree.serialize_expanded`, each item one of
``[0x00, key, value]`` (leaf), ``[0x01, bit]`` (branch: pops right then
left off the decode stack), ``[0x02, hash]`` (stub), ``[0x03]`` (empty
tree, sole item). ``account_entries`` is
``[address, exists, nonce, balance, code, [[slot, value], ...]]``
sorted by address with nonzero slot values only.

The :class:`StatelessValidator` checks every entry against the decoded
partial tree (whose root must equal ``pre_root``), executes the block on
a state built from the entries alone, folds the resulting accounts back
into the partial tree, and compares the new root against the header's
claim. Execution that strays outside the witness crosses a stub and
fails with :class:`~repro.trie.errors.WitnessError` — under-provisioned
witnesses are detected, never silently accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import rlp
from ..chain.account import Account
from ..chain.receipt import Receipt
from ..chain.state import WorldState
from ..evm.context import BlockContext
from ..evm.interpreter import EVM
from ..obs import get_registry
from .errors import StateRootMismatchError, WitnessError
from .tree import MerkleTree
from .verify import (
    EMPTY_CODE_HASH,
    account_key,
    account_value_hash,
    keccak,
    slot_key,
    storage_value_hash,
)

__all__ = [
    "MAX_WITNESS_BYTES",
    "StatelessResult",
    "StatelessValidator",
    "Witness",
    "WitnessAccount",
    "build_witness",
    "decode_witness",
]

#: Upper bound on an encoded witness blob (hostile-input backstop; the
#: writer's own witnesses are a few KB per block at repro scale).
MAX_WITNESS_BYTES = 1 << 26

WITNESS_VERSION = 1

_NODE_LEAF = b"\x00"
_NODE_BRANCH = b"\x01"
_NODE_STUB = b"\x02"
_NODE_EMPTY = b"\x03"

_UINT256_LIMIT = 1 << 256


@dataclass(frozen=True)
class WitnessAccount:
    """Pre-block contents of one touched account (absent when not
    ``exists``: the entry then only pins the address's non-membership)."""

    address: int
    exists: bool
    nonce: int = 0
    balance: int = 0
    code: bytes = b""
    slots: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class Witness:
    """A decoded block witness."""

    pre_root: bytes
    nodes: tuple[tuple, ...]
    accounts: tuple[WitnessAccount, ...]


@dataclass(frozen=True)
class StatelessResult:
    """Outcome of a witness-only re-execution."""

    pre_root: bytes
    post_root: bytes
    receipts: list[Receipt]


# -- building (writer side) --------------------------------------------------

def _pre_account(state, address: int):
    """Reconstruct the pre-block (nonce, balance, code, storage) of
    *address* from the state's first-touch capture; None when the
    account was absent or empty (not a trie member) pre-block."""
    pre = state._trie_pre.get(address)
    if pre is None:
        # Untouched this block: current contents *are* the pre-block
        # contents (the address was pulled in as a belt-and-braces
        # member of the touched set, e.g. a zero-value recipient).
        account = state._accounts.get(address)
        if account is None or account.is_empty:
            return None
        return account.nonce, account.balance, account.code, dict(
            account.storage
        )
    if not pre.exists or (
        pre.nonce == 0 and pre.balance == 0 and not pre.code
    ):
        return None
    if pre.storage_full is not None:
        storage = dict(pre.storage_full)
    else:
        account = state._accounts.get(address)
        storage = dict(account.storage) if account is not None else {}
        # First-touch slot olds overlay the current dict back to its
        # block-start contents (0 = the slot was absent).
        for slot, old in pre.slots.items():
            if old:
                storage[slot] = old
            else:
                storage.pop(slot, None)
    return pre.nonce, pre.balance, pre.code, storage


def build_witness(trie, state, block) -> bytes:
    """Encode the witness for *block*, just executed against *state*.

    Must run *before* ``trie.update`` drains the state's capture buffer
    (i.e. before the post-root is sealed): the trie is still at its
    pre-block shape and ``state._trie_pre`` still holds the touched set.
    """
    touched = set(state._trie_pre)
    touched.add(block.header.coinbase)
    for tx in block.transactions:
        touched.add(tx.sender)
        if tx.to is not None:
            touched.add(tx.to)
    addresses = sorted(touched)
    entries = []
    for address in addresses:
        pre = _pre_account(state, address)
        if pre is None:
            entries.append(
                [rlp.encode_int(address), b"", b"", b"", b"", []]
            )
            continue
        nonce, balance, code, storage = pre
        entries.append(
            [
                rlp.encode_int(address),
                rlp.encode_int(1),
                rlp.encode_int(nonce),
                rlp.encode_int(balance),
                code,
                [
                    [rlp.encode_int(slot), rlp.encode_int(value)]
                    for slot, value in sorted(storage.items())
                    if value
                ],
            ]
        )
    items = []
    for node in trie.expanded_nodes(addresses):
        tag = node[0]
        if tag == "leaf":
            items.append([_NODE_LEAF, node[1], node[2]])
        elif tag == "branch":
            items.append([_NODE_BRANCH, rlp.encode_int(node[1])])
        elif tag == "stub":
            items.append([_NODE_STUB, node[1]])
        else:
            items.append([_NODE_EMPTY])
    blob = rlp.encode(
        [rlp.encode_int(WITNESS_VERSION), trie.root(), items, entries]
    )
    registry = get_registry()
    if registry.enabled:
        registry.histogram("trie.witness_bytes").observe(len(blob))
    return blob


# -- decoding (hardened) ------------------------------------------------------

def _decode_uint(item, what: str, limit: int = _UINT256_LIMIT) -> int:
    try:
        value = rlp.decode_int(rlp.as_bytes(item, what))
    except rlp.RLPDecodingError as exc:
        raise WitnessError(str(exc)) from exc
    if value >= limit:
        raise WitnessError(f"{what} out of range")
    return value


def _decode_hash(item, what: str) -> bytes:
    try:
        data = rlp.as_bytes(item, what)
    except rlp.RLPDecodingError as exc:
        raise WitnessError(str(exc)) from exc
    if len(data) != 32:
        raise WitnessError(f"{what} must be 32 bytes")
    return data


def decode_witness(blob: bytes) -> Witness:
    """Decode witness bytes; :class:`WitnessError` on any malformation."""
    if not isinstance(blob, (bytes, bytearray)):
        raise WitnessError("witness blob must be bytes")
    if len(blob) > MAX_WITNESS_BYTES:
        raise WitnessError(f"witness exceeds {MAX_WITNESS_BYTES} bytes")
    try:
        fields = rlp.as_list(rlp.decode(bytes(blob)), "witness", 4)
        raw_items = rlp.as_list(fields[2], "witness tree")
        raw_entries = rlp.as_list(fields[3], "witness accounts")
    except rlp.RLPDecodingError as exc:
        raise WitnessError(str(exc)) from exc
    if _decode_uint(fields[0], "witness version", 256) != WITNESS_VERSION:
        raise WitnessError("unsupported witness version")
    pre_root = _decode_hash(fields[1], "witness pre-root")
    nodes: list[tuple] = []
    for raw in raw_items:
        try:
            item = rlp.as_list(raw, "witness tree node")
            if not item:
                raise WitnessError("empty witness tree node")
            tag = rlp.as_bytes(item[0], "witness node tag")
        except rlp.RLPDecodingError as exc:
            raise WitnessError(str(exc)) from exc
        if tag == _NODE_LEAF and len(item) == 3:
            nodes.append(
                (
                    "leaf",
                    _decode_hash(item[1], "leaf key"),
                    _decode_hash(item[2], "leaf value"),
                )
            )
        elif tag == _NODE_BRANCH and len(item) == 2:
            nodes.append(
                ("branch", _decode_uint(item[1], "branch bit", 256))
            )
        elif tag == _NODE_STUB and len(item) == 2:
            nodes.append(("stub", _decode_hash(item[1], "stub hash")))
        elif tag == _NODE_EMPTY and len(item) == 1:
            nodes.append(("empty",))
        else:
            raise WitnessError("malformed witness tree node")
    accounts: list[WitnessAccount] = []
    previous = -1
    for raw in raw_entries:
        try:
            entry = rlp.as_list(raw, "witness account", 6)
            raw_slots = rlp.as_list(entry[5], "witness slots")
            code = rlp.as_bytes(entry[4], "witness code")
        except rlp.RLPDecodingError as exc:
            raise WitnessError(str(exc)) from exc
        address = _decode_uint(entry[0], "witness address")
        if address <= previous:
            raise WitnessError(
                "witness accounts must be strictly address-sorted"
            )
        previous = address
        exists = _decode_uint(entry[1], "witness exists flag", 2) == 1
        slots: list[tuple[int, int]] = []
        last_slot = -1
        for raw_slot in raw_slots:
            try:
                pair = rlp.as_list(raw_slot, "witness slot", 2)
            except rlp.RLPDecodingError as exc:
                raise WitnessError(str(exc)) from exc
            slot = _decode_uint(pair[0], "witness slot key")
            value = _decode_uint(pair[1], "witness slot value")
            if slot <= last_slot:
                raise WitnessError("witness slots must be sorted")
            if value == 0:
                raise WitnessError("witness slot values must be nonzero")
            last_slot = slot
            slots.append((slot, value))
        if not exists and (
            _decode_uint(entry[2], "witness nonce")
            or _decode_uint(entry[3], "witness balance")
            or code
            or slots
        ):
            raise WitnessError("non-member witness entry carries data")
        accounts.append(
            WitnessAccount(
                address=address,
                exists=exists,
                nonce=_decode_uint(entry[2], "witness nonce"),
                balance=_decode_uint(entry[3], "witness balance"),
                code=code,
                slots=tuple(slots),
            )
        )
    return Witness(
        pre_root=pre_root, nodes=tuple(nodes), accounts=tuple(accounts)
    )


# -- stateless validation -----------------------------------------------------

def _storage_tree(slots) -> MerkleTree:
    tree = MerkleTree()
    for slot, value in slots:
        tree.set(slot_key(slot), storage_value_hash(value))
    return tree


def _default_context(header) -> BlockContext:
    # No chain, no BLOCKHASH ancestry: queries answer 0, exactly like a
    # fresh node. Callers that track hashes pass their own context.
    return BlockContext(
        height=header.height,
        timestamp=header.timestamp,
        coinbase=header.coinbase,
        difficulty=header.difficulty,
        gas_limit=header.gas_limit,
    )


class StatelessValidator:
    """Re-execute blocks from witnesses alone — no resident state."""

    def validate(
        self,
        block,
        witness_blob: bytes,
        *,
        context: BlockContext | None = None,
        pre_root: bytes | None = None,
    ) -> StatelessResult:
        """Check *witness_blob*, re-execute *block*, recompute the root.

        Raises :class:`WitnessError` when the witness is malformed,
        inconsistent with its own pre-root, or insufficient for the
        block's execution; :class:`StateRootMismatchError` when *pre_root*
        (the expected chain tip) or the header's claimed ``state_root``
        disagrees with what the witness reproduces.
        """
        witness = decode_witness(witness_blob)
        if pre_root is not None and witness.pre_root != pre_root:
            raise StateRootMismatchError(
                f"witness pre-root {witness.pre_root.hex()[:16]}… does "
                f"not extend the expected tip {pre_root.hex()[:16]}…"
            )
        tree = MerkleTree.from_nodes(list(witness.nodes))
        if tree.root() != witness.pre_root:
            raise WitnessError(
                "witness tree does not hash to its claimed pre-root"
            )
        state = WorldState()
        for entry in witness.accounts:
            key = account_key(entry.address)
            if entry.exists:
                storage_root = _storage_tree(entry.slots).root()
                code_hash = (
                    keccak(entry.code) if entry.code else EMPTY_CODE_HASH
                )
                expected = account_value_hash(
                    entry.nonce, entry.balance, code_hash, storage_root
                )
                if tree.get(key) != expected:
                    raise WitnessError(
                        f"witness account {entry.address:#x} does not "
                        "match its leaf in the pre-state tree"
                    )
                state.load_account(
                    entry.address,
                    Account(
                        nonce=entry.nonce,
                        balance=entry.balance,
                        code=entry.code,
                        storage=dict(entry.slots),
                    ),
                )
            elif tree.get(key) is not None:
                raise WitnessError(
                    f"witness claims {entry.address:#x} absent but the "
                    "pre-state tree has a leaf for it"
                )
        evm = EVM(state, block=context or _default_context(block.header))
        receipts = [
            evm.execute_transaction(tx) for tx in block.transactions
        ]
        state.clear_journal()
        # Fold the post-state back into the partial tree. Execution that
        # escaped the witness crosses a stub here (or did so already,
        # inside the EVM) and fails loudly.
        addresses = {entry.address for entry in witness.accounts}
        addresses.update(state._accounts)
        for address in sorted(addresses):
            key = account_key(address)
            account = state._accounts.get(address)
            if account is None or account.is_empty:
                tree.delete(key)
                continue
            storage_tree = _storage_tree(
                (slot, value)
                for slot, value in account.storage.items()
                if value
            )
            tree.set(
                key,
                account_value_hash(
                    account.nonce,
                    account.balance,
                    account.code_hash,
                    storage_tree.root(),
                ),
            )
        post_root = tree.root()
        claimed = getattr(block.header, "state_root", b"")
        if claimed and claimed != post_root:
            raise StateRootMismatchError(
                f"stateless re-execution of block {block.header.height} "
                f"produced root {post_root.hex()[:16]}…, header claims "
                f"{claimed.hex()[:16]}…"
            )
        return StatelessResult(
            pre_root=witness.pre_root,
            post_root=post_root,
            receipts=receipts,
        )
