"""Merkleized authenticated state: incremental trie, proofs, witnesses.

The package splits along trust boundaries:

* :mod:`repro.trie.verify` — the *normative hashing spec* plus a
  dependency-free light-client verifier (hashlib only; copy-paste
  portable).
* :mod:`repro.trie.tree` — the in-memory crit-bit Merkle tree with
  memoized hashing (the node-side workhorse).
* :mod:`repro.trie.state_trie` — :class:`StateTrie`, the incremental
  bridge from :class:`~repro.chain.state.WorldState` to a sealed root,
  driven by first-touch pre-images so a block's root update costs
  O(touched · depth), never O(state).
* :mod:`repro.trie.proof` — RLP proof blobs served over JSON-RPC.
* :mod:`repro.trie.witness` — block witnesses and the
  :class:`StatelessValidator` that re-executes a block from one.
* :mod:`repro.trie.smoke` — ``python -m repro.trie.smoke`` end-to-end
  self-check.
"""

from .errors import (
    ProofDecodingError,
    StateRootMismatchError,
    WitnessError,
)
from .proof import (
    AccountProof,
    ProofStep,
    StorageProof,
    decode_proof,
    encode_proof,
)
from .state_trie import StateTrie
from .tree import MerkleTree
from .verify import (
    EMPTY_CODE_HASH,
    EMPTY_ROOT,
    account_key,
    account_value_hash,
    slot_key,
    storage_value_hash,
    verify_account_proof,
    verify_proof_blob,
    verify_storage_proof,
)
from .witness import (
    StatelessResult,
    StatelessValidator,
    Witness,
    build_witness,
    decode_witness,
)

__all__ = [
    "AccountProof",
    "EMPTY_CODE_HASH",
    "EMPTY_ROOT",
    "MerkleTree",
    "ProofDecodingError",
    "ProofStep",
    "StateRootMismatchError",
    "StatelessResult",
    "StatelessValidator",
    "StateTrie",
    "StorageProof",
    "Witness",
    "WitnessError",
    "account_key",
    "account_value_hash",
    "build_witness",
    "decode_proof",
    "decode_witness",
    "encode_proof",
    "slot_key",
    "storage_value_hash",
    "verify_account_proof",
    "verify_proof_blob",
    "verify_storage_proof",
]
