"""Light-client proof verification — the trie's canonical hashing spec.

This module is deliberately dependency-free: its verification core uses
only ``hashlib`` from the standard library, so a client can vendor this
one file and check balances against a served ``state_root`` without
importing the node. It is also the *normative* definition of the trie's
hashing scheme — the server-side tree (:mod:`repro.trie.tree`) and state
trie import their domain constants from here, so prover and verifier
cannot drift apart.

Hashing scheme (all hashes are SHA3-256, the repo's keccak stand-in;
every preimage is domain-separated by a leading tag byte):

* key(account)   = H(address as 32 big-endian bytes)
* key(slot)      = H(slot as 32 big-endian bytes)
* value(account) = H(0x02 ‖ nonce₃₂ ‖ balance₃₂ ‖ code_hash ‖ storage_root)
* value(slot)    = H(0x03 ‖ value₃₂)
* leaf           = H(0x00 ‖ key ‖ value_hash)
* branch(bit)    = H(0x01 ‖ bit as 2 big-endian bytes ‖ left ‖ right)
* empty tree     = H(0x04)

The tree is a crit-bit (path-compressed binary Patricia) trie over
32-byte keys: each branch names the first bit position at which its two
subtrees' keys diverge, and bit positions strictly increase from root to
leaf. That structure is *canonical* — determined by the key set alone —
so an inclusion proof is just the (bit, sibling_hash) pairs along the
path, foldable bottom-up with nothing but the key.

Only inclusion proofs are supported. Exclusion proofs (proving a key is
*absent*) would need the neighbouring leaf and are out of scope; the RPC
answers "no such account / empty slot" with a typed error instead.
"""

from __future__ import annotations

import hashlib

_LEAF_TAG = b"\x00"
_BRANCH_TAG = b"\x01"
_ACCOUNT_TAG = b"\x02"
_SLOT_TAG = b"\x03"
_EMPTY_TAG = b"\x04"

#: Number of bits in a key (32-byte hashed keys).
KEY_BITS = 256


def keccak(data: bytes) -> bytes:
    """The digest the whole repo calls keccak256 (see repro.crypto)."""
    return hashlib.sha3_256(data).digest()


#: Root hash of the empty tree.
EMPTY_ROOT = keccak(_EMPTY_TAG)

#: Code hash of an account with no code.
EMPTY_CODE_HASH = keccak(b"")


def account_key(address: int) -> bytes:
    return keccak(address.to_bytes(32, "big"))


def slot_key(slot: int) -> bytes:
    return keccak(slot.to_bytes(32, "big"))


def account_value_hash(
    nonce: int, balance: int, code_hash: bytes, storage_root: bytes
) -> bytes:
    return keccak(
        _ACCOUNT_TAG
        + nonce.to_bytes(32, "big")
        + balance.to_bytes(32, "big")
        + code_hash
        + storage_root
    )


def storage_value_hash(value: int) -> bytes:
    return keccak(_SLOT_TAG + value.to_bytes(32, "big"))


def leaf_hash(key: bytes, value_hash: bytes) -> bytes:
    return keccak(_LEAF_TAG + key + value_hash)


def branch_hash(bit: int, left: bytes, right: bytes) -> bytes:
    return keccak(_BRANCH_TAG + bit.to_bytes(2, "big") + left + right)


def key_bit(key: bytes, index: int) -> int:
    """Bit *index* of *key*, MSB-first (bit 0 = top bit of byte 0)."""
    return (key[index >> 3] >> (7 - (index & 7))) & 1


def fold_steps(key: bytes, leaf: bytes, steps) -> bytes:
    """Fold proof *steps* bottom-up from a *leaf* hash into a root.

    *steps* is the root→leaf sequence of ``(bit, sibling_hash)`` pairs;
    the key's own bit at each branch position decides which side the
    running hash sits on. Bits must strictly increase root→leaf (the
    crit-bit canonical-structure invariant) — a proof violating that
    could not have come from a well-formed tree and raises
    :class:`ValueError`.
    """
    current = leaf
    previous_bit = KEY_BITS
    for bit, sibling in reversed(list(steps)):
        if not 0 <= bit < previous_bit:
            raise ValueError(
                "proof step bits must strictly increase root to leaf"
            )
        if len(sibling) != 32:
            raise ValueError("proof sibling hashes must be 32 bytes")
        previous_bit = bit
        if key_bit(key, bit):
            current = branch_hash(bit, sibling, current)
        else:
            current = branch_hash(bit, current, sibling)
    return current


def verify_account_proof(proof, state_root: bytes) -> bool:
    """True iff *proof* binds its account data to *state_root*.

    *proof* is anything shaped like
    :class:`repro.trie.proof.AccountProof` (duck-typed: ``address``,
    ``nonce``, ``balance``, ``code_hash``, ``storage_root``, and
    ``steps`` of ``(bit, sibling)``-shaped objects). Malformed values
    return False — a verifier never throws on a bad proof.
    """
    try:
        key = account_key(proof.address)
        leaf = leaf_hash(
            key,
            account_value_hash(
                proof.nonce,
                proof.balance,
                proof.code_hash,
                proof.storage_root,
            ),
        )
        root = fold_steps(
            key, leaf, [(step.bit, step.sibling) for step in proof.steps]
        )
    except (ValueError, OverflowError, AttributeError, TypeError):
        return False
    return root == state_root


def verify_storage_proof(proof, state_root: bytes) -> bool:
    """True iff *proof* binds ``slot == value`` to *state_root*.

    Verifies the embedded account proof against *state_root*, then the
    storage step chain against that account's ``storage_root``. Zero
    values are never in the trie, so a zero-valued "proof" is invalid
    by construction.
    """
    if not verify_account_proof(proof.account, state_root):
        return False
    try:
        if not 0 < proof.value < (1 << 256):
            return False
        key = slot_key(proof.slot)
        leaf = leaf_hash(key, storage_value_hash(proof.value))
        root = fold_steps(
            key, leaf, [(step.bit, step.sibling) for step in proof.steps]
        )
    except (ValueError, OverflowError, AttributeError, TypeError):
        return False
    return root == proof.account.storage_root


def verify_proof_blob(blob: bytes, state_root: bytes):
    """Decode a wire proof and verify it against *state_root*.

    Returns ``(proof, ok)``. Decoding raises
    :class:`~repro.trie.errors.ProofDecodingError` on malformed bytes;
    a well-formed proof that does not bind to *state_root* returns
    ``ok=False``. (This convenience helper imports the wire codec and is
    therefore not part of the dependency-free core above.)
    """
    from .proof import StorageProof, decode_proof

    proof = decode_proof(blob)
    if isinstance(proof, StorageProof):
        return proof, verify_storage_proof(proof, state_root)
    return proof, verify_account_proof(proof, state_root)
