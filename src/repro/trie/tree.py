"""The incremental crit-bit Merkle tree (one tree per key space).

A path-compressed binary Patricia trie over fixed 32-byte keys. Every
internal node names the first bit position at which its two subtrees
diverge; bit positions strictly increase from root to leaf, so the
structure is *canonical* — determined solely by the key set. Mutations
invalidate only the hashes along one root→leaf path, and
:meth:`MerkleTree.root` lazily rehashes exactly the invalidated nodes,
which is what makes per-block root maintenance O(touched · depth)
instead of O(state).

Trees can be *partial*: :meth:`MerkleTree.from_nodes` rebuilds a tree in
which unexpanded subtrees are opaque hash stubs (the block-witness
encoding). Any get/set/delete whose descent crosses a stub raises
:class:`~repro.trie.errors.WitnessError` — a stateless validator can
never silently read or write state its witness did not cover.
"""

from __future__ import annotations

from .errors import WitnessError
from .verify import EMPTY_ROOT, KEY_BITS, branch_hash, key_bit, leaf_hash

__all__ = ["EMPTY_ROOT", "MerkleTree"]


class _Leaf:
    __slots__ = ("key", "value", "hash")

    def __init__(self, key: bytes, value: bytes) -> None:
        self.key = key
        self.value = value
        self.hash: bytes | None = None


class _Branch:
    __slots__ = ("bit", "left", "right", "hash")

    def __init__(self, bit: int, left, right) -> None:
        self.bit = bit
        self.left = left
        self.right = right
        self.hash: bytes | None = None


class _Stub:
    """An unexpanded subtree known only by its hash (partial trees)."""

    __slots__ = ("hash",)

    def __init__(self, digest: bytes) -> None:
        self.hash = digest


def _diverge_bit(a: bytes, b: bytes) -> int:
    """First bit position (MSB-first) at which two 32-byte keys differ."""
    for i in range(32):
        x = a[i] ^ b[i]
        if x:
            return (i << 3) + (8 - x.bit_length())
    raise ValueError("keys are identical")


class MerkleTree:
    """One authenticated key→value-hash map (account tree or a subtrie).

    Values are opaque 32-byte strings (already-hashed commitments); the
    tree never interprets them. *counter* is an optional shared
    single-cell list the hashing pass increments once per recomputed
    node, so a :class:`~repro.trie.state_trie.StateTrie` can meter
    rehash work across its account tree and every storage subtrie.
    """

    __slots__ = ("_root", "_counter")

    def __init__(self, counter: list[int] | None = None) -> None:
        self._root = None
        self._counter = counter if counter is not None else [0]

    @property
    def nodes_rehashed(self) -> int:
        return self._counter[0]

    # -- queries -----------------------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """The value hash at *key*, or None when absent.

        Absence is decidable in a crit-bit tree by descent alone: if the
        key were present it would sit exactly where the descent lands.
        Crossing a stub raises :class:`WitnessError` — a partial tree
        cannot prove absence through an unexpanded subtree.
        """
        node = self._root
        while isinstance(node, _Branch):
            node = node.right if key_bit(key, node.bit) else node.left
        if isinstance(node, _Stub):
            raise WitnessError(
                "lookup crossed an unexpanded witness subtree"
            )
        if node is not None and node.key == key:
            return node.value
        return None

    # -- mutations ---------------------------------------------------------
    def set(self, key: bytes, value: bytes) -> None:
        """Insert or update *key* → *value*, invalidating one path."""
        node = self._root
        if node is None:
            self._root = _Leaf(key, value)
            return
        # Peek descent (no invalidation yet) to the leaf this key routes
        # to; its key decides where the new branch splices in.
        while isinstance(node, _Branch):
            node = node.right if key_bit(key, node.bit) else node.left
        if isinstance(node, _Stub):
            raise WitnessError(
                "insert crossed an unexpanded witness subtree"
            )
        if node.key == key:
            current = self._root
            while isinstance(current, _Branch):
                current.hash = None
                current = (
                    current.right
                    if key_bit(key, current.bit)
                    else current.left
                )
            current.value = value
            current.hash = None
            return
        diverge = _diverge_bit(key, node.key)
        # Splice point: the first node whose bit exceeds the diverging
        # bit (bits strictly increase along any path).
        parent = None
        current = self._root
        while isinstance(current, _Branch) and current.bit < diverge:
            current.hash = None
            parent = current
            current = (
                current.right if key_bit(key, current.bit) else current.left
            )
        leaf = _Leaf(key, value)
        if key_bit(key, diverge):
            branch = _Branch(diverge, current, leaf)
        else:
            branch = _Branch(diverge, leaf, current)
        if parent is None:
            self._root = branch
        elif key_bit(key, parent.bit):
            parent.right = branch
        else:
            parent.left = branch

    def delete(self, key: bytes) -> bool:
        """Remove *key*; returns False when it was not present."""
        node = self._root
        if node is None:
            return False
        path: list[_Branch] = []
        while isinstance(node, _Branch):
            path.append(node)
            node = node.right if key_bit(key, node.bit) else node.left
        if isinstance(node, _Stub):
            raise WitnessError(
                "delete crossed an unexpanded witness subtree"
            )
        if node.key != key:
            return False
        if not path:
            self._root = None
            return True
        for branch in path:
            branch.hash = None
        parent = path[-1]
        sibling = parent.left if key_bit(key, parent.bit) else parent.right
        if len(path) == 1:
            self._root = sibling
        else:
            grand = path[-2]
            if key_bit(key, grand.bit):
                grand.right = sibling
            else:
                grand.left = sibling
        return True

    # -- hashing -----------------------------------------------------------
    def root(self) -> bytes:
        """The root hash, rehashing exactly the invalidated nodes."""
        if self._root is None:
            return EMPTY_ROOT
        return self._hash(self._root)

    def _hash(self, node) -> bytes:
        digest = node.hash
        if digest is None:
            if isinstance(node, _Leaf):
                digest = leaf_hash(node.key, node.value)
            else:
                digest = branch_hash(
                    node.bit,
                    self._hash(node.left),
                    self._hash(node.right),
                )
            node.hash = digest
            self._counter[0] += 1
        return digest

    # -- proofs ------------------------------------------------------------
    def prove(self, key: bytes) -> list[tuple[int, bytes]]:
        """Inclusion proof: root→leaf ``(bit, sibling_hash)`` steps.

        Raises :class:`KeyError` when *key* is absent (only inclusion is
        provable) and :class:`WitnessError` on a stub-crossing path.
        """
        self.root()  # every hash on (and beside) the path is now fresh
        steps: list[tuple[int, bytes]] = []
        node = self._root
        while isinstance(node, _Branch):
            if key_bit(key, node.bit):
                steps.append((node.bit, self._hash(node.left)))
                node = node.right
            else:
                steps.append((node.bit, self._hash(node.right)))
                node = node.left
        if isinstance(node, _Stub):
            raise WitnessError(
                "proof path crossed an unexpanded witness subtree"
            )
        if node is None or node.key != key:
            raise KeyError("key is not in the tree")
        return steps

    # -- partial-tree (witness) serialization ------------------------------
    def serialize_expanded(self, keys) -> list[tuple]:
        """Flat post-order node list, expanded only along *keys*' paths.

        Nodes off every descent path collapse to ``("stub", hash)``.
        The flat (stack-machine) encoding keeps the wire format at a
        fixed RLP nesting depth regardless of tree depth. Tags:
        ``("leaf", key, value)``, ``("branch", bit)``,
        ``("stub", hash)``, ``("empty",)``.
        """
        if self._root is None:
            return [("empty",)]
        self.root()  # stubs need fresh hashes
        expanded: set[int] = set()
        for key in keys:
            node = self._root
            while isinstance(node, _Branch):
                expanded.add(id(node))
                node = node.right if key_bit(key, node.bit) else node.left
            expanded.add(id(node))
        out: list[tuple] = []
        stack: list[tuple[object, bool]] = [(self._root, False)]
        while stack:
            node, emit = stack.pop()
            if isinstance(node, _Branch) and id(node) in expanded:
                if emit:
                    out.append(("branch", node.bit))
                else:
                    stack.append((node, True))
                    stack.append((node.right, False))
                    stack.append((node.left, False))
            elif isinstance(node, _Leaf) and id(node) in expanded:
                out.append(("leaf", node.key, node.value))
            else:
                out.append(("stub", self._hash(node)))
        return out

    @classmethod
    def from_nodes(cls, nodes) -> "MerkleTree":
        """Rebuild a (partial) tree from :meth:`serialize_expanded` output.

        Structurally validates the encoding — balanced stack machine,
        branch bits strictly increasing downward, every leaf routed to
        the subtree its key bits select — and raises
        :class:`WitnessError` on any violation, so a hostile witness
        cannot materialize a tree no honest prover could have built.
        """
        tree = cls()
        if len(nodes) == 1 and nodes[0][0] == "empty":
            return tree
        stack: list = []
        for node in nodes:
            tag = node[0]
            if tag == "leaf":
                stack.append(_Leaf(node[1], node[2]))
            elif tag == "stub":
                stack.append(_Stub(node[1]))
            elif tag == "branch":
                bit = node[1]
                if not 0 <= bit < KEY_BITS:
                    raise WitnessError(f"branch bit {bit} out of range")
                if len(stack) < 2:
                    raise WitnessError("unbalanced witness tree encoding")
                right = stack.pop()
                left = stack.pop()
                for child in (left, right):
                    if isinstance(child, _Branch) and child.bit <= bit:
                        raise WitnessError(
                            "branch bits must strictly increase downward"
                        )
                stack.append(_Branch(bit, left, right))
            elif tag == "empty":
                raise WitnessError("empty marker inside a non-empty tree")
            else:
                raise WitnessError(f"unknown witness node tag {tag!r}")
        if len(stack) != 1:
            raise WitnessError("unbalanced witness tree encoding")
        root = stack[0]
        # Leaf routing check: each leaf's key bits must match every
        # branch decision above it, or the tree is non-canonical.
        check: list[tuple[object, tuple]] = [(root, ())]
        while check:
            node, constraints = check.pop()
            if isinstance(node, _Branch):
                check.append((node.left, constraints + ((node.bit, 0),)))
                check.append((node.right, constraints + ((node.bit, 1),)))
            elif isinstance(node, _Leaf):
                for bit, side in constraints:
                    if key_bit(node.key, bit) != side:
                        raise WitnessError(
                            "witness leaf routed to the wrong subtree"
                        )
        tree._root = root
        return tree
