"""Wire encoding for account and storage inclusion proofs.

Proofs travel as RLP blobs over JSON-RPC (hex-encoded by the transport).
The decoder is hardened against hostile bytes in the style of
:mod:`repro.chain.rlp`: every structural violation — wrong tag, wrong
field count, oversized blob, out-of-range integers, non-monotonic step
bits, mis-sized hashes — raises :class:`ProofDecodingError`, never a
bare ``IndexError``/``TypeError``, and a decoded proof is always
*shaped* correctly (verification against a root is a separate step in
:mod:`repro.trie.verify`).

Layout (RLP item lists; integers are minimal big-endian):

* account proof: ``[0x01, address, nonce, balance, code_hash,
  storage_root, [[bit, sibling], ...]]``
* storage proof: ``[0x02, <account proof list>, slot, value,
  [[bit, sibling], ...]]``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain import rlp
from .errors import ProofDecodingError
from .verify import KEY_BITS

__all__ = [
    "AccountProof",
    "MAX_PROOF_BYTES",
    "ProofStep",
    "StorageProof",
    "decode_proof",
    "encode_proof",
]

#: Upper bound on an encoded proof. A real proof is ≤ 256 steps of
#: ~35 bytes plus a small header; 1 MiB is orders of magnitude above
#: that and simply stops a hostile peer from forcing a huge decode.
MAX_PROOF_BYTES = 1 << 20

_ACCOUNT_PROOF_TAG = 1
_STORAGE_PROOF_TAG = 2

_UINT256_LIMIT = 1 << 256


@dataclass(frozen=True)
class ProofStep:
    """One branch on the root→leaf path: its bit and the off-path hash."""

    bit: int
    sibling: bytes


@dataclass(frozen=True)
class AccountProof:
    """An account leaf plus the sibling chain binding it to a root."""

    address: int
    nonce: int
    balance: int
    code_hash: bytes
    storage_root: bytes
    steps: tuple[ProofStep, ...] = field(default=())


@dataclass(frozen=True)
class StorageProof:
    """A storage slot bound to its account's ``storage_root``, which the
    embedded :class:`AccountProof` in turn binds to the state root."""

    account: AccountProof
    slot: int
    value: int
    steps: tuple[ProofStep, ...] = field(default=())


def _steps_to_rlp(steps) -> list:
    return [[rlp.encode_int(s.bit), s.sibling] for s in steps]


def _account_to_rlp(proof: AccountProof) -> list:
    return [
        rlp.encode_int(_ACCOUNT_PROOF_TAG),
        rlp.encode_int(proof.address),
        rlp.encode_int(proof.nonce),
        rlp.encode_int(proof.balance),
        proof.code_hash,
        proof.storage_root,
        _steps_to_rlp(proof.steps),
    ]


def encode_proof(proof: AccountProof | StorageProof) -> bytes:
    """Encode a proof to its RLP wire form."""
    if isinstance(proof, AccountProof):
        return rlp.encode(_account_to_rlp(proof))
    if isinstance(proof, StorageProof):
        return rlp.encode(
            [
                rlp.encode_int(_STORAGE_PROOF_TAG),
                _account_to_rlp(proof.account),
                rlp.encode_int(proof.slot),
                rlp.encode_int(proof.value),
                _steps_to_rlp(proof.steps),
            ]
        )
    raise TypeError(f"cannot encode {type(proof).__name__} as a proof")


def _decode_uint(item, what: str, limit: int = _UINT256_LIMIT) -> int:
    value = rlp.decode_int(rlp.as_bytes(item, what))
    if value >= limit:
        raise ProofDecodingError(f"{what} out of range")
    return value


def _decode_hash(item, what: str) -> bytes:
    data = rlp.as_bytes(item, what)
    if len(data) != 32:
        raise ProofDecodingError(f"{what} must be 32 bytes")
    return data


def _decode_steps(item, what: str) -> tuple[ProofStep, ...]:
    items = rlp.as_list(item, what)
    if len(items) > KEY_BITS:
        raise ProofDecodingError(f"{what} has more than {KEY_BITS} steps")
    steps = []
    previous = -1
    for entry in items:
        bit_item, sibling_item = rlp.as_list(entry, f"{what} step", 2)
        bit = _decode_uint(bit_item, f"{what} step bit", KEY_BITS)
        if bit <= previous:
            raise ProofDecodingError(
                f"{what} step bits must strictly increase"
            )
        previous = bit
        steps.append(
            ProofStep(bit, _decode_hash(sibling_item, f"{what} sibling"))
        )
    return tuple(steps)


def _decode_account(items) -> AccountProof:
    fields = rlp.as_list(items, "account proof", 7)
    if _decode_uint(fields[0], "proof tag", 256) != _ACCOUNT_PROOF_TAG:
        raise ProofDecodingError("embedded proof is not an account proof")
    return AccountProof(
        address=_decode_uint(fields[1], "address"),
        nonce=_decode_uint(fields[2], "nonce"),
        balance=_decode_uint(fields[3], "balance"),
        code_hash=_decode_hash(fields[4], "code hash"),
        storage_root=_decode_hash(fields[5], "storage root"),
        steps=_decode_steps(fields[6], "account steps"),
    )


def decode_proof(blob: bytes) -> AccountProof | StorageProof:
    """Decode wire bytes into a proof, or raise :class:`ProofDecodingError`.

    Any malformation — RLP damage, wrong shape, out-of-range values —
    surfaces as the one typed error; nothing else escapes.
    """
    if not isinstance(blob, (bytes, bytearray)):
        raise ProofDecodingError("proof blob must be bytes")
    if len(blob) > MAX_PROOF_BYTES:
        raise ProofDecodingError(
            f"proof blob exceeds {MAX_PROOF_BYTES} bytes"
        )
    try:
        items = rlp.as_list(rlp.decode(bytes(blob)), "proof")
        if not items:
            raise ProofDecodingError("proof list is empty")
        tag = _decode_uint(items[0], "proof tag", 256)
        if tag == _ACCOUNT_PROOF_TAG:
            return _decode_account(items)
        if tag == _STORAGE_PROOF_TAG:
            fields = rlp.as_list(items, "storage proof", 5)
            return StorageProof(
                account=_decode_account(fields[1]),
                slot=_decode_uint(fields[2], "slot"),
                value=_decode_uint(fields[3], "value"),
                steps=_decode_steps(fields[4], "storage steps"),
            )
        raise ProofDecodingError(f"unknown proof tag {tag}")
    except ProofDecodingError:
        raise
    except rlp.RLPDecodingError as exc:
        raise ProofDecodingError(str(exc)) from exc
