"""Typed errors of the authenticated-state subsystem.

Everything that decodes untrusted bytes (proofs, witnesses) raises a
subclass of :class:`ValueError`, mirroring the discipline of
:class:`repro.chain.rlp.RLPDecodingError`: hostile input produces a
typed, catchable error — never an ``IndexError``/``TypeError`` escaping
from the middle of a parser, and never a silently "verified" result.
"""

from __future__ import annotations


class ProofDecodingError(ValueError):
    """Proof bytes are malformed (structure, widths, bounds, RLP)."""


class WitnessError(ValueError):
    """A block witness is malformed, insufficient, or inconsistent.

    Raised both by the witness decoder (structural damage) and by the
    stateless validator when execution needs state the witness did not
    cover (a traversal crossing an unexpanded subtree stub).
    """


class StateRootMismatchError(RuntimeError):
    """A block's claimed ``state_root`` disagrees with the recomputed one.

    This is the Merkleized analogue of a WAL digest mismatch: raised by
    :meth:`repro.chain.node.Node.seal_state_root` when a header already
    carries a root (replication, recovery replay) that the local trie
    update does not reproduce bit-identically.
    """
