"""Authenticated-state smoke test: trie, proofs, witnesses, end to end.

``python -m repro.trie.smoke`` drives a witness-emitting node through a
contract-heavy workload and asserts the subsystem's load-bearing
properties over real blocks:

* **Incremental = from-scratch** — after every committed block the
  incrementally maintained root is bit-identical to a full rebuild from
  the flat state (:meth:`StateTrie.rebuild_root`).
* **Stateless re-execution** — every block's witness replays through
  :class:`StatelessValidator` with no access to full state, landing on
  the sealed post-root bit-identically and reproducing the receipts.
* **Proofs verify — and only honest ones** — account and storage proofs
  cut from the live trie verify against the sealed root; every
  single-byte corruption of the wire blob either raises the typed
  :class:`ProofDecodingError` or fails verification. No corruption may
  verify; none may escape as an untyped exception.

The CI ``trie-smoke`` job runs exactly this.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..chain.node import Node
from ..chain.receipt import receipts_root
from ..contracts.registry import build_deployment
from ..serve.loadgen import make_transactions
from .errors import ProofDecodingError, WitnessError
from .proof import decode_proof, encode_proof
from .state_trie import StateTrie
from .verify import (
    verify_account_proof,
    verify_proof_blob,
    verify_storage_proof,
)
from .witness import StatelessValidator


def _check_proof_mutations(blob: bytes, state_root: bytes,
                           failures: list[str], stride: int) -> int:
    """Flip/truncate/extend the blob; nothing mutated may verify."""
    checked = 0
    variants = [blob[:cut] for cut in range(0, len(blob), stride)]
    variants.append(blob + b"\x00")
    for index in range(0, len(blob), stride):
        for flip in (0x01, 0x80, 0xFF):
            mutated = bytearray(blob)
            mutated[index] ^= flip
            if bytes(mutated) != blob:
                variants.append(bytes(mutated))
    for variant in variants:
        checked += 1
        try:
            _, ok = verify_proof_blob(variant, state_root)
        except ProofDecodingError:
            continue
        except Exception as exc:  # noqa: BLE001 - the property under test
            failures.append(
                f"proof mutation escaped as {type(exc).__name__}: {exc}"
            )
            continue
        if ok:
            failures.append(
                f"corrupted proof ({len(variant)} bytes) verified"
            )
    return checked


def run_smoke(blocks: int = 8, transactions: int = 32,
              seed: int = 7, workload: str = "mixed") -> dict:
    """Run the whole drill; returns the stats dict (see ``main``)."""
    deployment = build_deployment(num_accounts=32)
    node = Node(state=deployment.state.copy(), emit_witness=True)
    validator = StatelessValidator()
    failures: list[str] = []
    txs = make_transactions(
        deployment, blocks * transactions, workload=workload, seed=seed
    )
    last_root = node.state_root
    proof_bytes: list[int] = []
    witness_bytes: list[int] = []
    verify_seconds = 0.0
    mutations_checked = 0

    for height in range(blocks):
        chunk = txs[height * transactions:(height + 1) * transactions]
        for tx in chunk:
            node.hear(tx)
        block = node.propose_block(max_transactions=transactions)
        receipts = node.execute_block(block)

        sealed = block.header.state_root
        rebuilt = StateTrie.rebuild_root(node.state)
        if sealed != rebuilt:
            failures.append(
                f"block {block.header.height}: incremental root "
                f"{sealed.hex()[:16]}… != rebuilt {rebuilt.hex()[:16]}…"
            )

        witness = node.witnesses[block.header.height]
        witness_bytes.append(len(witness))
        try:
            result = validator.validate(
                block, witness, pre_root=last_root
            )
        except WitnessError as exc:
            failures.append(
                f"block {block.header.height}: witness rejected: {exc}"
            )
        else:
            if result.post_root != sealed:
                failures.append(
                    f"block {block.header.height}: stateless post-root "
                    f"diverged"
                )
            if receipts_root(result.receipts) != receipts_root(receipts):
                failures.append(
                    f"block {block.header.height}: stateless receipts "
                    f"diverged"
                )
        last_root = sealed

    # -- proofs over the final state ------------------------------------
    assert node.trie is not None
    root = node.state_root
    proved_accounts = 0
    proved_slots = 0
    for address, account in sorted(node.state._accounts.items()):
        if account.is_empty:
            continue
        proof = node.trie.account_proof(address)
        blob = encode_proof(proof)
        proof_bytes.append(len(blob))
        started = time.perf_counter()
        decoded = decode_proof(blob)
        ok = verify_account_proof(decoded, root)
        verify_seconds += time.perf_counter() - started
        if not ok:
            failures.append(f"account proof for {address:#x} rejected")
        if verify_account_proof(decoded, bytes(32)):
            failures.append("account proof verified under a wrong root")
        proved_accounts += 1
        if proved_accounts <= 4:
            mutations_checked += _check_proof_mutations(
                blob, root, failures, stride=max(1, len(blob) // 64)
            )
        for slot, value in sorted(account.storage.items()):
            if not value or proved_slots >= 8:
                break
            sproof = node.trie.storage_proof(address, slot, value)
            sblob = encode_proof(sproof)
            proof_bytes.append(len(sblob))
            started = time.perf_counter()
            sdecoded = decode_proof(sblob)
            sok = verify_storage_proof(sdecoded, root)
            verify_seconds += time.perf_counter() - started
            if not sok:
                failures.append(
                    f"storage proof {address:#x}[{slot:#x}] rejected"
                )
            proved_slots += 1
            if proved_slots <= 2:
                mutations_checked += _check_proof_mutations(
                    sblob, root, failures,
                    stride=max(1, len(sblob) // 64),
                )

    return {
        "blocks": len(node.chain),
        "transactions": sum(len(b.transactions) for b in node.chain),
        "proved_accounts": proved_accounts,
        "proved_slots": proved_slots,
        "proof_bytes_max": max(proof_bytes, default=0),
        "witness_bytes_max": max(witness_bytes, default=0),
        "verify_ms_total": verify_seconds * 1000.0,
        "mutations_checked": mutations_checked,
        "nodes_rehashed": node.trie.nodes_rehashed,
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=8)
    parser.add_argument("--transactions", type=int, default=32,
                        help="transactions per block")
    parser.add_argument(
        "--workload", choices=("transfer", "hotburst", "erc20", "mixed"),
        default="mixed",
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    stats = run_smoke(
        blocks=args.blocks,
        transactions=args.transactions,
        seed=args.seed,
        workload=args.workload,
    )
    failures = stats.pop("failures")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(f"trie-smoke FAILED ({len(failures)} failures)",
              file=sys.stderr)
        return 1
    print(
        f"trie-smoke ok: {stats['blocks']} blocks / "
        f"{stats['transactions']} txs, roots incremental==rebuilt, "
        f"stateless replay bit-identical, "
        f"{stats['proved_accounts']} account + {stats['proved_slots']} "
        f"storage proofs verified "
        f"({stats['proof_bytes_max']}B max, "
        f"{stats['verify_ms_total']:.1f} ms), "
        f"{stats['mutations_checked']} corruptions rejected, "
        f"witness max {stats['witness_bytes_max']}B",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
