"""repro — a full-system reproduction of "An Algorithm and Architecture
Co-design for Accelerating Smart Contracts in Blockchain" (ISCA 2023).

Public API tour:

* :mod:`repro.evm` — the smart-contract VM (opcode set, interpreter,
  dataflow tracer).
* :mod:`repro.chain` — blockchain substrate (state, transactions, blocks,
  dependency-DAG discovery, three-stage node).
* :mod:`repro.contracts` — assembler, contract compiler, and the TOP8
  contract suite with a deployable genesis world.
* :mod:`repro.workload` — block generators with controlled redundancy,
  dependency ratio and ERC20 proportion.
* :mod:`repro.core.mtpu` — the MTPU microarchitecture model (fill unit,
  DB cache, pipeline timing, memory hierarchy, area model).
* :mod:`repro.core.scheduler` — the spatio-temporal scheduling algorithm
  and the synchronous/sequential baselines.
* :mod:`repro.core.hotspot` — hotspot contract optimization (chunking,
  pre-execution, constant elimination, prefetching).
* :mod:`repro.baselines` — the BPU comparator model.
* :mod:`repro.analysis` — instruction mixes and context-load breakdowns.
* :mod:`repro.faults` — fault injection (corrupted DAGs/roots, hostile
  transactions, PU failures, stale profiles) and the per-block
  :class:`~repro.faults.DegradationReport` robustness counters.

Quickstart::

    from repro import build_deployment, generate_dependency_block
    from repro.core.mtpu import MTPUExecutor, PUConfig
    from repro.core.scheduler import run_sequential, run_spatial_temporal

    block = generate_dependency_block(num_transactions=64,
                                      target_ratio=0.3, seed=1)
    state = block.deployment.state
    seq = run_sequential(
        MTPUExecutor(state.copy(), num_pus=1), block.transactions)
    par = run_spatial_temporal(
        MTPUExecutor(state.copy(), num_pus=4),
        block.transactions, block.dag_edges)
    print(f"speedup: {seq.makespan_cycles / par.makespan_cycles:.2f}x")
"""

from .chain import Block, Transaction, WorldState
from .contracts import Deployment, build_deployment, compile_suite
from .core.hotspot import HotspotOptimizer, HotspotTracker
from .core.validator import AcceleratedValidator
from .core.mtpu import MTPUExecutor, PUConfig, TimingConfig, estimate_area
from .core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from .evm import EVM, Tracer
from .faults import DegradationReport, FaultInjector, FaultPlan
from .workload import (
    GeneratedBlock,
    generate_block,
    generate_dependency_block,
    generate_erc20_block,
)

__version__ = "0.1.0"

__all__ = [
    "Block",
    "Transaction",
    "WorldState",
    "Deployment",
    "build_deployment",
    "compile_suite",
    "HotspotOptimizer",
    "HotspotTracker",
    "AcceleratedValidator",
    "MTPUExecutor",
    "PUConfig",
    "TimingConfig",
    "estimate_area",
    "run_sequential",
    "run_spatial_temporal",
    "run_synchronous",
    "EVM",
    "Tracer",
    "DegradationReport",
    "FaultInjector",
    "FaultPlan",
    "GeneratedBlock",
    "generate_block",
    "generate_dependency_block",
    "generate_erc20_block",
    "__version__",
]
