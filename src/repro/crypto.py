"""Hashing and address utilities shared by the EVM and chain substrates.

Substitution note (see DESIGN.md): Ethereum uses keccak-256; we use NIST
SHA3-256 from :mod:`hashlib`. Both are 256-bit sponge digests and every use
in this system treats the digest as opaque (function selectors, storage-map
key derivation, code hashes, block/transaction hashes), so the substitution
does not change any behaviour the paper evaluates.
"""

from __future__ import annotations

import hashlib

WORD_MASK = (1 << 256) - 1
ADDRESS_MASK = (1 << 160) - 1


def keccak256(data: bytes) -> bytes:
    """256-bit digest standing in for keccak-256."""
    return hashlib.sha3_256(data).digest()


def keccak256_int(data: bytes) -> int:
    """The digest as a 256-bit unsigned integer (EVM word)."""
    return int.from_bytes(keccak256(data), "big")


def selector(signature: str) -> bytes:
    """4-byte function selector for a canonical signature string.

    This is the "function identifier" of the paper's *Input* field
    (Fig. 3): the first four bytes of the hash of e.g.
    ``"transfer(address,uint256)"``.
    """
    return keccak256(signature.encode("ascii"))[:4]


def selector_int(signature: str) -> int:
    """The selector as an integer (as it appears on the EVM stack)."""
    return int.from_bytes(selector(signature), "big")


def address_from_int(value: int) -> int:
    """Mask an integer to a 160-bit account address."""
    return value & ADDRESS_MASK


def contract_address(sender: int, nonce: int) -> int:
    """Deterministic CREATE address from sender and nonce."""
    payload = sender.to_bytes(20, "big") + nonce.to_bytes(8, "big")
    return keccak256_int(payload) & ADDRESS_MASK


def create2_address(sender: int, salt: int, code: bytes) -> int:
    """Deterministic CREATE2 address from sender, salt and init code."""
    payload = (
        b"\xff" + sender.to_bytes(20, "big") + salt.to_bytes(32, "big")
        + keccak256(code)
    )
    return keccak256_int(payload) & ADDRESS_MASK
