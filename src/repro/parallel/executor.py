"""The multicore parallel execution backend (coordinator side).

:class:`ParallelBlockExecutor` executes a block's transactions across a
persistent pool of worker processes, guided by the dependency DAG: a
transaction is dispatched the moment every predecessor has committed, so
independent transactions run concurrently while conflicting ones keep
their block-order serialization. The coordinator merges each returned
write journal into the authoritative state, validates the worker's
*actual* access set against the *declared* one, and falls back to plain
sequential re-execution on any mismatch — the final state digest and
receipts are always identical to sequential execution.

Journal merge is deterministic without any coordinator-side ordering:
two transactions that write the same key necessarily conflict, so the
DAG already serializes them; journals of concurrently-committed
transactions touch disjoint keys (the commutative coinbase fee delta is
the engineered exception). The fee/nonce bookkeeping the EVM performs
*outside* access tracking is covered by augmenting every transaction's
write set with its sender's balance/nonce before scheduling.

When the block comes with :class:`~repro.chain.journal.ExecutionArtifact`
pre-executions (the execute-once pipeline), fresh artifacts are replayed
by the coordinator — a read-value check plus a journal apply — and only
stale ones are re-executed, collapsing the 2× execute-twice cost of the
discover-then-execute pipeline to ~1×.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..chain.journal import ExecutionArtifact, WriteJournal
from ..chain.receipt import Receipt
from ..chain.state import BALANCE_KEY, NONCE_KEY, WorldState
from ..chain.transaction import Transaction
from ..obs import get_registry
from . import worker as worker_mod
from .worker import apply_overlay  # noqa: F401  (re-export for tests)


class AccessMismatch(Exception):
    """A transaction's actual accesses diverged from its declared set."""


@dataclass
class ParallelBlockResult:
    """Outcome and counters of one parallel block execution."""

    receipts: list[Receipt]
    num_workers: int
    backend: str
    #: Transactions replayed from fresh pre-execution artifacts.
    replayed: int = 0
    #: Transactions executed by pool workers.
    dispatched: int = 0
    #: Transactions executed inline by the coordinator (serial backend,
    #: or stale artifacts under the serial backend).
    executed_inline: int = 0
    #: Artifacts rejected by the read-value freshness check.
    stale_artifacts: int = 0
    #: True when the whole block degraded to sequential re-execution.
    fell_back: bool = False
    wall_seconds: float = 0.0
    mismatches: list[int] = field(default_factory=list)

    @property
    def tx_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.receipts) / self.wall_seconds


def _augmented_edges(
    transactions: list[Transaction],
    access_sets: list,
    edges: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Dependency edges plus the implicit fee/nonce conflicts.

    The EVM debits the sender's balance (gas fee) and bumps its nonce
    outside access tracking; treating ``(sender, balance)`` as a write of
    every transaction closes the gap between the tracked DAG and actual
    state mutations, so e.g. a transfer *to* an address that is also a
    fee-paying sender is ordered deterministically.
    """
    merged: set[tuple[int, int]] = set(edges)
    writers: dict[tuple, list[int]] = {}
    readers: dict[tuple, list[int]] = {}
    for index, (tx, access) in enumerate(zip(transactions, access_sets)):
        writes = set(access.writes)
        writes.add((tx.sender, BALANCE_KEY))
        writes.add((tx.sender, NONCE_KEY))
        for key in writes:
            writers.setdefault(key, []).append(index)
        for key in access.reads:
            readers.setdefault(key, []).append(index)
    for key, writer_list in writers.items():
        if len(writer_list) > 1:
            for a in range(len(writer_list)):
                for b in range(a + 1, len(writer_list)):
                    i, j = writer_list[a], writer_list[b]
                    merged.add((i, j) if i < j else (j, i))
        for w in writer_list:
            for r in readers.get(key, ()):
                if w != r:
                    merged.add((w, r) if w < r else (r, w))
    return sorted(merged)


class ParallelBlockExecutor:
    """DAG-guided parallel execution of blocks over *state*.

    The worker pool is persistent: it is created lazily on the first
    dispatch, seeded with the then-current state, and kept across
    ``execute_block`` calls. The coordinator ships each task only the
    committed post-values of the keys the transaction declares, and
    invalidates the pool whenever the state diverges in a way overlays
    cannot express (sequential fallback, account deletion).
    """

    def __init__(
        self,
        state: WorldState,
        block=None,
        num_workers: int = 4,
        backend: str = "process",
    ) -> None:
        from ..evm.context import BlockContext, _no_blockhash

        if backend not in ("process", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        self.state = state
        self.block = block or BlockContext()
        self.num_workers = max(1, num_workers)
        self.backend = backend
        if backend == "process" and (
            self.block.blockhash_fn is not _no_blockhash
        ):
            # A custom BLOCKHASH service cannot cross the process
            # boundary; degrade to coordinator-side execution.
            self.backend = "serial"
        self._pool: ProcessPoolExecutor | None = None
        #: Post-values committed since the pool snapshot was taken.
        self._committed: dict[tuple, object] = {}
        self._pool_dirty = False

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_dirty:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=worker_mod.init_worker,
                initargs=(
                    worker_mod.snapshot_accounts(self.state),
                    worker_mod.context_args(self.block),
                ),
            )
            self._committed = {}
            self._pool_dirty = False
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelBlockExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def execute_block(
        self,
        transactions: list[Transaction],
        edges: list[tuple[int, int]],
        access_sets: list,
        artifacts: list[ExecutionArtifact] | None = None,
    ) -> ParallelBlockResult:
        """Execute a block; *state* ends identical to sequential execution.

        *access_sets* are the declared per-transaction access sets (or
        artifacts — anything exposing ``reads``/``writes``); *edges* the
        block's dependency DAG over them. *artifacts* optionally carries
        the pre-execution results for the execute-once replay path.
        """
        start = time.perf_counter()
        result = ParallelBlockResult(
            receipts=[], num_workers=self.num_workers, backend=self.backend,
        )
        count = len(transactions)
        if count == 0:
            result.wall_seconds = time.perf_counter() - start
            return result

        # A read of the coinbase balance would observe fee credits whose
        # ordering the DAG deliberately does not constrain: serialize.
        coinbase_key = (self.block.coinbase, BALANCE_KEY)
        if any(coinbase_key in access.reads for access in access_sets):
            return self._fallback_sequential(transactions, result, start)

        token = self.state.snapshot()
        try:
            receipts = self._run_dag(
                transactions, edges, access_sets, artifacts, result
            )
        except AccessMismatch:
            self.state.revert(token)
            self._pool_dirty = True
            return self._fallback_sequential(transactions, result, start)
        result.receipts = receipts
        result.wall_seconds = time.perf_counter() - start
        self._publish_metrics(result)
        return result

    def _run_dag(
        self,
        transactions: list[Transaction],
        edges: list[tuple[int, int]],
        access_sets: list,
        artifacts: list[ExecutionArtifact] | None,
        result: ParallelBlockResult,
    ) -> list[Receipt]:
        count = len(transactions)
        merged = _augmented_edges(transactions, access_sets, edges)
        indegree = [0] * count
        successors: list[list[int]] = [[] for _ in range(count)]
        for i, j in merged:
            indegree[j] += 1
            successors[i].append(j)

        ready: list[int] = [i for i in range(count) if indegree[i] == 0]
        heapq.heapify(ready)
        receipts: list[Receipt | None] = [None] * count
        inflight: dict = {}
        done = 0

        def complete(index: int, receipt: Receipt,
                     journal: WriteJournal) -> None:
            nonlocal done
            receipts[index] = receipt
            journal.apply(self.state)
            if journal.has_delete:
                # Overlays cannot express deletion: stop trusting the
                # pool's base snapshot past this block.
                self._pool_dirty = True
            self._committed.update(journal.post_values())
            for succ in successors[index]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, succ)
            done += 1

        while done < count:
            progressed = True
            while progressed and ready:
                progressed = False
                deferred: list[int] = []
                while ready:
                    index = heapq.heappop(ready)
                    tx = transactions[index]
                    artifact = (
                        artifacts[index] if artifacts is not None else None
                    )
                    if artifact is not None and artifact.is_fresh(
                        self.state
                    ):
                        complete(index, artifact.receipt, artifact.journal)
                        result.replayed += 1
                        progressed = True
                        continue
                    if artifact is not None:
                        result.stale_artifacts += 1
                    if self.backend == "serial":
                        receipt, journal = self._execute_inline(
                            tx, access_sets[index], index, result
                        )
                        complete(index, receipt, journal)
                        result.executed_inline += 1
                        progressed = True
                        continue
                    if len(inflight) < self.num_workers:
                        overlay = self._overlay_for(tx, access_sets[index])
                        future = self._ensure_pool().submit(
                            worker_mod.execute_task, tx, overlay
                        )
                        inflight[future] = index
                        result.dispatched += 1
                        progressed = True
                    else:
                        deferred.append(index)
                        break
                for index in deferred:
                    heapq.heappush(ready, index)

            if not inflight:
                if done < count:
                    raise RuntimeError(
                        "parallel driver stalled "
                        f"({done}/{count} done; cyclic DAG?)"
                    )
                break
            finished, _ = wait(inflight, return_when=FIRST_COMPLETED)
            for future in finished:
                index = inflight.pop(future)
                receipt, actual, ops = future.result()
                self._validate(index, access_sets[index], actual, result)
                complete(index, receipt, WriteJournal(ops))

        return receipts  # type: ignore[return-value]

    def _execute_inline(
        self, tx: Transaction, declared, index: int,
        result: ParallelBlockResult,
    ) -> tuple[Receipt, WriteJournal]:
        """Serial-backend execution on the coordinator's own state."""
        from ..chain.journal import capture_artifact
        from ..evm.interpreter import EVM

        state = self.state
        tx_token = state.snapshot()
        saved_access, state.access = state.access, None
        access = state.begin_access_tracking()
        try:
            receipt = EVM(state, block=self.block).execute_transaction(tx)
        finally:
            state.end_access_tracking()
            state.access = saved_access
        artifact = capture_artifact(
            state, tx, receipt, access, state.changes_since(tx_token),
            coinbase=self.block.coinbase,
        )
        self._validate(index, declared, access, result)
        # The inline execution already mutated state; revert so the
        # shared complete() path can apply the journal uniformly.
        state.revert(tx_token)
        return receipt, artifact.journal

    def _validate(
        self, index: int, declared, actual, result: ParallelBlockResult
    ) -> None:
        if (actual.reads != declared.reads
                or actual.writes != declared.writes):
            result.mismatches.append(index)
            raise AccessMismatch(index)

    def _overlay_for(self, tx: Transaction, declared) -> dict:
        keys = set(declared.reads) | set(declared.writes)
        keys.add((tx.sender, BALANCE_KEY))
        keys.add((tx.sender, NONCE_KEY))
        committed = self._committed
        return {key: committed[key] for key in keys if key in committed}

    def _fallback_sequential(
        self,
        transactions: list[Transaction],
        result: ParallelBlockResult,
        start: float,
    ) -> ParallelBlockResult:
        from ..evm.interpreter import EVM

        evm = EVM(self.state, block=self.block)
        result.receipts = [
            evm.execute_transaction(tx) for tx in transactions
        ]
        result.fell_back = True
        self._pool_dirty = True
        result.wall_seconds = time.perf_counter() - start
        self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: ParallelBlockResult) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.gauge("parallel.workers").set(result.num_workers)
        registry.counter("parallel.replayed").inc(result.replayed)
        registry.counter("parallel.dispatched").inc(result.dispatched)
        registry.counter(
            "parallel.executed_inline"
        ).inc(result.executed_inline)
        registry.counter(
            "parallel.stale_artifacts"
        ).inc(result.stale_artifacts)
        if result.fell_back:
            registry.counter("parallel.fallbacks").inc()
        registry.gauge("block.wall_tps").set(result.tx_per_second)
