"""Speculative-executor smoke check (the CI ``occ-smoke`` job).

Executes one dynamic-storage-key block — path-router swaps, batch
airdrops and proxy hot paths whose storage keys derive from calldata,
so *no* access sets are declared anywhere — through the speculative
(OCC) executor and asserts:

* receipts, logs and ``state_digest()`` bit-identical to plain
  sequential execution, on both the serial and the process backend;
* identical cost accounting across backends (the engine's abort and
  retry decisions may not depend on where speculation physically ran);
* the OCC wall throughput clears ``--min-speedup`` × the seed
  sequential pipeline (discover-then-execute) on the same machine.

Usage::

    PYTHONPATH=src python -m repro.parallel.occ_smoke --transactions 128
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=128)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="fail when OCC wall tx/s is below this multiple of the "
             "sequential (discover-then-execute) lane",
    )
    args = parser.parse_args(argv)

    from ..evm.interpreter import EVM
    from ..experiments.perf import measure_occ_wall_clock
    from ..workload.generator import generate_dynamic_block
    from .speculate import SpeculativeBlockExecutor

    block = generate_dynamic_block(
        num_transactions=args.transactions, seed=args.seed,
    )
    transactions = block.transactions
    seq_state = block.deployment.state.copy()
    evm = EVM(seq_state)
    seq_receipts = [evm.execute_transaction(tx) for tx in transactions]
    seq_rlp = [r.to_rlp() for r in seq_receipts]

    ok = True
    accounting = {}
    for backend in ("serial", "process"):
        state = block.deployment.state.copy()
        with SpeculativeBlockExecutor(
            state, num_workers=args.workers, backend=backend,
        ) as executor:
            result = executor.execute_block(transactions)
        accounting[backend] = (
            result.executions, result.aborts, result.rounds,
            result.validations,
        )
        if state.state_digest() != seq_state.state_digest():
            print(f"FAIL[{backend}]: occ state digest != sequential")
            ok = False
        if [r.to_rlp() for r in result.receipts] != seq_rlp:
            print(f"FAIL[{backend}]: occ receipts != sequential")
            ok = False
        print(
            f"{'ok' if ok else 'FAIL'}[{backend}]: "
            f"{len(transactions)} txs undeclared: "
            f"{result.executions} executions, {result.aborts} aborts, "
            f"{result.retries} retries, {result.rounds} rounds, "
            f"fell_back={result.fell_back}"
        )
    if accounting["serial"] != accounting["process"]:
        print(
            f"FAIL: backend-dependent accounting: "
            f"serial={accounting['serial']} "
            f"process={accounting['process']}"
        )
        ok = False

    wall = measure_occ_wall_clock(
        num_transactions=args.transactions,
        num_workers=args.workers,
        seed=args.seed,
        repeats=2,
    )
    speedup = wall["occ_speedup"]
    line = (
        f"occ {wall['occ']['tx_per_second']:.0f} tx/s vs sequential "
        f"{wall['sequential']['tx_per_second']:.0f} tx/s "
        f"({speedup:.2f}x, floor {args.min_speedup}x, "
        f"{wall['backend']} backend)"
    )
    if speedup < args.min_speedup:
        print(f"FAIL: {line}")
        ok = False
    else:
        print(f"ok: {line}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
