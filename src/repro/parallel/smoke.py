"""Parallel-backend smoke check (the CI ``parallel-smoke`` job).

Executes one generated block on the multicore backend and asserts the
resulting receipts and ``state_digest()`` are bit-identical to plain
sequential execution. Exits non-zero on any divergence.

Usage::

    PYTHONPATH=src python -m repro.parallel.smoke --transactions 32 --workers 2
"""

from __future__ import annotations

import argparse
import sys

from ..chain.dag import build_dag_edges, discover_access_sets
from ..evm.interpreter import EVM
from ..workload.generator import generate_dependency_block
from .executor import ParallelBlockExecutor


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ratio", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--backend", choices=("process", "serial"), default="process",
    )
    args = parser.parse_args(argv)

    block = generate_dependency_block(
        num_transactions=args.transactions,
        target_ratio=args.ratio,
        seed=args.seed,
    )
    transactions = block.transactions

    seq_state = block.deployment.state.copy()
    evm = EVM(seq_state)
    seq_receipts = [evm.execute_transaction(tx) for tx in transactions]

    ok = True
    # Two lanes: the execute-once pipeline (artifact replay) and the raw
    # worker path (no artifacts — every transaction runs on the pool).
    for lane, with_artifacts in (("pipeline", True), ("workers", False)):
        par_state = block.deployment.state.copy()
        artifacts = discover_access_sets(transactions, par_state)
        edges = build_dag_edges(transactions, artifacts)
        with ParallelBlockExecutor(
            par_state, num_workers=args.workers, backend=args.backend,
        ) as executor:
            result = executor.execute_block(
                transactions, edges, artifacts,
                artifacts=artifacts if with_artifacts else None,
            )
        if par_state.state_digest() != seq_state.state_digest():
            print(f"FAIL[{lane}]: parallel state digest != sequential")
            ok = False
        if result.receipts != seq_receipts:
            print(f"FAIL[{lane}]: parallel receipts != sequential")
            ok = False
        print(
            f"{'ok' if ok else 'FAIL'}[{lane}]: {len(transactions)} txs, "
            f"{result.num_workers} workers ({result.backend} backend): "
            f"{result.replayed} replayed, {result.dispatched} dispatched, "
            f"{result.executed_inline} inline, "
            f"fell_back={result.fell_back}"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
