"""``repro.parallel`` — the multicore parallel execution backend.

Where :mod:`repro.core.scheduler` *models* transaction-level parallelism
in simulated PU cycles, this package *runs* it: DAG-independent
transactions execute concurrently across a persistent pool of worker
processes (or inline, with the ``serial`` backend), and the coordinator
merges their write journals back into the authoritative world state.
Combined with the execute-once artifacts from
:func:`repro.chain.dag.discover_access_sets`, wall-clock block
throughput stops paying the discover-then-execute 2× tax and scales
with the cores the machine actually has.
"""

from .executor import (
    AccessMismatch,
    ParallelBlockExecutor,
    ParallelBlockResult,
)
from .occ import OccBlockResult, OptimisticBlockExecutor
from .speculate import (
    MultiVersionStore,
    SpeculativeBlockExecutor,
    SpeculativeBlockResult,
)

__all__ = [
    "AccessMismatch",
    "MultiVersionStore",
    "OccBlockResult",
    "OptimisticBlockExecutor",
    "ParallelBlockExecutor",
    "ParallelBlockResult",
    "SpeculativeBlockExecutor",
    "SpeculativeBlockResult",
]
