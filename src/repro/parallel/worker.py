"""Process-pool worker side of the parallel execution backend.

Each worker process holds a *pristine* copy of the block-entry world
state, installed once by :func:`init_worker` when the pool starts (cheap
under ``fork``, and explicit enough to survive ``spawn``). A task ships
only a transaction plus a small *overlay* — the committed post-values of
the keys the transaction is declared to touch — so per-task IPC stays
proportional to the transaction's access set, not to the world state.

The worker applies the overlay under a journal snapshot, executes the
transaction with access tracking on, captures the write journal from the
structured state journal, and reverts — leaving the base pristine for
the next task. The coordinator receives ``(receipt, access, ops)`` and
decides whether the actual access set honours the declared one.
"""

from __future__ import annotations

import pickle

from ..chain.journal import capture_artifact
from ..chain.state import BALANCE_KEY, CODE_KEY, NONCE_KEY, WorldState
from ..chain.transaction import Transaction

#: Per-process state installed by :func:`init_worker`.
_BASE: WorldState | None = None
_CONTEXT = None


def snapshot_accounts(state: WorldState) -> bytes:
    """Serialize a world state's accounts for worker initialization."""
    return pickle.dumps(state._accounts, protocol=pickle.HIGHEST_PROTOCOL)


def context_args(context) -> dict:
    """The picklable fields of a BlockContext (the blockhash service is
    process-local; callers must not dispatch BLOCKHASH-dependent work)."""
    return {
        "height": context.height,
        "timestamp": context.timestamp,
        "coinbase": context.coinbase,
        "difficulty": context.difficulty,
        "gas_limit": context.gas_limit,
    }


def init_worker(accounts_blob: bytes, ctx_args: dict) -> None:
    """Pool initializer: install the base state and block context."""
    global _BASE, _CONTEXT
    from ..evm.context import BlockContext
    from ..evm.decoded import warm_state_codes

    state = WorldState()
    state._accounts = pickle.loads(accounts_blob)
    _BASE = state
    _CONTEXT = BlockContext(**ctx_args)
    # Pre-decode every deployed contract once per *worker process*: each
    # transaction executed by this worker then hits the decoded-program
    # cache instead of re-running the AOT pass per task.
    warm_state_codes(state)


def apply_overlay(state: WorldState, overlay: dict) -> None:
    """Install committed post-values onto *state* (journaled, untracked)."""
    with state.untracked():
        for (address, slot), value in overlay.items():
            if slot == BALANCE_KEY:
                state.set_balance(address, value)
            elif slot == NONCE_KEY:
                state.set_nonce(address, value)
            elif slot == CODE_KEY:
                state.set_code(address, value)
            else:
                state.set_storage(address, slot, value)


def ping() -> bool:
    """No-op task: forces a pool worker to spawn and run its initializer."""
    return _BASE is not None


def execute_task(
    tx: Transaction, overlay: dict
) -> tuple:
    """Run one transaction against base ⊕ overlay; leave the base pristine.

    Returns ``(receipt, access, ops)`` where *ops* is the transaction's
    write journal (tagged tuples, see :mod:`repro.chain.journal`).
    """
    receipt, access, ops, _ = speculate_task(tx, overlay)
    return receipt, access, ops


def speculate_task(
    tx: Transaction, overlay: dict
) -> tuple:
    """Like :func:`execute_task`, but also return the versioned read set.

    Returns ``(receipt, access, ops, read_values)`` — *read_values* maps
    each ``(address, slot)`` the transaction read to the value it
    observed, which the speculative (OCC) coordinator validates against
    the authoritative state at commit time.
    """
    from ..evm.interpreter import EVM

    state = _BASE
    token = state.snapshot()
    try:
        apply_overlay(state, overlay)
        tx_token = state.snapshot()
        access = state.begin_access_tracking()
        try:
            receipt = EVM(state, block=_CONTEXT).execute_transaction(tx)
        finally:
            state.end_access_tracking()
        artifact = capture_artifact(
            state, tx, receipt, access,
            state.changes_since(tx_token),
            coinbase=_CONTEXT.coinbase,
        )
        return receipt, access, artifact.journal.ops, artifact.read_values
    finally:
        state.access = None
        state.revert(token)
