"""Optimistic (OCC) block execution — the executor class FAFO packs for.

Block-STM-shaped optimistic concurrency control, reduced to its
cost model: every pending transaction executes *speculatively* against
the committed frontier, then commits in block order if its recorded
read values are still fresh (:meth:`ExecutionArtifact.is_fresh` — the
replay-soundness predicate the execute-once pipeline already uses).
A transaction whose reads went stale — an earlier transaction in the
same block wrote a key it read — **aborts** and re-executes in the next
round. The first pending transaction always commits (it executed
against exactly the committed frontier), so rounds terminate.

The point of the class is that its wall-clock cost is *order
sensitive*: total work is one execution per transaction **plus one per
abort**, and aborts are precisely intra-block conflicts. A
conflict-heavy FIFO block with a hot-key chain of length L costs
Θ(L²/2) executions; the same transactions spread across lanes and
blocks by conflict-aware packing cost Θ(N). That is the quantity
``benchmarks/emit_bench.py``'s ``packing`` section measures — it is
real single-threaded wall time, portable across machines, unlike a
core-count-dependent parallel speedup.

Determinism: commits happen *strictly* in block order — a transaction
commits only after every earlier transaction in the block has, so the
frontier its journal replays onto is exactly its sequential pre-state.
(Committing a fresh later transaction past a pending earlier one is
unsound: the earlier one's re-execution would then observe the later
one's writes — a serialization inversion that tight-balance workloads
turn into a digest fork.) A fresh-but-blocked speculation is kept and
revalidated in later rounds without re-executing, so the cost model is
unchanged: executions = N + aborts, aborts = stale reads only. Receipts
and final state are bit-identical to sequential execution
(property-tested in ``tests/parallel/test_occ.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.journal import ExecutionArtifact, capture_artifact
from ..chain.receipt import Receipt
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..obs import get_registry


@dataclass
class OccBlockResult:
    """Receipts plus the optimistic executor's cost accounting."""

    receipts: list[Receipt]
    #: Speculative executions performed (≥ len(receipts)).
    executions: int
    #: Executions whose reads went stale before commit (wasted work).
    aborts: int
    #: Execute/validate rounds until every transaction committed.
    rounds: int


class OptimisticBlockExecutor:
    """Single-process OCC executor over the real EVM.

    Deliberately sequential: speculation happens one transaction at a
    time, so the measured cost is pure algorithmic work (executions +
    aborts) with no pool/IPC noise — and the executor is exactly as
    deterministic as :meth:`Node.execute_block`.
    """

    def __init__(self, state: WorldState, block=None) -> None:
        self.state = state
        self.block = block
        self.executions = 0
        self.aborts = 0

    def execute_block(
        self, transactions: list[Transaction]
    ) -> OccBlockResult:
        """Execute one block optimistically; state ends committed."""
        from ..evm.context import BlockContext
        from ..evm.interpreter import EVM

        context = self.block or BlockContext()
        receipts: list[Receipt | None] = [None] * len(transactions)
        pending = list(range(len(transactions)))
        executions = aborts = rounds = 0
        # Speculations carried across rounds; an entry survives a round
        # only while its read values stay fresh.
        artifacts: dict[int, ExecutionArtifact] = {}
        saved_access, self.state.access = self.state.access, None
        try:
            while pending:
                rounds += 1
                # Speculate: run every pending transaction that lacks a
                # live artifact against the committed frontier.
                for index in pending:
                    if index in artifacts:
                        continue
                    tx = transactions[index]
                    evm = EVM(self.state, block=context)
                    token = self.state.snapshot()
                    access = self.state.begin_access_tracking()
                    try:
                        receipt = evm.execute_transaction(tx)
                    finally:
                        self.state.end_access_tracking()
                    artifacts[index] = capture_artifact(
                        self.state, tx, receipt, access,
                        self.state.changes_since(token),
                        coinbase=context.coinbase,
                    )
                    self.state.access = None
                    self.state.revert(token)
                    executions += 1
                # Validate + commit strictly in block order. A fresh
                # speculation commits only once every earlier transaction
                # has committed: the frontier it replays onto must be its
                # sequential pre-state, otherwise a later transaction
                # could serialize ahead of an earlier aborted one. A
                # fresh-but-blocked speculation is *kept* — it revalidates
                # next round without re-executing; only stale reads abort.
                still_pending: list[int] = []
                for index in pending:
                    artifact = artifacts[index]
                    if not artifact.is_fresh(self.state):
                        still_pending.append(index)
                        del artifacts[index]
                        aborts += 1
                    elif still_pending:
                        still_pending.append(index)  # blocked, kept
                    else:
                        artifact.journal.apply(self.state)
                        receipts[index] = artifact.receipt
                        del artifacts[index]
                pending = still_pending
        finally:
            self.state.access = saved_access
        self.executions += executions
        self.aborts += aborts
        registry = get_registry()
        if registry.enabled:
            registry.counter("parallel.occ_executions").inc(executions)
            registry.counter("parallel.occ_aborts").inc(aborts)
        return OccBlockResult(
            receipts=list(receipts),
            executions=executions,
            aborts=aborts,
            rounds=rounds,
        )
