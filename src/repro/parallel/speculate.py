"""Block-STM-shaped speculative execution: OCC without declared access sets.

Every other executor in the repo needs to be *told* what a transaction
will touch — declared access sets, discovered by pre-execution, feed the
DAG that serializes conflicts up front. This engine needs nothing: it
executes transactions optimistically, records what each one actually
read and wrote (the same :class:`~repro.chain.journal.ExecutionArtifact`
/ :class:`~repro.chain.journal.WriteJournal` machinery the execute-once
pipeline uses), validates read sets at commit time, and aborts/retries
only the transactions that actually conflicted. Dynamic-storage-key
contracts — delegatecall proxies, multi-hop AMM paths, batch airdrops —
that the declared-set model cannot schedule run here at full parallelism.

The shape follows Block-STM (Dickerson/Herlihy's "Adding Concurrency to
Smart Contracts" by way of the multicore-STM line of work):

* **Multi-version store** — per-``(address, slot)`` version chains of
  speculative post-values, indexed by transaction position. An aborted
  transaction's entries become **estimate markers**: "this key will be
  written by transaction *j*, value unknown". Retry overlays read
  through the chains (highest non-estimate writer below the reader).
* **Speculation rounds** — every pending transaction without a live
  artifact executes concurrently (process pool; round one ships *empty*
  overlays — pure optimism against the block-entry base, so a
  conflict-free block costs exactly one parallel round and zero IPC
  beyond the transactions themselves).
* **Dependency-directed rescheduling** — a transaction whose last
  attempt read a key that is currently estimate-marked by a lower
  pending transaction is *deferred*, not re-executed: re-running it
  before its dependency commits would almost surely abort again.
* **Validation + strict in-order commit** — identical to
  :class:`~repro.parallel.occ.OptimisticBlockExecutor` (the
  single-threaded deterministic reference for this engine): a
  transaction commits only when every earlier transaction has committed
  *and* :meth:`ExecutionArtifact.is_fresh` holds against the
  authoritative state, so the journal replays onto exactly its
  sequential pre-state. Receipts and ``state_digest`` are bit-identical
  to sequential execution by construction.
* **Bounded retry + guaranteed sequential fallback** — a transaction
  aborting more than ``max_retries`` times (or a fault/abort hook that
  keeps firing) reverts the whole block to its entry snapshot and
  re-executes sequentially. Degradation, never divergence.

Progress guarantee: the first pending transaction is never deferred
(its estimate writers would have to be lower *and* pending — a
contradiction) and always speculates against exactly the committed
frontier, so each round commits at least one transaction unless a hook
forces an abort, and the retry bound converts persistent forcing into
the sequential fallback.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..chain.journal import ExecutionArtifact, WriteJournal, capture_artifact
from ..chain.receipt import Receipt
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..obs import get_registry
from . import worker as worker_mod

#: Version-chain marker: the writer aborted, its value is unknown until
#: it re-executes. Coordinator-local, never crosses the process boundary.
ESTIMATE = object()


class RetryBudgetExceeded(Exception):
    """A transaction aborted more than ``max_retries`` times."""


class MultiVersionStore:
    """Per-key version chains of speculative writes, by transaction index.

    Committed transactions leave the store (their post-values move to the
    executor's committed overlay); pending transactions' latest execution
    results (or estimate markers, after an abort) live here.
    """

    def __init__(self) -> None:
        #: key -> {tx_index: value | ESTIMATE}
        self._chains: dict[tuple, dict[int, object]] = {}
        #: tx_index -> keys it currently has entries for
        self._written: dict[int, set[tuple]] = {}

    def record(self, index: int, post_values: dict[tuple, object]) -> None:
        """Install transaction *index*'s write set (replacing any prior)."""
        self.clear(index)
        if not post_values:
            return
        self._written[index] = set(post_values)
        for key, value in post_values.items():
            self._chains.setdefault(key, {})[index] = value

    def mark_estimates(self, index: int) -> None:
        """Convert *index*'s entries to estimate markers (it aborted)."""
        for key in self._written.get(index, ()):
            self._chains[key][index] = ESTIMATE

    def clear(self, index: int) -> None:
        """Drop *index*'s entries entirely (commit or re-execution)."""
        for key in self._written.pop(index, ()):
            chain = self._chains.get(key)
            if chain is not None:
                chain.pop(index, None)
                if not chain:
                    del self._chains[key]

    def view_below(self, index: int) -> dict[tuple, object]:
        """Best-effort read view for transaction *index*: per key, the
        highest non-estimate writer strictly below it. Used to build
        retry overlays — if the speculation it reads later changes, the
        commit-time validation catches it."""
        view: dict[tuple, object] = {}
        for key, chain in self._chains.items():
            best = -1
            value: object = None
            for writer, entry in chain.items():
                if best < writer < index and entry is not ESTIMATE:
                    best, value = writer, entry
            if best >= 0:
                view[key] = value
        return view

    def estimate_writers(self, keys, index: int) -> set[int]:
        """Indices < *index* holding estimate markers on any of *keys*."""
        writers: set[int] = set()
        for key in keys:
            chain = self._chains.get(key)
            if not chain:
                continue
            for writer, entry in chain.items():
                if writer < index and entry is ESTIMATE:
                    writers.add(writer)
        return writers


@dataclass
class SpeculativeBlockResult:
    """Receipts plus the speculative engine's full accounting."""

    receipts: list[Receipt]
    #: Speculative executions performed (≥ len(receipts) unless fallen back).
    executions: int = 0
    #: Commit-time read-set validation failures (wasted executions).
    aborts: int = 0
    #: ``is_fresh`` checks performed.
    validations: int = 0
    #: Re-executions past each transaction's first attempt.
    retries: int = 0
    #: Speculations skipped because a dependency was estimate-marked.
    deferrals: int = 0
    #: Speculate/validate/commit rounds until the block drained.
    rounds: int = 0
    num_workers: int = 1
    backend: str = "serial"
    #: True when the block degraded to the sequential fallback.
    fell_back: bool = False
    wall_seconds: float = 0.0
    #: Per-transaction committed artifacts (actual access sets) — the
    #: estimator-feedback signal. Entries are None only on exotic
    #: fallback paths where capture was impossible.
    artifacts: list[ExecutionArtifact | None] = field(default_factory=list)
    #: Per-transaction abort counts (conflict outcomes for the estimator).
    abort_counts: list[int] = field(default_factory=list)

    @property
    def tx_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.receipts) / self.wall_seconds


class SpeculativeBlockExecutor:
    """Concurrent Block-STM-style OCC execution of blocks over *state*.

    ``backend="process"`` speculates rounds on a persistent worker pool
    (the same worker protocol as :class:`ParallelBlockExecutor`, so a
    custom BLOCKHASH service degrades it to ``"serial"`` — the service
    cannot cross the process boundary). ``backend="serial"`` speculates
    inline, one transaction at a time, which makes the engine exactly as
    deterministic as :class:`~repro.parallel.occ.OptimisticBlockExecutor`
    — the property harness and the golden trace both pin that mode.

    *abort_hook(index, attempt)* — test/fault injection: force a
    validation abort for a fresh artifact. *fault_hook(index, attempt)*
    — simulate a PU dying mid-speculation: the execution's result is
    discarded before validation. Both count against ``max_retries``, so
    a persistently faulty transaction lands in the sequential fallback
    instead of wedging the block.
    """

    def __init__(
        self,
        state: WorldState,
        block=None,
        num_workers: int = 4,
        backend: str = "process",
        max_retries: int = 8,
        abort_hook=None,
        fault_hook=None,
    ) -> None:
        from ..evm.context import BlockContext, _no_blockhash

        if backend not in ("process", "serial"):
            raise ValueError(f"unknown backend {backend!r}")
        self.state = state
        self.block = block or BlockContext()
        self.num_workers = max(1, num_workers)
        self.backend = backend
        if backend == "process" and (
            self.block.blockhash_fn is not _no_blockhash
        ):
            self.backend = "serial"
        self.max_retries = max_retries
        self.abort_hook = abort_hook
        self.fault_hook = fault_hook
        self._pool: ProcessPoolExecutor | None = None
        #: Post-values committed since the pool's base snapshot.
        self._committed: dict[tuple, object] = {}
        self._pool_dirty = False
        # Cumulative across blocks (mirrors OptimisticBlockExecutor).
        self.executions = 0
        self.aborts = 0

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_dirty:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=worker_mod.init_worker,
                initargs=(
                    worker_mod.snapshot_accounts(self.state),
                    worker_mod.context_args(self.block),
                ),
            )
            self._committed = {}
            self._pool_dirty = False
        return self._pool

    def warm(self) -> None:
        """Spin up and initialize every pool worker ahead of the first
        block (steady-state serving keeps the pool across blocks; calling
        this keeps one-shot measurements honest about that). No-op on the
        serial backend."""
        if self.backend != "process":
            return
        pool = self._ensure_pool()
        for future in [
            pool.submit(worker_mod.ping) for _ in range(self.num_workers)
        ]:
            future.result()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SpeculativeBlockExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def execute_block(
        self, transactions: list[Transaction]
    ) -> SpeculativeBlockResult:
        """Execute one block speculatively; *state* ends committed,
        bit-identical to sequential execution."""
        start = time.perf_counter()
        count = len(transactions)
        result = SpeculativeBlockResult(
            receipts=[],
            num_workers=self.num_workers,
            backend=self.backend,
            artifacts=[None] * count,
            abort_counts=[0] * count,
        )
        if count == 0:
            result.wall_seconds = time.perf_counter() - start
            return result
        entry_token = self.state.snapshot()
        try:
            self._run(transactions, result)
        except RetryBudgetExceeded:
            self.state.revert(entry_token)
            self._pool_dirty = True
            self._fallback_sequential(transactions, result)
        result.wall_seconds = time.perf_counter() - start
        self.executions += result.executions
        self.aborts += result.aborts
        self._publish_metrics(result)
        return result

    def _run(
        self,
        transactions: list[Transaction],
        result: SpeculativeBlockResult,
    ) -> None:
        count = len(transactions)
        receipts: list[Receipt | None] = [None] * count
        artifacts: dict[int, ExecutionArtifact] = {}
        #: Last-known read set per transaction (dependency tracking).
        prev_reads: dict[int, set] = {}
        attempts = [0] * count
        pending = list(range(count))
        store = MultiVersionStore()
        inline_only = self.backend == "serial"
        #: Validation memo: the authoritative state only moves when a
        #: journal commits, so an artifact re-checks its read set only
        #: when a commit since its last full check touched one of its
        #: read keys. ``key_versions`` maps each committed key to the
        #: commit sequence number that last wrote it; ``checked_at``
        #: records the sequence number at an artifact's last fresh check.
        commit_seq = 0
        key_versions: dict[tuple, int] = {}
        checked_at: dict[int, int] = {}
        saved_access, self.state.access = self.state.access, None
        try:
            while pending:
                result.rounds += 1
                runnable: list[int] = []
                deferred: list[int] = []
                for index in pending:
                    if index in artifacts:
                        continue  # kept speculation: revalidate only
                    if store.estimate_writers(
                        prev_reads.get(index, ()), index
                    ):
                        deferred.append(index)
                    else:
                        runnable.append(index)
                if not runnable and not artifacts and deferred:
                    # Defensive: never stall. (Unreachable in practice —
                    # the first pending transaction cannot be deferred.)
                    runnable.append(deferred.pop(0))
                result.deferrals += len(deferred)

                executed = self._speculate(
                    transactions, runnable, attempts, store, inline_only,
                    result,
                )
                for index, artifact in executed:
                    artifacts[index] = artifact
                    prev_reads[index] = set(artifact.read_values)
                    store.record(index, artifact.journal.post_values())

                still_pending: list[int] = []
                for index in pending:
                    artifact = artifacts.get(index)
                    if artifact is None:
                        still_pending.append(index)  # deferred or faulted
                        continue
                    checked = checked_at.get(index)
                    if checked is None or any(
                        key_versions.get(key, -1) >= checked
                        for key in artifact.read_values
                    ):
                        result.validations += 1
                        fresh = artifact.is_fresh(self.state)
                        if fresh:
                            checked_at[index] = commit_seq
                    else:
                        fresh = True  # no commit touched its reads
                    forced = self.abort_hook is not None and self.abort_hook(
                        index, attempts[index]
                    )
                    if forced or not fresh:
                        still_pending.append(index)
                        del artifacts[index]
                        checked_at.pop(index, None)
                        store.mark_estimates(index)
                        result.aborts += 1
                        result.abort_counts[index] += 1
                        attempts[index] += 1
                        if attempts[index] > self.max_retries:
                            raise RetryBudgetExceeded(index)
                    elif still_pending:
                        still_pending.append(index)  # fresh but blocked
                    else:
                        post_values = artifact.journal.post_values()
                        artifact.journal.apply(self.state)
                        receipts[index] = artifact.receipt
                        self._committed.update(post_values)
                        for key in post_values:
                            key_versions[key] = commit_seq
                        commit_seq += 1
                        if artifact.journal.has_delete:
                            # Overlays cannot express deletion: stop
                            # trusting the pool base, finish inline —
                            # and drop the validation memo, since the
                            # deleted keys may not appear in post_values.
                            self._pool_dirty = True
                            inline_only = True
                            checked_at.clear()
                        store.clear(index)
                        result.artifacts[index] = artifact
                        del artifacts[index]
                pending = still_pending
        finally:
            self.state.access = saved_access
        result.receipts = receipts  # type: ignore[assignment]

    def _speculate(
        self,
        transactions: list[Transaction],
        runnable: list[int],
        attempts: list[int],
        store: MultiVersionStore,
        inline_only: bool,
        result: SpeculativeBlockResult,
    ) -> list[tuple[int, ExecutionArtifact]]:
        """Execute *runnable* against round-start views; return artifacts.

        Results are collected *before* the store is updated, so inline
        and pooled speculation observe identical views — the engine's
        accounting does not depend on the backend.

        Dispatch policy: *first attempts* go to the process pool in bulk
        (round one ships every transaction with an empty or tiny overlay
        — maximum parallelism, minimal IPC), while *retries* execute
        inline on the coordinator. Retries are conflicters, and
        conflicters form serial chains: shipping them to workers buys no
        parallelism but pays pickling for the committed-overlay they
        need. Inline, they read the authoritative state directly plus
        the version-chain view, while the pool crunches the next bulk.
        """
        executed: list[tuple[int, ExecutionArtifact]] = []

        def account(index: int) -> None:
            result.executions += 1
            if attempts[index] > 0:
                result.retries += 1

        def faulted(index: int) -> bool:
            if self.fault_hook is not None and self.fault_hook(
                index, attempts[index]
            ):
                # The PU died mid-speculation: result lost, attempt spent.
                attempts[index] += 1
                if attempts[index] > self.max_retries:
                    raise RetryBudgetExceeded(index)
                return True
            return False

        pool_batch: list[int] = []
        inline_batch: list[int] = []
        if inline_only or self.backend == "serial":
            inline_batch = list(runnable)
        else:
            for index in runnable:
                if attempts[index] == 0:
                    pool_batch.append(index)
                else:
                    inline_batch.append(index)
            if len(pool_batch) < 2:
                # Not worth a round trip; run on the coordinator.
                inline_batch = sorted(pool_batch + inline_batch)
                pool_batch = []

        futures = {}
        if pool_batch:
            pool = self._ensure_pool()
            overlay = dict(self._committed)
            for index in pool_batch:
                account(index)
                futures[pool.submit(
                    worker_mod.speculate_task, transactions[index], overlay,
                )] = index
        for index in inline_batch:
            account(index)
            view = store.view_below(index) if attempts[index] > 0 else {}
            artifact = self._execute_inline(transactions[index], view)
            if not faulted(index):
                executed.append((index, artifact))
        for future, index in futures.items():
            receipt, access, ops, read_values = future.result()
            if faulted(index):
                continue
            executed.append((index, ExecutionArtifact(
                tx=transactions[index],
                receipt=receipt,
                access=access,
                journal=WriteJournal(ops),
                read_values=read_values,
            )))
        executed.sort(key=lambda pair: pair[0])
        return executed

    def _execute_inline(
        self, tx: Transaction, overlay: dict
    ) -> ExecutionArtifact:
        """One speculation on the coordinator's own state: overlay under a
        snapshot, execute tracked, capture, revert — base left pristine."""
        from ..evm.interpreter import EVM

        state = self.state
        token = state.snapshot()
        try:
            if overlay:
                worker_mod.apply_overlay(state, overlay)
                tx_token = state.snapshot()
            else:
                tx_token = token
            access = state.begin_access_tracking()
            try:
                receipt = EVM(
                    state, block=self.block
                ).execute_transaction(tx)
            finally:
                state.end_access_tracking()
            return capture_artifact(
                state, tx, receipt, access,
                state.changes_since(tx_token),
                coinbase=self.block.coinbase,
            )
        finally:
            state.access = None
            state.revert(token)

    def _fallback_sequential(
        self,
        transactions: list[Transaction],
        result: SpeculativeBlockResult,
    ) -> None:
        """Guaranteed convergence path: plain in-order execution, with
        artifacts still captured so estimator feedback survives."""
        from ..evm.interpreter import EVM

        state = self.state
        receipts: list[Receipt] = []
        saved_access, state.access = state.access, None
        try:
            for index, tx in enumerate(transactions):
                token = state.snapshot()
                access = state.begin_access_tracking()
                try:
                    receipt = EVM(
                        state, block=self.block
                    ).execute_transaction(tx)
                finally:
                    state.end_access_tracking()
                receipts.append(receipt)
                result.artifacts[index] = capture_artifact(
                    state, tx, receipt, access,
                    state.changes_since(token),
                    coinbase=self.block.coinbase,
                )
                state.access = None
        finally:
            state.access = saved_access
        result.receipts = receipts
        result.fell_back = True
        self._pool_dirty = True

    def _publish_metrics(self, result: SpeculativeBlockResult) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("speculate.executions").inc(result.executions)
        registry.counter("speculate.aborts").inc(result.aborts)
        registry.counter("speculate.validations").inc(result.validations)
        registry.counter("speculate.retries").inc(result.retries)
        registry.counter("speculate.deferrals").inc(result.deferrals)
        if result.fell_back:
            registry.counter("speculate.fallbacks").inc()
        registry.gauge("speculate.workers").set(result.num_workers)
        registry.gauge("speculate.wall_tps").set(result.tx_per_second)
