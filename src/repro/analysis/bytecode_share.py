"""Bytecode share of loaded context data (paper Table 2).

For one (contract, function) the execution context loaded into the
Call_Contract Stack consists of the contract bytecode plus "other data":
the transaction record (calldata and fixed fields) and the block-header
fields read during execution. The paper measures bytecode at 85.99%–95.33%
of the total — the observation that motivates bytecode reuse between
redundant transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.transaction import Transaction
from ..contracts.registry import Deployment
from .reporting import format_table

#: Fixed-length transaction fields (paper Table 4): nonce, gaslimit,
#: gasPrice, From, To, CallValue, DataLen — 7 words of 32 bytes. The
#: block header is loaded once per block into the execution-environment
#: buffer, not per transaction, so it does not count here.
TX_FIXED_BYTES = 7 * 32


@dataclass(frozen=True)
class BytecodeShare:
    """One Table 2 row."""

    contract: str
    function: str
    bytecode_bytes: int
    other_bytes: int

    @property
    def total(self) -> int:
        return self.bytecode_bytes + self.other_bytes

    @property
    def bytecode_fraction(self) -> float:
        return self.bytecode_bytes / self.total if self.total else 0.0


def measure_bytecode_share(
    deployment: Deployment, tx: Transaction
) -> BytecodeShare:
    """Measure the context-load composition for one transaction."""
    if tx.to is None:
        raise ValueError("creation transactions have no loaded bytecode")
    deployed = deployment.by_address(tx.to)
    name = deployed.name if deployed else hex(tx.to)
    code = deployment.state.get_code(tx.to)
    other = TX_FIXED_BYTES + len(tx.data)
    return BytecodeShare(
        contract=name,
        function=tx.tags.get("signature", "?").split("(")[0],
        bytecode_bytes=len(code),
        other_bytes=other,
    )


def bytecode_share_table(shares: list[BytecodeShare]) -> str:
    """Render the Table 2 layout."""
    headers = [
        "Smart Contract", "Function",
        "Bytecode", "Bytecode %", "Other Data", "Other %",
    ]
    rows = []
    for share in shares:
        rows.append(
            [
                share.contract,
                share.function,
                share.bytecode_bytes,
                f"{100 * share.bytecode_fraction:.2f}%",
                share.other_bytes,
                f"{100 * (1 - share.bytecode_fraction):.2f}%",
            ]
        )
    return format_table(
        headers, rows, title="Bytecode share of loaded context data"
    )
