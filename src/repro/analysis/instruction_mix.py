"""Instruction-category breakdown (paper Table 6).

The paper measures the dynamic instruction mix of the TOP8 contracts:
stack instructions average 62.24%, arithmetic 8.88%, and so on. We
measure the same thing over traces of transactions covering each
contract's entry functions.
"""

from __future__ import annotations

from ..chain.transaction import Transaction
from ..contracts.registry import Deployment
from ..evm.code import decode
from ..evm.interpreter import EVM
from ..evm.opcodes import Category
from ..evm.tracer import Tracer
from .reporting import format_table

CATEGORY_ORDER = [
    Category.ARITHMETIC,
    Category.LOGIC,
    Category.SHA,
    Category.FIXED_ACCESS,
    Category.STATE_QUERY,
    Category.MEMORY,
    Category.STORAGE,
    Category.BRANCH,
    Category.STACK,
    Category.CONTROL,
    Category.CONTEXT,
]


def instruction_mix(
    deployment: Deployment, transactions: list[Transaction]
) -> dict[Category, float]:
    """Dynamic category shares from executing *transactions*."""
    state = deployment.state.copy()
    tracer = Tracer()
    evm = EVM(state, tracer=tracer)
    for tx in transactions:
        evm.execute_transaction(tx)
        state.clear_journal()
    counts: dict[Category, int] = {cat: 0 for cat in CATEGORY_ORDER}
    for step in tracer.steps:
        counts[step.op.category] += 1
    total = sum(counts.values()) or 1
    return {cat: counts[cat] / total for cat in CATEGORY_ORDER}


def static_instruction_mix(code: bytes) -> dict[Category, float]:
    """Static category shares of a bytecode blob."""
    counts: dict[Category, int] = {cat: 0 for cat in CATEGORY_ORDER}
    for instr in decode(code):
        counts[instr.op.category] += 1
    total = sum(counts.values()) or 1
    return {cat: counts[cat] / total for cat in CATEGORY_ORDER}


def instruction_mix_table(
    per_contract: dict[str, dict[Category, float]]
) -> str:
    """Render the Table 6 layout (rows = contracts, cols = categories)."""
    headers = ["Smart Contract"] + [c.value for c in CATEGORY_ORDER]
    rows = []
    for name, mix in per_contract.items():
        rows.append(
            [name] + [f"{100 * mix[c]:.2f}%" for c in CATEGORY_ORDER]
        )
    if per_contract:
        avg = {
            c: sum(mix[c] for mix in per_contract.values())
            / len(per_contract)
            for c in CATEGORY_ORDER
        }
        rows.append(
            ["Avg"] + [f"{100 * avg[c]:.2f}%" for c in CATEGORY_ORDER]
        )
    return format_table(headers, rows, title="Instruction breakdown")
