"""Measurement and reporting: instruction mixes (Table 6), bytecode share
of loaded context data (Table 2), and plain-text table rendering."""

from .bytecode_share import bytecode_share_table, measure_bytecode_share
from .instruction_mix import (
    instruction_mix,
    instruction_mix_table,
    static_instruction_mix,
)
from .reporting import format_table

__all__ = [
    "bytecode_share_table",
    "measure_bytecode_share",
    "instruction_mix",
    "instruction_mix_table",
    "static_instruction_mix",
    "format_table",
]
