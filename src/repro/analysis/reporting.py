"""Plain-text table rendering for benchmark output."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a simple aligned text table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
