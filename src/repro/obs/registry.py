"""The metrics registry: counters, gauges and histograms with labels.

Design constraints (why this is not a thin wrapper over a metrics
library):

* **Dependency-free** — the reproduction must run from a bare Python
  toolchain; no prometheus_client, no OpenTelemetry.
* **Zero-cost when disabled** — the default registry is
  :data:`NULL_REGISTRY`, whose metric handles are shared no-op
  singletons. Hot paths either hold a handle (``self._m_hits.inc()`` is
  a no-op method call) or guard aggregate emission with
  ``registry.enabled``; tier-1 test timing is unaffected.
* **Deterministic** — snapshots are sorted, values are plain ints/floats,
  and nothing reads the wall clock, so metric snapshots can be frozen as
  golden fixtures and diffed across runs.

A *series* is one (name, labels) pair; ``registry.counter("db_cache.hits",
pu="0")`` returns the same :class:`Counter` object on every call, so hot
paths resolve their handles once at construction time.
"""

from __future__ import annotations

from contextlib import contextmanager

#: Flat-key rendering of a labeled series: ``name{k=v,k2=v2}``.
def flat_key(name: str, labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def percentile(values: list, p: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(1, -(-len(ordered) * p // 100))  # ceil without floats
    return ordered[int(rank) - 1]


class Counter:
    """A monotonically increasing count (events, cycles, instructions)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({flat_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A point-in-time value (pool size, window occupancy)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({flat_key(self.name, self.labels)}={self.value})"


class Histogram:
    """A distribution of observed values with exact quantiles.

    Values are retained verbatim (simulated blocks observe at most a few
    thousand samples per series), so p50/p99 are exact nearest-rank
    quantiles rather than bucket approximations.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.values: list = []

    def observe(self, value) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self):
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def quantile(self, p: float):
        return percentile(self.values, p)

    def summary(self) -> dict:
        """JSON-ready digest of the distribution."""
        if not self.values:
            return {"count": 0, "total": 0, "min": 0, "max": 0,
                    "p50": 0, "p99": 0}
        return {
            "count": len(self.values),
            "total": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.quantile(50),
            "p99": self.quantile(99),
        }


class _NullCounter(Counter):
    """Shared no-op counter handed out by the disabled registry."""

    def __init__(self):
        super().__init__("null", ())

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self):
        super().__init__("null", ())

    def set(self, value) -> None:
        pass

    def inc(self, amount=1) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self):
        super().__init__("null", ())

    def observe(self, value) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create store of labeled metric series."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = Counter(key[0], key[1])
            self._counters[key] = metric
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = Gauge(key[0], key[1])
            self._gauges[key] = metric
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = self._key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = Histogram(key[0], key[1])
            self._histograms[key] = metric
        return metric

    # -- queries -----------------------------------------------------------
    def value(self, name: str, **labels):
        """Exact series value (0 when the series does not exist)."""
        key = self._key(name, labels)
        metric = self._counters.get(key) or self._gauges.get(key)
        return metric.value if metric is not None else 0

    def total(self, name: str):
        """Sum of a counter/gauge name across all its label series."""
        return sum(
            m.value
            for store in (self._counters, self._gauges)
            for (n, _), m in store.items()
            if n == name
        )

    def series(self, name: str) -> list:
        """All metrics registered under *name*, any kind, sorted."""
        found = [
            m
            for store in (self._counters, self._gauges, self._histograms)
            for (n, _), m in store.items()
            if n == name
        ]
        return sorted(found, key=lambda m: m.labels)

    def counters_flat(self) -> dict:
        """``{flat_key: value}`` for every counter series, sorted."""
        return {
            flat_key(m.name, m.labels): m.value
            for _, m in sorted(self._counters.items())
        }

    def snapshot(self) -> dict:
        """Deterministic JSON-ready dump of every series."""
        return {
            "counters": self.counters_flat(),
            "gauges": {
                flat_key(m.name, m.labels): m.value
                for _, m in sorted(self._gauges.items())
            },
            "histograms": {
                flat_key(m.name, m.labels): m.summary()
                for _, m in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Forget every series (handles held by components go stale)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullMetricsRegistry(MetricsRegistry):
    """The default registry: accepts everything, records nothing."""

    enabled = False

    def counter(self, name: str, **labels) -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        return NULL_GAUGE

    def histogram(self, name: str, **labels) -> Histogram:
        return NULL_HISTOGRAM


NULL_REGISTRY = NullMetricsRegistry()

_active: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-wide active registry (the no-op one by default)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as the active one; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Scoped instrumentation: install a registry, restore on exit.

    ``with use_registry() as reg:`` creates a fresh enabled registry —
    the common test/benchmark idiom. Components resolve metric handles
    when *they* are constructed, so build the system under measurement
    inside the ``with`` block.
    """
    reg = registry if registry is not None else MetricsRegistry()
    previous = set_registry(reg)
    try:
        yield reg
    finally:
        set_registry(previous)


def delta(before: dict, after: dict) -> dict:
    """Per-key difference of two :meth:`counters_flat` snapshots."""
    changed = {}
    for key, value in after.items():
        diff = value - before.get(key, 0)
        if diff:
            changed[key] = diff
    return changed
