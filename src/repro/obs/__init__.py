"""``repro.obs`` — the unified observability layer.

Three pieces, all dependency-free and zero-cost when disabled:

* :mod:`~repro.obs.registry` — labeled counters/gauges/histograms behind
  a process-wide registry (a no-op registry is the default; install a
  real one with :func:`use_registry`).
* :mod:`~repro.obs.tracing` — span-based structured tracing with a
  deterministic :class:`LogicalClock` option for golden fixtures.
* :mod:`~repro.obs.report` — :class:`BlockPerfReport`, the per-block
  aggregation that serializes every measured property of a block run.

Quickstart::

    from repro.obs import use_registry, use_tracing

    with use_registry() as reg, use_tracing() as spans:
        outcome = validator.validate(block)
    print(outcome.perf.to_json(indent=2))
    print(reg.snapshot()["counters"]["db_cache.hits{pu=0}"])
"""

from .instrument import count, observe, timed
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    delta,
    flat_key,
    get_registry,
    percentile,
    set_registry,
    use_registry,
)
from .report import BlockPerfReport, LatencyReport
from .tracing import (
    NULL_TRACER,
    LogicalClock,
    NullSpanTracer,
    Span,
    SpanTracer,
    get_tracer,
    set_tracer,
    use_tracing,
)

__all__ = [
    "BlockPerfReport",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyReport",
    "LogicalClock",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullSpanTracer",
    "Span",
    "SpanTracer",
    "count",
    "delta",
    "flat_key",
    "get_registry",
    "get_tracer",
    "observe",
    "percentile",
    "set_registry",
    "set_tracer",
    "timed",
    "use_registry",
    "use_tracing",
]
