"""Span-based structured tracing.

A :class:`Span` is one timed region of work with attributes and child
spans; a :class:`SpanTracer` maintains the open-span stack and keeps the
finished roots. The block pipeline produces a three-level hierarchy::

    block.validate
    ├── block.dag_verify
    └── block.schedule
        ├── tx.execute {pu, contract, cycles, instructions}
        ├── tx.execute ...
        └── ...

The default tracer is :data:`NULL_TRACER`: ``span()`` hands back a shared
no-op context manager, so untraced runs pay one attribute check per span
site. For golden-trace fixtures, construct ``SpanTracer(clock=
LogicalClock())`` — spans are then stamped with a deterministic counter
instead of wall time and serialize byte-identically on every run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class LogicalClock:
    """A deterministic clock: each reading is the previous plus one."""

    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        self.now += 1
        return self.now


@dataclass
class Span:
    """One traced region: name, interval, attributes, children."""

    name: str
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attributes) -> None:
        """Attach attributes to the span (e.g. measured results)."""
        self.attributes.update(attributes)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            start=data["start"],
            end=data["end"],
            attributes=dict(data.get("attributes", {})),
            children=[
                cls.from_dict(child) for child in data.get("children", [])
            ],
        )


class _NullSpan(Span):
    """Shared placeholder span: swallows attributes."""

    def __init__(self) -> None:
        super().__init__(name="null")

    def set(self, **attributes) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager (cheaper than a generator)."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Collects a forest of spans via an open-span stack."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes):
        node = Span(
            name=name, start=self.clock(), attributes=dict(attributes)
        )
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            self._stack.pop()
            node.end = self.clock()

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()


class NullSpanTracer(SpanTracer):
    """The default tracer: every span site is a shared no-op."""

    enabled = False

    def span(self, name: str, **attributes):
        return _NULL_SPAN_CONTEXT

    def current(self) -> Span | None:
        return None


NULL_TRACER = NullSpanTracer()

_active: SpanTracer = NULL_TRACER


def get_tracer() -> SpanTracer:
    """The process-wide active span tracer (no-op by default)."""
    return _active


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Install *tracer* as the active one; returns the previous."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def use_tracing(tracer: SpanTracer | None = None):
    """Scoped tracing: install a tracer, restore the previous on exit."""
    active = tracer if tracer is not None else SpanTracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
