"""Per-block performance aggregation: the :class:`BlockPerfReport`.

One report captures everything the paper measures about a block in a
single JSON-serializable object: the headline speedup inputs (makespan
vs. sequentialized cycles), DB-cache behaviour, per-PU utilization,
per-transaction latency quantiles, scheduler counters, hotspot-optimizer
effectiveness, and the block's fault/degradation counters (shared with
:class:`repro.faults.DegradationReport` — both views increment the same
``faults.*`` registry series, see ``DegradationReport.count``).

Reports round-trip exactly through JSON (``from_json(to_json(r)) == r``),
which the metric-invariant suite asserts, and are the payload of both the
``repro obs-report`` CLI subcommand and ``benchmarks/emit_bench.py``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from .registry import delta, get_registry, percentile

#: Counter prefix whose label value is the opcode category.
_OPS_PREFIX = "evm.ops{category="


@dataclass
class LatencyReport:
    """A wall-latency distribution digest (milliseconds).

    The serving layer's SLO currency: the RPC server's end-to-end
    histogram, the load generator's per-request RTTs and the benchmark's
    ``serve`` section all reduce to this one JSON-round-trippable shape,
    so dashboards and regression gates compare like with like.
    """

    label: str = ""
    count: int = 0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0

    @classmethod
    def from_samples(cls, label: str, samples_ms: list) -> "LatencyReport":
        if not samples_ms:
            return cls(label=label)
        return cls(
            label=label,
            count=len(samples_ms),
            mean_ms=sum(samples_ms) / len(samples_ms),
            p50_ms=percentile(samples_ms, 50),
            p99_ms=percentile(samples_ms, 99),
            max_ms=max(samples_ms),
        )

    @classmethod
    def from_histogram(cls, histogram, label: str = "") -> "LatencyReport":
        """Digest a :class:`~repro.obs.registry.Histogram` of ms values."""
        return cls.from_samples(label or histogram.name, histogram.values)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyReport":
        return cls(**{
            name: data[name]
            for name in cls.__dataclass_fields__
            if name in data
        })


def _opcode_categories(counter_delta: dict) -> dict:
    """Extract the per-category opcode mix from a counters delta."""
    categories: dict[str, int] = {}
    for key, value in counter_delta.items():
        if key.startswith(_OPS_PREFIX) and key.endswith("}"):
            categories[key[len(_OPS_PREFIX):-1]] = value
    return categories


@dataclass
class BlockPerfReport:
    """Everything measured about one block's execution."""

    label: str = ""
    num_transactions: int = 0
    num_pus: int = 0
    #: Parallel wall time of the block, in model cycles.
    makespan_cycles: int = 0
    #: Sum of per-transaction cycles (the single-PU equivalent).
    sequential_cycles: int = 0
    total_instructions: int = 0
    total_gas: int = 0
    utilization: float = 0.0
    redundancy_hit_ratio: float = 0.0
    #: Per-transaction latency in model cycles, execution order.
    tx_cycles: list = field(default_factory=list)
    #: DB-cache totals: lookups/hits/misses/insertions/evictions.
    cache: dict = field(default_factory=dict)
    #: Scheduler counters: admitted/commits/aborts/selections/occupancy.
    scheduler: dict = field(default_factory=dict)
    #: Per-PU rows: busy cycles, transactions, cache hit rate.
    pus: list = field(default_factory=list)
    #: Hotspot optimizer effectiveness counters.
    hotspot: dict = field(default_factory=dict)
    #: Fault/degradation counters (one source of truth with faults.*).
    degradation: dict = field(default_factory=dict)
    #: Executed-instruction mix per functional-unit category.
    opcode_categories: dict = field(default_factory=dict)
    #: Structured trace (span forest) of the block, when tracing was on.
    spans: list = field(default_factory=list)

    # -- derived -----------------------------------------------------------
    @property
    def headline_speedup(self) -> float:
        """Makespan speedup over fully sequentialized execution."""
        if not self.makespan_cycles:
            return 0.0
        return self.sequential_cycles / self.makespan_cycles

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache.get("lookups", 0)
        return self.cache.get("hits", 0) / lookups if lookups else 0.0

    @property
    def p50_tx_cycles(self):
        return percentile(self.tx_cycles, 50)

    @property
    def p99_tx_cycles(self):
        return percentile(self.tx_cycles, 99)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["derived"] = {
            "headline_speedup": self.headline_speedup,
            "cache_hit_rate": self.cache_hit_rate,
            "p50_tx_cycles": self.p50_tx_cycles,
            "p99_tx_cycles": self.p99_tx_cycles,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BlockPerfReport":
        fields_ = {
            name: data[name]
            for name in cls.__dataclass_fields__
            if name in data
        }
        return cls(**fields_)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BlockPerfReport":
        return cls.from_dict(json.loads(text))

    # -- construction ------------------------------------------------------
    @classmethod
    def from_execution(
        cls,
        label: str,
        schedule,
        executor,
        degradation=None,
        counters_before: dict | None = None,
        spans: list | None = None,
    ) -> "BlockPerfReport":
        """Aggregate a finished block run into one report.

        *schedule* is a ``ScheduleResult``, *executor* the
        ``MTPUExecutor`` that ran it (both duck-typed — obs stays
        dependency-free below the core packages). *counters_before* is a
        ``registry.counters_flat()`` snapshot taken before the run; the
        delta against the active registry supplies the opcode mix.
        """
        executions = schedule.executions
        cache_totals = {
            "lookups": 0, "hits": 0, "misses": 0,
            "insertions": 0, "evictions": 0,
        }
        pu_rows = []
        for pu in executor.pus:
            stats = pu.db_cache.stats
            cache_totals["lookups"] += stats.accesses
            cache_totals["hits"] += stats.hits
            cache_totals["misses"] += stats.misses
            cache_totals["insertions"] += stats.insertions
            cache_totals["evictions"] += stats.evictions
            pu_rows.append({
                "pu": pu.pu_id,
                "busy_cycles": pu.busy_cycles,
                "transactions": pu.transactions_executed,
                "cache_hit_rate": stats.hit_ratio,
            })

        counter_delta: dict = {}
        registry = get_registry()
        if registry.enabled and counters_before is not None:
            counter_delta = delta(
                counters_before, registry.counters_flat()
            )

        hotspot = {
            "plans_applied": sum(
                1 for e in executions if e.hotspot_applied
            ),
            "stale_chunks_discarded": executor.stale_chunks_discarded,
            "prefetch_hits": sum(
                e.timing.prefetch_hits for e in executions
            ),
        }
        if spans is None:
            from .tracing import get_tracer

            tracer = get_tracer()
            spans = tracer.to_dicts() if tracer.enabled else []

        return cls(
            label=label,
            num_transactions=len(executions),
            num_pus=schedule.num_pus,
            makespan_cycles=schedule.makespan_cycles,
            sequential_cycles=sum(e.cycles for e in executions),
            total_instructions=schedule.total_instructions,
            total_gas=sum(e.receipt.gas_used for e in executions),
            utilization=schedule.utilization,
            redundancy_hit_ratio=schedule.redundancy_hit_ratio,
            tx_cycles=[e.cycles for e in executions],
            cache=cache_totals,
            scheduler=dict(getattr(schedule, "scheduler_stats", {})),
            pus=pu_rows,
            hotspot=hotspot,
            degradation=(
                degradation.as_dict() if degradation is not None else {}
            ),
            opcode_categories=_opcode_categories(counter_delta),
            spans=list(spans),
        )
