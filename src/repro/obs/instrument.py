"""Instrumentation helpers: ``observe()``, ``count()`` and ``@timed``.

These are the free-function face of the registry for code that does not
want to hold metric handles. All three resolve the active registry per
call and fall through immediately when it is the no-op default.
"""

from __future__ import annotations

import functools
import time

from .registry import get_registry


def count(name: str, amount: int = 1, **labels) -> None:
    """Increment a counter on the active registry."""
    registry = get_registry()
    if registry.enabled:
        registry.counter(name, **labels).inc(amount)


def observe(name: str, value, **labels) -> None:
    """Record *value* into a histogram on the active registry."""
    registry = get_registry()
    if registry.enabled:
        registry.histogram(name, **labels).observe(value)


def timed(name=None, **labels):
    """Decorator: time each call into ``<name>.seconds`` (a histogram)
    and count calls into ``<name>.calls``.

    Usable bare (``@timed``) or configured (``@timed("hotspot.profile")``).
    When the registry is disabled the wrapper is a single attribute check
    plus the call itself — no clock reads.
    """

    def decorate(fn, metric_name=None):
        base = metric_name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            registry = get_registry()
            if not registry.enabled:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                registry.histogram(base + ".seconds", **labels).observe(
                    time.perf_counter() - started
                )
                registry.counter(base + ".calls", **labels).inc()

        return wrapper

    if callable(name):  # bare @timed
        return decorate(name)
    return lambda fn: decorate(fn, name)
