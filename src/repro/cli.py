"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run fig12 table7
    python -m repro run all --out results/
    python -m repro obs-report --transactions 32 --pus 4
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from . import experiments

#: CLI name -> experiment callable.
EXPERIMENTS = {
    "table1": experiments.table1_ethereum_stats,
    "fig2": experiments.fig2_consensus,
    "table2": experiments.table2_bytecode_share,
    "table5": experiments.table5_area,
    "table6": experiments.table6_instruction_mix,
    "fig12": experiments.fig12_ilp_ablation,
    "fig13": experiments.fig13_cache_hit_ratio,
    "table7": experiments.table7_ipc,
    "fig14": experiments.fig14_scheduling_speedup,
    "fig15": experiments.fig15_utilization,
    "fig16": experiments.fig16_redundancy_hotspot,
    "table8": experiments.table8_bpu_erc20,
    "table9": experiments.table9_bpu_parallel,
    "headline": experiments.headline_speedup,
    # Design-choice ablations beyond the paper's own figures.
    "ablation-window": experiments.ablation_window_size,
    "ablation-statebuffer": experiments.ablation_state_buffer,
    "ablation-unitcap": experiments.ablation_unit_capacity,
    "ablation-selection": experiments.ablation_selection_overhead,
    "ablation-pus": experiments.ablation_pu_scaling,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the MTPU paper's tables and figures on "
                    "the Python reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run experiments and print tables")
    run.add_argument(
        "names", nargs="+",
        help="experiment ids (e.g. fig12 table7), or 'all'",
    )
    run.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write each rendered table to this directory",
    )
    run.add_argument(
        "--json", action="store_true",
        help="with --out, additionally write machine-readable JSON",
    )

    obs = sub.add_parser(
        "obs-report",
        help="run one instrumented block and print its BlockPerfReport",
    )
    obs.add_argument(
        "--transactions", type=int, default=32,
        help="transactions in the generated block (default: 32)",
    )
    obs.add_argument(
        "--pus", type=int, default=4,
        help="PUs in the MTPU (default: 4)",
    )
    obs.add_argument(
        "--ratio", type=float, default=0.5,
        help="target dependency ratio of the block (default: 0.5)",
    )
    obs.add_argument(
        "--seed", type=int, default=7,
        help="workload generator seed (default: 7)",
    )
    obs.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the JSON report here instead of stdout",
    )
    obs.add_argument(
        "--indent", type=int, default=2,
        help="JSON indentation (default: 2)",
    )
    obs.add_argument(
        "--parallel-workers", type=int, default=None, metavar="N",
        help=(
            "also measure wall-clock throughput of the multicore "
            "parallel backend with N workers vs the sequential path"
        ),
    )
    obs.add_argument(
        "--parallel-backend", choices=("process", "serial"),
        default="process",
        help="parallel backend for --parallel-workers (default: process)",
    )
    return parser


def _run_obs_report(args) -> int:
    from .experiments import measure_block

    report = measure_block(
        num_transactions=args.transactions,
        num_pus=args.pus,
        ratio=args.ratio,
        seed=args.seed,
    )
    rendered = report.to_json(indent=args.indent)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(rendered + "\n")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    print(
        f"[{report.label}: speedup {report.headline_speedup:.2f}x, "
        f"cache hit rate {report.cache_hit_rate:.1%}, "
        f"utilization {report.utilization:.1%}, "
        f"p50/p99 tx cycles {report.p50_tx_cycles}/{report.p99_tx_cycles}]",
        file=sys.stderr,
    )
    if args.parallel_workers is not None:
        from .experiments import measure_wall_clock

        wall = measure_wall_clock(
            num_transactions=args.transactions,
            num_workers=args.parallel_workers,
            ratio=args.ratio,
            seed=args.seed,
            backend=args.parallel_backend,
        )
        print(
            f"[wall-clock: sequential "
            f"{wall['sequential']['tx_per_second']:.0f} tx/s, pipeline "
            f"{wall['pipeline']['tx_per_second']:.0f} tx/s "
            f"({wall['pipeline_speedup']:.2f}x, "
            f"{wall['num_workers']} workers, {wall['backend']} backend, "
            f"{wall['pipeline']['replayed']} replayed / "
            f"{wall['pipeline']['dispatched']} dispatched)]",
            file=sys.stderr,
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for name, fn in EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0

    if args.command == "obs-report":
        return _run_obs_report(args)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in names:
        started = time.time()
        result = EXPERIMENTS[name]()
        elapsed = time.time() - started
        rendered = result.render()
        print(rendered)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")
            if args.json:
                (args.out / f"{name}.json").write_text(
                    json.dumps(result.to_dict(), indent=2) + "\n"
                )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
