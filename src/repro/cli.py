"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro run fig12 table7
    python -m repro run all --out results/
    python -m repro obs-report --transactions 32 --pus 4
    python -m repro serve --port 8545
    python -m repro loadgen --port 8545 --requests 1000
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from . import experiments

#: CLI name -> experiment callable.
EXPERIMENTS = {
    "table1": experiments.table1_ethereum_stats,
    "fig2": experiments.fig2_consensus,
    "table2": experiments.table2_bytecode_share,
    "table5": experiments.table5_area,
    "table6": experiments.table6_instruction_mix,
    "fig12": experiments.fig12_ilp_ablation,
    "fig13": experiments.fig13_cache_hit_ratio,
    "table7": experiments.table7_ipc,
    "fig14": experiments.fig14_scheduling_speedup,
    "fig15": experiments.fig15_utilization,
    "fig16": experiments.fig16_redundancy_hotspot,
    "table8": experiments.table8_bpu_erc20,
    "table9": experiments.table9_bpu_parallel,
    "headline": experiments.headline_speedup,
    # Design-choice ablations beyond the paper's own figures.
    "ablation-window": experiments.ablation_window_size,
    "ablation-statebuffer": experiments.ablation_state_buffer,
    "ablation-unitcap": experiments.ablation_unit_capacity,
    "ablation-selection": experiments.ablation_selection_overhead,
    "ablation-pus": experiments.ablation_pu_scaling,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the MTPU paper's tables and figures on "
                    "the Python reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run experiments and print tables")
    run.add_argument(
        "names", nargs="+",
        help="experiment ids (e.g. fig12 table7), or 'all'",
    )
    run.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="also write each rendered table to this directory",
    )
    run.add_argument(
        "--json", action="store_true",
        help="with --out, additionally write machine-readable JSON",
    )

    obs = sub.add_parser(
        "obs-report",
        help="run one instrumented block and print its BlockPerfReport",
    )
    obs.add_argument(
        "--transactions", type=int, default=32,
        help="transactions in the generated block (default: 32)",
    )
    obs.add_argument(
        "--pus", type=int, default=4,
        help="PUs in the MTPU (default: 4)",
    )
    obs.add_argument(
        "--ratio", type=float, default=0.5,
        help="target dependency ratio of the block (default: 0.5)",
    )
    obs.add_argument(
        "--seed", type=int, default=7,
        help="workload generator seed (default: 7)",
    )
    obs.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the JSON report here instead of stdout",
    )
    obs.add_argument(
        "--indent", type=int, default=2,
        help="JSON indentation (default: 2)",
    )
    obs.add_argument(
        "--parallel-workers", type=int, default=None, metavar="N",
        help=(
            "also measure wall-clock throughput of the multicore "
            "parallel backend with N workers vs the sequential path"
        ),
    )
    obs.add_argument(
        "--parallel-backend", choices=("process", "serial"),
        default="process",
        help="parallel backend for --parallel-workers (default: process)",
    )
    obs.add_argument(
        "--occ-workers", type=int, default=None, metavar="N",
        help=(
            "also measure the speculative (OCC) executor on the "
            "dynamic-storage-key workload with N workers: sequential "
            "(discover-then-execute) vs declared-DAG vs OCC wall tx/s"
        ),
    )
    obs.add_argument(
        "--occ-backend", choices=("process", "serial"), default=None,
        help="OCC backend for --occ-workers (default: process when "
             "more than one core is available, else serial)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the JSON-RPC node front-end (newline-delimited "
             "JSON-RPC 2.0 over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8545)
    serve.add_argument(
        "--accounts", type=int, default=64,
        help="genesis accounts (loadgen must use the same value)",
    )
    serve.add_argument(
        "--executor", choices=("sequential", "mtpu", "parallel", "occ"),
        default="sequential",
        help="block execution backend (default: sequential); occ is "
             "speculative Block-STM execution with no access-set "
             "discovery — dynamic-storage-key contracts run undeclared",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="PUs (mtpu) or worker processes (parallel)",
    )
    serve.add_argument(
        "--block-size", type=int, default=128,
        help="cut a block at this many transactions (default: 128)",
    )
    serve.add_argument(
        "--gas-target", type=int, default=30_000_000,
        help="cut a block at this cumulative gas (default: 30M)",
    )
    serve.add_argument(
        "--interval-ms", type=float, default=50.0,
        help="cut a block this long after the first pending tx "
             "(default: 50)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=4096,
        help="admitted-but-uncommitted bound; beyond it clients get "
             "typed BUSY errors (default: 4096)",
    )
    serve.add_argument(
        "--per-sender-cap", type=int, default=1024,
        help="pending transactions allowed per sender (default: 1024)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, metavar="TX_PER_S",
        help="per-client token-bucket rate (default: off)",
    )
    serve.add_argument(
        "--rate-burst", type=int, default=64,
        help="token-bucket burst size (default: 64)",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="durable chain directory (WAL + snapshots); restarting "
             "with the same directory recovers and resumes the chain "
             "(default: in-memory only)",
    )
    serve.add_argument(
        "--fsync", choices=("always", "interval", "never"),
        default="always",
        help="WAL fsync policy with --data-dir (default: always)",
    )
    serve.add_argument(
        "--snapshot-interval", type=int, default=64,
        help="world-state snapshot cadence in blocks (default: 64)",
    )
    serve.add_argument(
        "--fsync-interval", type=int, default=16,
        help="blocks between fsyncs under --fsync interval "
             "(default: 16)",
    )
    serve.add_argument(
        "--replication-port", type=int, default=None, metavar="PORT",
        help="with --data-dir: stream the WAL to verifying replicas on "
             "this port (0 = ephemeral; the bound port is announced on "
             "stderr)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="drop connections silent this long (subscribers exempt; "
             "default: never)",
    )
    serve.add_argument(
        "--packing", choices=("fifo", "conflict_aware"), default="fifo",
        help="block cut policy: fifo (arrival order) or conflict_aware "
             "(spread conflicting transactions across blocks and "
             "parallel lanes; state stays bit-identical to fifo)",
    )
    serve.add_argument(
        "--packing-lane-depth", type=int, default=None, metavar="N",
        help="max transactions one conflict chain contributes per "
             "packed block (default: block size / workers)",
    )
    serve.add_argument(
        "--packing-aging-bound", type=int, default=8, metavar="N",
        help="deferred cuts before a conflicting transaction is "
             "force-included (default: 8)",
    )
    serve.add_argument(
        "--no-merkleize", action="store_true",
        help="skip the incremental Merkle trie (no sealed state roots, "
             "no repro_getProof; legacy flat-digest operation)",
    )
    serve.add_argument(
        "--emit-witness", action="store_true",
        help="emit a stateless-validation witness per block (rides in "
             "the WAL; lets witness-mode replicas skip full state)",
    )

    replicate = sub.add_parser(
        "replicate",
        help="run a verifying read replica fed by a writer's WAL "
             "stream (serves reads/subscriptions; writes get a typed "
             "READ_ONLY error)",
    )
    replicate.add_argument("--host", default="127.0.0.1")
    replicate.add_argument("--port", type=int, default=8546)
    replicate.add_argument(
        "--accounts", type=int, default=64,
        help="genesis accounts (must match the writer's --accounts)",
    )
    replicate.add_argument(
        "--writer-host", default="127.0.0.1",
        help="the writer's stream host",
    )
    replicate.add_argument(
        "--writer-stream-port", type=int, required=True,
        help="the writer's --replication-port (as announced on stderr)",
    )
    replicate.add_argument("--seed", type=int, default=0)
    replicate.add_argument(
        "--mode", choices=("execute", "witness"), default="execute",
        help="execute: re-run every block against full local state; "
             "witness: validate statelessly from block witnesses "
             "(writer must run --emit-witness)",
    )
    replicate.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="drop connections silent this long (subscribers exempt)",
    )
    replicate.add_argument(
        "--corrupt-at-height", type=int, default=None, metavar="H",
        help="chaos drill: silently corrupt one balance before applying "
             "block H — the digest assertion must detect it and heal "
             "via snapshot resync",
    )

    proxy = sub.add_parser(
        "proxy",
        help="front a writer and N replicas with one read endpoint "
             "(round-robin healthy replicas, eject on failure, fail "
             "over to the writer)",
    )
    proxy.add_argument("--host", default="127.0.0.1")
    proxy.add_argument("--port", type=int, default=8550)
    proxy.add_argument(
        "--writer", required=True, metavar="HOST:PORT",
        help="the writer's RPC endpoint",
    )
    proxy.add_argument(
        "--replica", action="append", default=[], metavar="HOST:PORT",
        help="a replica RPC endpoint (repeatable)",
    )
    proxy.add_argument(
        "--health-interval", type=float, default=0.25,
        help="backend health-probe cadence in seconds (default: 0.25)",
    )
    proxy.add_argument(
        "--max-lag-blocks", type=int, default=1024,
        help="eject replicas lagging the writer by more than this "
             "(default: 1024)",
    )

    recover = sub.add_parser(
        "recover",
        help="rebuild node state from a data directory and report "
             "(replays the WAL, repairs torn tails)",
    )
    recover.add_argument("data_dir", help="chain data directory")
    recover.add_argument(
        "--receipt-history-blocks", type=int, default=1024,
        help="receipt retention window the replay must cover "
             "(default: 1024); 0 means archival full replay",
    )
    recover.add_argument(
        "--no-repair", action="store_true",
        help="report tail damage without truncating the WAL file",
    )
    recover.add_argument(
        "--json", action="store_true",
        help="print the recovery report as JSON",
    )

    verify = sub.add_parser(
        "verify-store",
        help="read-only integrity audit of a data directory "
             "(non-zero exit on unrecoverable damage)",
    )
    verify.add_argument("data_dir", help="chain data directory")
    verify.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON",
    )

    proof = sub.add_parser(
        "proof",
        help="fetch a Merkle proof from a running server and verify it "
             "locally against the served state root (the light-client "
             "quickstart)",
    )
    proof.add_argument("--host", default="127.0.0.1")
    proof.add_argument("--port", type=int, default=8545)
    proof.add_argument(
        "--address", required=True,
        help="account address (hex)",
    )
    proof.add_argument(
        "--slot", default=None,
        help="storage slot (hex); omitted: prove the account itself",
    )
    proof.add_argument(
        "--json", action="store_true",
        help="print the server response as JSON",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running `repro serve` with generated traffic",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8545)
    loadgen.add_argument(
        "--accounts", type=int, default=64,
        help="genesis accounts (must match the server's --accounts)",
    )
    loadgen.add_argument(
        "--mode", choices=("closed", "open"), default="closed",
    )
    loadgen.add_argument(
        "--requests", type=int, default=1000,
        help="closed loop: total transactions to send (default: 1000)",
    )
    loadgen.add_argument(
        "--clients", type=int, default=16,
        help="concurrent connections (default: 16)",
    )
    loadgen.add_argument(
        "--rate", type=float, default=500.0,
        help="open loop: offered load in tx/s (default: 500)",
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0,
        help="open loop: seconds to sustain --rate (default: 5)",
    )
    loadgen.add_argument(
        "--workload",
        choices=("transfer", "hotburst", "erc20", "mixed", "dynamic"),
        default="transfer",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request deadline forwarded to the server",
    )
    loadgen.add_argument(
        "--json", action="store_true",
        help="print the full LoadResult as JSON",
    )
    return parser


def _run_obs_report(args) -> int:
    from .experiments import measure_block

    report = measure_block(
        num_transactions=args.transactions,
        num_pus=args.pus,
        ratio=args.ratio,
        seed=args.seed,
    )
    rendered = report.to_json(indent=args.indent)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(rendered + "\n")
        print(f"wrote {args.out}")
    else:
        print(rendered)
    print(
        f"[{report.label}: speedup {report.headline_speedup:.2f}x, "
        f"cache hit rate {report.cache_hit_rate:.1%}, "
        f"utilization {report.utilization:.1%}, "
        f"p50/p99 tx cycles {report.p50_tx_cycles}/{report.p99_tx_cycles}]",
        file=sys.stderr,
    )
    if args.parallel_workers is not None:
        from .experiments import measure_wall_clock

        wall = measure_wall_clock(
            num_transactions=args.transactions,
            num_workers=args.parallel_workers,
            ratio=args.ratio,
            seed=args.seed,
            backend=args.parallel_backend,
        )
        print(
            f"[wall-clock: sequential "
            f"{wall['sequential']['tx_per_second']:.0f} tx/s, pipeline "
            f"{wall['pipeline']['tx_per_second']:.0f} tx/s "
            f"({wall['pipeline_speedup']:.2f}x, "
            f"{wall['num_workers']} workers, {wall['backend']} backend, "
            f"{wall['pipeline']['replayed']} replayed / "
            f"{wall['pipeline']['dispatched']} dispatched)]",
            file=sys.stderr,
        )
    if args.occ_workers is not None:
        from .experiments import measure_occ_wall_clock

        occ = measure_occ_wall_clock(
            num_transactions=args.transactions,
            num_workers=args.occ_workers,
            seed=args.seed,
            backend=args.occ_backend,
        )
        print(
            f"[occ (dynamic keys, no access sets): sequential "
            f"{occ['sequential']['tx_per_second']:.0f} tx/s, "
            f"declared-DAG {occ['dag']['tx_per_second']:.0f} tx/s, "
            f"occ {occ['occ']['tx_per_second']:.0f} tx/s "
            f"({occ['occ_speedup']:.2f}x, {occ['backend']} backend, "
            f"{occ['occ']['executions']} executions / "
            f"{occ['occ']['aborts']} aborts / "
            f"{occ['occ']['rounds']} rounds)]",
            file=sys.stderr,
        )
    return 0


def _run_serve(args) -> int:
    import asyncio

    from .chain.node import Node
    from .contracts.registry import build_deployment
    from .serve import RpcServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        block_size_target=args.block_size,
        gas_target=args.gas_target,
        block_interval_ms=args.interval_ms,
        max_pending=args.max_pending,
        per_sender_cap=args.per_sender_cap,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        executor=args.executor,
        num_workers=args.workers,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_interval_blocks=args.snapshot_interval,
        fsync_interval_blocks=args.fsync_interval,
        replication_port=args.replication_port,
        idle_timeout_s=args.idle_timeout,
        packing=args.packing,
        packing_lane_depth=args.packing_lane_depth,
        packing_aging_bound=args.packing_aging_bound,
        merkleize=not args.no_merkleize,
        emit_witness=args.emit_witness,
    )
    deployment = build_deployment(num_accounts=args.accounts)
    node = Node(state=deployment.state,
                per_sender_cap=args.per_sender_cap,
                merkleize=config.merkleize,
                emit_witness=config.emit_witness)
    server = RpcServer(node=node, config=config)
    if server.recovery is not None:
        recovery = server.recovery
        for warning in recovery.warnings:
            print(f"recovery: {warning}", file=sys.stderr)
        print(
            f"recovered height {recovery.height} from "
            f"{args.data_dir} (snapshot {recovery.snapshot_height} + "
            f"{recovery.replayed_blocks} replayed blocks, "
            f"digest {recovery.state_digest.hex()[:16]}…)",
            file=sys.stderr,
        )

    async def _serve() -> None:
        await server.start()
        print(
            f"repro serve: listening on "
            f"{config.host}:{config.port} "
            f"({args.accounts} genesis accounts, "
            f"{config.executor} executor)",
            file=sys.stderr,
        )
        if server.streamer is not None:
            print(
                f"repro serve: streaming on "
                f"{config.host}:{config.replication_port}",
                file=sys.stderr,
            )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("draining…", file=sys.stderr)
            await server.shutdown()
            stats = server.stats()
            print(
                f"served {stats['txsCommitted']} transactions in "
                f"{stats['blocksBuilt']} blocks",
                file=sys.stderr,
            )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_replicate(args) -> int:
    import asyncio

    from .chain.node import Node
    from .contracts.registry import build_deployment
    from .replication import Replica, ReplicationConfig
    from .serve import RpcServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        role="replica",
        idle_timeout_s=args.idle_timeout,
    )
    deployment = build_deployment(num_accounts=args.accounts)
    node = Node(state=deployment.state)
    server = RpcServer(node=node, config=config)
    injector = None
    if args.corrupt_at_height is not None:
        from .faults import FaultInjector, FaultPlan, NetworkFault

        injector = FaultInjector(FaultPlan(
            seed=args.seed,
            network=NetworkFault(
                corrupt_at_height=args.corrupt_at_height
            ),
        ))
    replica = Replica(
        node=node,
        builder=server.builder,
        writer_host=args.writer_host,
        writer_stream_port=args.writer_stream_port,
        config=ReplicationConfig(seed=args.seed),
        fault_injector=injector,
        mode=args.mode,
    )
    server.replication = replica

    async def _serve() -> None:
        await server.start()
        replica.start()
        print(
            f"repro replica: listening on "
            f"{config.host}:{config.port} "
            f"(writer stream {args.writer_host}:"
            f"{args.writer_stream_port})",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print("stopping replica…", file=sys.stderr)
            await replica.stop()
            await server.shutdown()
            stats = replica.stats()
            print(
                f"applied {stats['blocksApplied']} blocks at height "
                f"{stats['height']} (reconnects {stats['reconnects']}, "
                f"resyncs {stats['resyncs']}, divergences "
                f"{stats['divergences']})",
                file=sys.stderr,
            )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_endpoint(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad endpoint {value!r} (want HOST:PORT)")
    return host, int(port)


def _run_proxy(args) -> int:
    import asyncio

    from .replication import ReadProxy, ReplicationConfig

    proxy = ReadProxy(
        writer_addr=_parse_endpoint(args.writer),
        replica_addrs=[_parse_endpoint(r) for r in args.replica],
        config=ReplicationConfig(
            health_interval_s=args.health_interval,
            max_lag_blocks=args.max_lag_blocks,
        ),
        host=args.host,
        port=args.port,
    )

    async def _serve() -> None:
        await proxy.start()
        print(
            f"repro proxy: listening on {proxy.host}:{proxy.port} "
            f"(writer {args.writer}, "
            f"{len(args.replica)} replica(s))",
            file=sys.stderr,
        )
        try:
            await proxy._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await proxy.stop()
            stats = proxy.stats()
            print(
                f"proxied {stats['readsProxied']} reads "
                f"(failovers {stats['failovers']}, "
                f"ejects {stats['ejects']})",
                file=sys.stderr,
            )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_loadgen(args) -> int:
    import asyncio

    from .obs.report import LatencyReport
    from .serve import LoadGenerator

    loadgen = LoadGenerator(
        args.host, args.port, num_accounts=args.accounts
    )
    if args.mode == "closed":
        result = asyncio.run(loadgen.run_closed_loop(
            args.requests, clients=args.clients,
            workload=args.workload, seed=args.seed,
            deadline_ms=args.deadline_ms,
        ))
    else:
        result = asyncio.run(loadgen.run_open_loop(
            args.rate, args.duration, clients=args.clients,
            workload=args.workload, seed=args.seed,
            deadline_ms=args.deadline_ms,
        ))
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    latency = result.latency or LatencyReport()
    print(
        f"[{result.mode}-loop: {result.ok}/{result.requested} ok "
        f"({result.tx_per_second:.0f} tx/s), errors {result.errors}, "
        f"unanswered {result.unanswered}, latency p50/p99 "
        f"{latency.p50_ms:.1f}/{latency.p99_ms:.1f} ms]",
        file=sys.stderr,
    )
    return 1 if result.unanswered else 0


def _run_proof(args) -> int:
    """Fetch + locally verify a Merkle proof — the light-client path.

    Only :mod:`repro.trie.verify` touches the proof bytes, exactly as a
    vendored light client would: the server is trusted for nothing but
    the blob and the root it claims.
    """
    import asyncio

    from .serve.loadgen import RpcClient, RpcClientError
    from .trie.errors import ProofDecodingError
    from .trie.verify import verify_proof_blob

    async def _fetch() -> int:
        client = await RpcClient.connect(args.host, args.port)
        try:
            params = {"address": args.address}
            method = "repro_getProof"
            if args.slot is not None:
                params["slot"] = args.slot
                method = "repro_getStorageProof"
            try:
                result = await client.call(method, params)
            except RpcClientError as exc:
                print(f"proof refused: {exc}", file=sys.stderr)
                return 1
            head = await client.call(
                "repro_getBlock", {"height": "latest"}
            )
        finally:
            await client.close()
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        state_root = bytes.fromhex(result["stateRoot"])
        blob = bytes.fromhex(result["proof"])
        try:
            proof, ok = verify_proof_blob(blob, state_root)
        except ProofDecodingError as exc:
            print(f"malformed proof: {exc}", file=sys.stderr)
            return 1
        if not ok:
            print("proof does NOT verify against the served root",
                  file=sys.stderr)
            return 1
        if head is not None and head.get("stateRoot"):
            anchored = head["stateRoot"] == result["stateRoot"]
            anchor_note = (
                "anchored to the latest sealed header"
                if anchored
                else f"NOTE: head at height {head['height']} seals a "
                     f"different root (chain advanced mid-request)"
            )
        else:
            anchor_note = "no sealed header to anchor against"
        if args.slot is not None:
            print(
                f"verified: slot {result['slot']} of "
                f"{result['address']} = {result['value']} under root "
                f"{result['stateRoot'][:16]}… ({len(blob)} proof "
                f"bytes; {anchor_note})"
            )
        else:
            print(
                f"verified: account {result['address']} balance "
                f"{result['balance']} nonce {result['nonce']} under "
                f"root {result['stateRoot'][:16]}… ({len(blob)} proof "
                f"bytes; {anchor_note})"
            )
        return 0

    return asyncio.run(_fetch())


def _run_recover(args) -> int:
    from .storage import StorageError, recover

    retention = args.receipt_history_blocks or None
    try:
        result = recover(
            args.data_dir,
            receipt_history_blocks=retention,
            repair=not args.no_repair,
        )
    except StorageError as exc:
        print(f"recover failed: {exc}", file=sys.stderr)
        return 1
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(json.dumps({
            "height": result.height,
            "snapshotHeight": result.snapshot_height,
            "replayedBlocks": result.replayed_blocks,
            "truncatedRecords": result.truncated_records,
            "truncatedBytes": result.truncated_bytes,
            "corruption": result.corruption,
            "skippedSnapshots": result.skipped_snapshots,
            "spilledPending": result.spilled_pending,
            "stateDigest": result.state_digest.hex(),
            "hotspots": [hex(a) for a in result.hotspots],
        }, indent=2, sort_keys=True))
    else:
        print(
            f"recovered height {result.height} "
            f"(snapshot {result.snapshot_height} + "
            f"{result.replayed_blocks} replayed blocks)\n"
            f"state digest {result.state_digest.hex()}\n"
            f"spilled pending transactions: {result.spilled_pending}"
        )
    return 0


def _run_verify_store(args) -> int:
    from .storage import verify_store

    report = verify_store(args.data_dir)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"wal: {report.wal_records} records, "
            f"{report.wal_bytes} bytes, chain height "
            f"{report.chain_height}"
        )
        print(
            "snapshots: "
            + (", ".join(str(h) for h, _ in report.snapshots) or "none")
        )
        for note in report.notes:
            print(f"note: {note}", file=sys.stderr)
    if not report.ok:
        print("verify-store: FAILED (unrecoverable damage)",
              file=sys.stderr)
        return 1
    if report.corruption is not None:
        print("verify-store: ok with recoverable tail damage",
              file=sys.stderr)
    else:
        print("verify-store: ok", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "replicate":
        return _run_replicate(args)

    if args.command == "proxy":
        return _run_proxy(args)

    if args.command == "proof":
        return _run_proof(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "recover":
        return _run_recover(args)

    if args.command == "verify-store":
        return _run_verify_store(args)

    if args.command == "list":
        for name, fn in EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {summary}")
        return 0

    if args.command == "obs-report":
        return _run_obs_report(args)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in names:
        started = time.time()
        result = EXPERIMENTS[name]()
        elapsed = time.time() - started
        rendered = result.render()
        print(rendered)
        print(f"[{name}: {elapsed:.1f}s]\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(rendered + "\n")
            if args.json:
                (args.out / f"{name}.json").write_text(
                    json.dumps(result.to_dict(), indent=2) + "\n"
                )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
