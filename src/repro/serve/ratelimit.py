"""Per-client token-bucket rate limiting.

A classic token bucket: ``rate`` tokens/second refill up to ``burst``
capacity; each request spends one token. The clock is injectable so
tests drive time explicitly instead of sleeping.
"""

from __future__ import annotations

import time


class TokenBucket:
    """One client's allowance."""

    __slots__ = ("rate", "burst", "tokens", "updated", "clock")

    def __init__(self, rate: float, burst: int, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.clock = clock
        self.updated = clock()

    def _refill(self) -> None:
        now = self.clock()
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now

    def try_acquire(self, cost: float = 1.0) -> bool:
        """Spend *cost* tokens; False (and no spend) when unaffordable."""
        self._refill()
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def retry_after(self, cost: float = 1.0) -> float:
        """Seconds until *cost* tokens will have refilled."""
        self._refill()
        missing = cost - self.tokens
        return max(0.0, missing / self.rate)


class RateLimiter:
    """Token buckets keyed by client id (e.g. peer address).

    Unknown clients get a fresh full bucket. The table is pruned
    opportunistically: full buckets of idle clients carry no state worth
    keeping, so any lookup that finds ≥ *prune_above* entries drops the
    refilled-to-burst ones.
    """

    def __init__(self, rate: float, burst: int, clock=time.monotonic,
                 prune_above: int = 4096):
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.prune_above = prune_above
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            if len(self._buckets) >= self.prune_above:
                self._prune()
            bucket = TokenBucket(self.rate, self.burst, clock=self.clock)
            self._buckets[client_id] = bucket
        return bucket

    def _prune(self) -> None:
        for key in [
            k for k, b in self._buckets.items()
            if b.try_acquire(0.0) and b.tokens >= b.burst
        ]:
            del self._buckets[key]

    def try_acquire(self, client_id: str) -> bool:
        return self.bucket(client_id).try_acquire()

    def retry_after(self, client_id: str) -> float:
        return self.bucket(client_id).retry_after()
