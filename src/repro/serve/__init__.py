"""repro.serve — the node's serving layer.

An asyncio JSON-RPC front-end (:class:`RpcServer`) feeding a continuous
block builder (:class:`BlockBuilder`): client transactions stream in
over newline-delimited JSON-RPC, pass mempool admission (typed errors
for duplicates, sender floods, underfunded/underpriced traffic), and are
cut into blocks when a size target, gas target, or time budget is hit —
the continuous-batching shape. Receipts resolve per-transaction response
futures; ``repro.serve.loadgen`` drives the whole path over real sockets
and ``python -m repro.serve.smoke`` gates it in CI.
"""

from .batcher import BlockBuilder, CommittedReceipt
from .config import ServeConfig
from .errors import (
    ADMISSION_REJECTED,
    BUSY,
    DEADLINE_EXCEEDED,
    EXECUTION_FAILED,
    RATE_LIMITED,
    READ_ONLY,
    SHUTTING_DOWN,
    ExecutionFailedError,
    ReadOnlyError,
    RpcError,
)
from .loadgen import (
    LoadGenerator,
    LoadResult,
    RetryPolicy,
    RpcClient,
    RpcClientError,
)
from .ratelimit import RateLimiter, TokenBucket
from .server import RpcServer

__all__ = [
    "ADMISSION_REJECTED",
    "BUSY",
    "BlockBuilder",
    "CommittedReceipt",
    "DEADLINE_EXCEEDED",
    "EXECUTION_FAILED",
    "ExecutionFailedError",
    "LoadGenerator",
    "LoadResult",
    "RATE_LIMITED",
    "READ_ONLY",
    "RateLimiter",
    "ReadOnlyError",
    "RetryPolicy",
    "RpcClient",
    "RpcClientError",
    "RpcError",
    "RpcServer",
    "SHUTTING_DOWN",
    "ServeConfig",
    "TokenBucket",
]
