"""Serve-path smoke test: boot a server, drive it over real sockets.

``python -m repro.serve.smoke`` starts an in-process :class:`RpcServer`
on an ephemeral localhost port, runs a short closed-loop load test
through :class:`~repro.serve.loadgen.LoadGenerator`, drains the server,
and asserts the acceptance gates:

* every request answered (zero unanswered, zero dropped receipts);
* the server's receipts/state digest are bit-identical to offline
  sequential execution of the same transactions;
* p99 end-to-end latency under a (generous) bound.

The CI ``serve-smoke`` job runs exactly this; ``benchmarks/emit_bench.py``
reuses :func:`run_serve_load` for its ``serve`` section.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

from ..chain.node import Node
from ..contracts.registry import build_deployment
from ..obs.report import LatencyReport
from .config import ServeConfig
from .loadgen import LoadGenerator, make_transactions
from .server import RpcServer


async def _run(
    transactions: int,
    clients: int,
    config: ServeConfig,
    workload: str,
    seed: int,
    check_digest: bool = True,
    num_accounts: int = 64,
) -> dict:
    deployment = build_deployment(num_accounts=num_accounts)
    node = Node(state=deployment.state.copy(),
                per_sender_cap=config.per_sender_cap,
                merkleize=config.merkleize,
                emit_witness=config.emit_witness)
    arrival: list = []
    if config.packing == "conflict_aware" and check_digest:
        # Record admission order (the event loop admits serially), so
        # the reference below can replay the *FIFO* history the packed
        # server reordered — the pack-equivalence check over sockets.
        original_add = node.mempool.add

        def recording_add(tx, heard_at=None, bloom=None):
            admitted = original_add(tx, heard_at=heard_at, bloom=bloom)
            if admitted:
                arrival.append(tx)
            return admitted

        node.mempool.add = recording_add
    server = RpcServer(node=node, config=config)
    await server.start()
    try:
        loadgen = LoadGenerator(
            config.host, config.port, deployment=deployment
        )
        result = await loadgen.run_closed_loop(
            transactions, clients=clients, workload=workload, seed=seed
        )
    finally:
        await server.shutdown()

    out = {
        "transactions": transactions,
        "clients": clients,
        "executor": config.executor,
        "load": result.to_dict(),
        "stats": server.stats(),
        "dropped_receipts": result.requested - result.ok
        - sum(result.errors.values()),
    }

    if check_digest:
        # Offline reference: replay the server's own blocks through the
        # plain sequential baseline on a fresh copy of genesis; receipts
        # and final state must be bit-identical.
        from ..chain.receipt import receipts_root

        # Same merkleize setting as the server: a Merkleizing reference
        # *checks* the sealed roots as it replays; an un-Merkleized one
        # must not stamp (and re-hash) the server's header in place.
        reference = Node(state=deployment.state.copy(),
                         merkleize=config.merkleize)
        started = time.perf_counter()
        roots_match = True
        for block in node.chain:
            ref_receipts = reference.execute_block(block)
            if (receipts_root(ref_receipts)
                    != receipts_root(node.receipts[block.hash()])):
                roots_match = False
        out["offline_seconds"] = time.perf_counter() - started
        out["offline_tx_per_second"] = (
            result.ok / out["offline_seconds"]
            if out["offline_seconds"] > 0 else 0.0
        )
        out["digest_match"] = (
            roots_match
            and node.state.state_digest()
            == reference.state.state_digest()
        )
        if arrival:
            # Pack-equivalence: a fresh node executing the admitted
            # transactions in strict arrival (FIFO) order must land on
            # the same state the packed server committed.
            fifo = Node(state=deployment.state.copy())
            for start in range(0, len(arrival), config.block_size_target):
                chunk = arrival[start:start + config.block_size_target]
                fifo.execute_block(
                    fifo.propose_block(transactions=chunk)
                )
            out["fifo_digest_match"] = (
                fifo.state.state_digest() == node.state.state_digest()
            )
    return out


def run_serve_load(
    transactions: int = 256,
    clients: int = 16,
    executor: str = "sequential",
    workload: str = "transfer",
    seed: int = 7,
    block_size_target: int = 16,
    block_interval_ms: float = 25.0,
    check_digest: bool = True,
    data_dir: str | None = None,
    fsync: str = "always",
    packing: str = "fifo",
    packing_lane_depth: int | None = None,
    packing_aging_bound: int = 8,
    merkleize: bool = True,
    emit_witness: bool = False,
) -> dict:
    """Boot + load + drain, synchronously; returns the result dict."""
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        block_size_target=block_size_target,
        block_interval_ms=block_interval_ms,
        executor=executor,
        data_dir=data_dir,
        fsync=fsync,
        packing=packing,
        packing_lane_depth=packing_lane_depth,
        packing_aging_bound=packing_aging_bound,
        merkleize=merkleize,
        emit_witness=emit_witness,
    )
    return asyncio.run(_run(
        transactions, clients, config, workload, seed,
        check_digest=check_digest,
    ))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=256)
    parser.add_argument(
        "--clients", type=int, default=16,
        help="closed-loop concurrency; blocks cut as soon as all "
             "in-flight transactions arrive when this matches "
             "--block-size-target",
    )
    parser.add_argument("--block-size-target", type=int, default=16)
    parser.add_argument(
        "--executor", choices=("sequential", "mtpu", "parallel", "occ"),
        default="sequential",
    )
    parser.add_argument(
        "--workload",
        choices=("transfer", "hotburst", "erc20", "mixed", "dynamic"),
        default="transfer",
    )
    parser.add_argument(
        "--packing", choices=("fifo", "conflict_aware"), default="fifo",
    )
    parser.add_argument("--packing-lane-depth", type=int, default=None)
    parser.add_argument("--packing-aging-bound", type=int, default=8)
    parser.add_argument(
        "--min-parallelism", type=float, default=None,
        help="fail when the mean packed-block parallelism is below this",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--min-tps", type=float, default=500.0,
        help="fail below this closed-loop throughput (tx/s)",
    )
    parser.add_argument(
        "--max-p99-ms", type=float, default=2000.0,
        help="fail above this p99 end-to-end latency",
    )
    args = parser.parse_args(argv)

    result = run_serve_load(
        transactions=args.transactions,
        clients=args.clients,
        executor=args.executor,
        workload=args.workload,
        seed=args.seed,
        block_size_target=args.block_size_target,
        packing=args.packing,
        packing_lane_depth=args.packing_lane_depth,
        packing_aging_bound=args.packing_aging_bound,
    )
    print(json.dumps(result, indent=2, sort_keys=True))

    load = result["load"]
    latency = LatencyReport.from_dict(load["latency"])
    failures = []
    if load["unanswered"]:
        failures.append(f"{load['unanswered']} unanswered requests")
    if result["dropped_receipts"]:
        failures.append(f"{result['dropped_receipts']} dropped receipts")
    if load["errors"]:
        failures.append(f"typed errors under closed loop: {load['errors']}")
    if not result.get("digest_match", True):
        failures.append("serve state/receipts diverged from offline")
    if not result.get("fifo_digest_match", True):
        failures.append("packed state diverged from FIFO replay")
    if args.min_parallelism is not None:
        parallelism = result["stats"]["packedParallelism"]
        if parallelism < args.min_parallelism:
            failures.append(
                f"packed parallelism {parallelism:.2f} "
                f"< floor {args.min_parallelism:.2f}"
            )
    if load["tx_per_second"] < args.min_tps:
        failures.append(
            f"throughput {load['tx_per_second']:.0f} tx/s "
            f"< floor {args.min_tps:.0f}"
        )
    if latency.p99_ms > args.max_p99_ms:
        failures.append(
            f"p99 {latency.p99_ms:.1f} ms > bound {args.max_p99_ms:.0f}"
        )
    if failures:
        print("SMOKE FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"serve-smoke ok: {load['tx_per_second']:.0f} tx/s closed-loop, "
        f"p50/p99 {latency.p50_ms:.1f}/{latency.p99_ms:.1f} ms, "
        f"{result['stats']['blocksBuilt']} blocks",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
