"""Serving-layer configuration: block cutting, admission, and SLO knobs."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ServeConfig:
    """Everything the server and its block builder need to know.

    The block-cutting policy is the inference-stack continuous-batching
    shape: a block is cut as soon as *either* ``block_size_target``
    transactions are pending, *or* the cumulative gas of the pending
    transactions reaches ``gas_target``, *or* ``block_interval_ms`` has
    elapsed since the oldest pending transaction arrived — whichever
    comes first. Small targets trade throughput for latency.
    """

    host: str = "127.0.0.1"
    port: int = 8545

    # -- role --------------------------------------------------------------
    #: "writer" runs the block builder and admits transactions;
    #: "replica" serves reads/subscriptions only (sendTransaction gets a
    #: typed READ_ONLY error) and is fed by a replication stream.
    role: str = "writer"
    #: Writer-side WAL stream listener for replicas (requires
    #: ``data_dir``; 0 binds an ephemeral port, read back after start;
    #: None: no replication stream).
    replication_port: int | None = None

    # -- block cutting ----------------------------------------------------
    #: Cut a block at this many transactions.
    block_size_target: int = 128
    #: Cut a block when pending gas limits reach this target (None: off).
    gas_target: int | None = 30_000_000
    #: Cut a block this long after the first pending transaction arrived.
    block_interval_ms: float = 50.0

    # -- admission control ------------------------------------------------
    #: Bound on admitted-but-uncommitted transactions (mempool + the
    #: block in flight). Beyond it, sendTransaction gets a typed BUSY
    #: error instead of unbounded buffering.
    max_pending: int = 4096
    #: Per-sender pending cap forwarded to the mempool (None: off).
    per_sender_cap: int | None = 1024
    #: Per-client token-bucket refill rate, requests/second (None: off).
    rate_limit: float | None = None
    #: Token-bucket burst size.
    rate_burst: int = 64

    # -- latency SLOs -----------------------------------------------------
    #: Default sendTransaction wait deadline; requests may override.
    default_deadline_ms: float = 30_000.0
    #: How long shutdown() waits for the drain before force-closing.
    drain_timeout_s: float = 30.0
    #: Drop connections silent longer than this (None: never). Dead
    #: sockets must not pin per-connection tasks forever; subscribers
    #: are exempt (their traffic is server-push by design).
    idle_timeout_s: float | None = None

    # -- retention / egress bounds ----------------------------------------
    #: Keep receipts for this many recent blocks (getReceipt and the
    #: idempotent-resubmission window). Older receipts are evicted from
    #: the server *and* the node; None retains everything (archival —
    #: memory then grows with committed transactions).
    receipt_history_blocks: int | None = 1024
    #: Drop a newHeads subscription whose transport write buffer exceeds
    #: this many bytes — a stalled subscriber must not buffer without
    #: bound.
    max_subscriber_buffer: int = 1 << 20

    # -- durability -------------------------------------------------------
    #: Chain data directory. None serves purely in memory; set, every
    #: committed block is WAL-appended (and fsynced per ``fsync``)
    #: before client futures resolve, and startup recovers whatever the
    #: directory already holds.
    data_dir: str | None = None
    #: WAL fsync policy: "always", "interval", or "never".
    fsync: str = "always"
    #: World-state snapshot cadence (blocks) — the recovery anchors.
    snapshot_interval_blocks: int = 64
    #: fsync cadence under the "interval" policy.
    fsync_interval_blocks: int = 16

    # -- authenticated state ----------------------------------------------
    #: Maintain the incremental Merkle trie and seal every committed
    #: header with its state root (serves repro_getProof /
    #: repro_getStorageProof). Off: legacy flat-digest-only operation.
    merkleize: bool = True
    #: Additionally emit a stateless-validation witness per block (rides
    #: in the WAL; lets witness-mode replicas skip full state). Requires
    #: ``merkleize``.
    emit_witness: bool = False

    # -- execution --------------------------------------------------------
    #: "sequential" (Node.execute_block), "mtpu" (spatio-temporal
    #: schedule on the MTPU simulator), "parallel" (the multicore
    #: repro.parallel backend) or "occ" (Block-STM speculative
    #: execution — no access-set discovery at propose time, conflicts
    #: found by read-set validation; dynamic-storage-key contracts run
    #: without declarations).
    executor: str = "sequential"
    #: PUs (mtpu) or worker processes (parallel).
    num_workers: int = 4

    # -- block packing ----------------------------------------------------
    #: "fifo" cuts blocks in arrival order; "conflict_aware" cuts via
    #: :meth:`Mempool.take_packed` — FAFO-style: conflicting
    #: transactions spread across blocks and lanes, receipts and state
    #: digest bit-identical to FIFO (the pack-equivalence property).
    packing: str = "fifo"
    #: Cap on one conflict chain's transactions per block (None:
    #: ``max(1, block_size_target // num_workers)``, sized so every
    #: worker gets a lane).
    packing_lane_depth: int | None = None
    #: Deferred cuts before a conflicting transaction is force-included
    #: (the anti-starvation bound).
    packing_aging_bound: int = 8
    #: Also reorder on heuristic last-seen access estimates. Off by
    #: default: undeclared contract calls then stay in FIFO order.
    packing_trust_estimates: bool = False

    def __post_init__(self) -> None:
        if self.executor not in ("sequential", "mtpu", "parallel", "occ"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.packing not in ("fifo", "conflict_aware"):
            raise ValueError(f"unknown packing {self.packing!r}")
        if (
            self.packing_lane_depth is not None
            and self.packing_lane_depth <= 0
        ):
            raise ValueError("packing_lane_depth must be positive")
        if self.packing_aging_bound < 0:
            raise ValueError("packing_aging_bound must be >= 0")
        if self.emit_witness and not self.merkleize:
            raise ValueError("emit_witness requires merkleize")
        if self.role not in ("writer", "replica"):
            raise ValueError(f"unknown role {self.role!r}")
        if self.replication_port is not None and self.data_dir is None:
            raise ValueError("replication_port requires data_dir")
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if self.block_size_target <= 0:
            raise ValueError("block_size_target must be positive")
        if self.max_pending <= 0:
            raise ValueError("max_pending must be positive")
        if self.block_interval_ms < 0:
            raise ValueError("block_interval_ms must be >= 0")
        if (
            self.receipt_history_blocks is not None
            and self.receipt_history_blocks <= 0
        ):
            raise ValueError("receipt_history_blocks must be positive")
        if self.max_subscriber_buffer <= 0:
            raise ValueError("max_subscriber_buffer must be positive")
        from ..storage.config import FSYNC_POLICIES

        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {self.fsync!r}")
        if self.snapshot_interval_blocks <= 0:
            raise ValueError("snapshot_interval_blocks must be positive")
        if self.fsync_interval_blocks <= 0:
            raise ValueError("fsync_interval_blocks must be positive")
