"""Load generation over real sockets: closed- and open-loop drivers.

The client half of the serving layer: an asyncio JSON-RPC client with
response pipelining (requests on one connection are answered out of
order; an id → future table routes them), plus a workload driver that
turns :mod:`repro.workload` traffic into ``sendTransaction`` streams.

* **closed loop** — each of N concurrent clients keeps exactly one
  request in flight, so offered load adapts to the server's speed; the
  measured quantity is end-to-end latency at the server's natural
  throughput.
* **open loop** — transactions are fired on a fixed schedule regardless
  of completions, so the server's admission control (BUSY / RATE_LIMITED
  rejects) is what's being measured.

Every request is accounted for: ``LoadResult.unanswered`` counts
requests that never got a response (the acceptance gate requires zero).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from ..chain.transaction import Transaction
from ..contracts.registry import Deployment, build_deployment
from ..obs.report import LatencyReport
from . import protocol
from .errors import BUSY, RATE_LIMITED


class RpcClientError(Exception):
    """A JSON-RPC error response, surfaced with its typed code."""

    def __init__(self, code: int, message: str, data=None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.data = data


@dataclass
class RetryPolicy:
    """Client-side resilience: when and how hard to retry.

    BUSY and RATE_LIMITED are the server *telling* the client to come
    back later — honoring its ``retry_after_s`` hint (never retrying
    sooner than asked) with jittered exponential backoff on top.
    Dropped connections are retried only for requests the caller marks
    idempotent: reads can safely repeat; a sendTransaction interrupted
    mid-flight may have committed.
    """

    max_attempts: int = 5
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, attempt: int, hint_s: float | None, rng) -> float:
        raw = min(
            self.max_delay_s,
            self.base_delay_s * (self.multiplier ** max(0, attempt)),
        )
        if hint_s is not None:
            raw = max(raw, float(hint_s))
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + rng.uniform(-self.jitter, self.jitter))


class RpcClient:
    """Pipelined newline-delimited JSON-RPC client.

    With a :class:`RetryPolicy` attached, BUSY/RATE_LIMITED responses
    are retried with backoff, and idempotent calls survive a dropped
    connection by transparently reconnecting (requires construction via
    :meth:`connect` so the endpoint is known). ``retries`` counts every
    retry attempt, separately from failures.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 retry_policy: "RetryPolicy | None" = None):
        self._reader = reader
        self._writer = writer
        self._host: str | None = None
        self._port: int | None = None
        self._next_id = 1
        self._inflight: dict[int, asyncio.Future] = {}
        self._notifications: asyncio.Queue = asyncio.Queue()
        self._pump = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        self.retry_policy = retry_policy
        self._retry_rng = random.Random(
            retry_policy.seed if retry_policy is not None else 0
        )
        #: Retries performed (BUSY/RATE_LIMITED backoffs + reconnects).
        self.retries = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        retry_policy: "RetryPolicy | None" = None,
    ) -> "RpcClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        client = cls(reader, writer, retry_policy=retry_policy)
        client._host = host
        client._port = port
        return client

    async def _reconnect(self) -> None:
        if self._host is None:
            raise ConnectionError("no endpoint to reconnect to")
        self._pump.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port, limit=protocol.MAX_LINE_BYTES
        )
        self._pump = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                obj = protocol.decode_frame(line)
                if "id" in obj and obj["id"] in self._inflight:
                    future = self._inflight.pop(obj["id"])
                    if not future.done():
                        future.set_result(obj)
                else:
                    self._notifications.put_nowait(obj)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            for future in self._inflight.values():
                if not future.done():
                    future.set_exception(ConnectionError("closed"))
            self._inflight.clear()

    async def call(self, method: str, params: dict | None = None,
                   idempotent: bool = False):
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return await self._call_once(method, params)
            except RpcClientError as err:
                if (
                    policy is None
                    or err.code not in (BUSY, RATE_LIMITED)
                    or attempt >= policy.max_attempts
                ):
                    raise
                hint = None
                if isinstance(err.data, dict):
                    hint = err.data.get("retry_after_s")
                delay = policy.delay(attempt, hint, self._retry_rng)
            except ConnectionError:
                if (
                    policy is None
                    or not idempotent
                    or self._host is None
                    or attempt >= policy.max_attempts
                ):
                    raise
                delay = policy.delay(attempt, None, self._retry_rng)
            attempt += 1
            self.retries += 1
            await asyncio.sleep(delay)
            if self._writer.is_closing() or self._pump.done():
                try:
                    await self._reconnect()
                except OSError:
                    continue  # endpoint still down: next backoff round

    async def _call_once(self, method: str, params: dict | None):
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_running_loop().create_future()
        self._inflight[request_id] = future
        try:
            self._writer.write(protocol.encode_frame(
                protocol.request(method, params, request_id)
            ))
            await self._writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            self._inflight.pop(request_id, None)
            raise ConnectionError(str(exc)) from None
        reply = await future
        if "error" in reply:
            err = reply["error"]
            raise RpcClientError(
                err.get("code", 0), err.get("message", ""), err.get("data")
            )
        return reply.get("result")

    async def next_notification(self, timeout: float | None = None):
        if timeout is None:
            return await self._notifications.get()
        return await asyncio.wait_for(
            self._notifications.get(), timeout=timeout
        )

    async def close(self) -> None:
        self._pump.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass


# -- workload --------------------------------------------------------------
def make_transactions(
    deployment: Deployment,
    count: int,
    workload: str = "transfer",
    seed: int = 0,
) -> list[Transaction]:
    """*count* unique transactions valid against *deployment*'s genesis.

    ``transfer`` is plain value movement between funded accounts (the
    cheapest traffic, for throughput ceilings); ``hotburst`` is the
    conflict-heavy packing workload — bursts of transfers all crediting
    one hot account, separated by independent transfers, so FIFO blocks
    carry long serial conflict chains that conflict-aware packing
    spreads across lanes; ``erc20`` and ``mixed`` route through
    :class:`~repro.workload.actions.ActionLibrary` for contract-heavy
    traffic. Per-sender nonces make every hash unique.
    """
    import random

    from ..workload.actions import ActionLibrary
    from ..workload.zipf import ZipfSampler
    from ..contracts.registry import TOP8_NAMES

    rng = random.Random(seed)
    accounts = deployment.accounts
    nonces: dict[int, int] = {}

    def next_nonce(sender: int) -> int:
        nonces[sender] = nonces.get(sender, 0) + 1
        return nonces[sender]

    txs: list[Transaction] = []
    if workload == "transfer":
        for i in range(count):
            sender = accounts[i % len(accounts)]
            recipient = accounts[(i * 7 + 3) % len(accounts)]
            txs.append(Transaction(
                sender=sender, to=recipient,
                nonce=next_nonce(sender),
                value=rng.randint(1, 1000), gas_limit=50_000,
            ))
        return txs

    if workload == "hotburst":
        # Locally bursty, globally sustainable: 16-transfer bursts all
        # crediting one hot account (alternating between two), separated
        # by 48 independent transfers. A FIFO cut of ~32 carries one
        # 16-long serial chain; a packed cut caps chains at lane_depth
        # and backfills from the independent tail.
        burst, gap = 16, 48
        hot = [0xB0057_0000 + k for k in range(2)]
        burst_index = 0
        for i in range(count):
            sender = accounts[i % len(accounts)]
            phase = i % (burst + gap)
            if phase == 0:
                burst_index += 1
            if phase < burst:
                recipient = hot[burst_index % len(hot)]
            else:
                recipient = 0xC01D_0000 + i
            txs.append(Transaction(
                sender=sender, to=recipient,
                nonce=next_nonce(sender),
                value=rng.randint(1, 1000), gas_limit=50_000,
            ))
        return txs

    library = ActionLibrary(deployment, rng)
    if workload == "dynamic":
        # Dynamic-storage-key traffic (path swaps, delegatecall proxy
        # swaps, batch airdrops): no declarable access sets — pair with
        # ``--executor occ``, which needs none.
        dynamic_names = ["AirdropDistributor", "AirdropDistributor",
                         "PathRouter", "RouterProxy"]
        for i in range(count):
            sender = accounts[i % len(accounts)]
            call = library.plan(dynamic_names[i % len(dynamic_names)],
                                sender=sender)
            tx = library.to_transaction(call)
            txs.append(Transaction(
                sender=tx.sender, to=tx.to, nonce=next_nonce(tx.sender),
                gas_limit=tx.gas_limit, gas_price=tx.gas_price,
                value=tx.value, data=tx.data,
            ))
        return txs

    names = list(TOP8_NAMES)
    sampler = ZipfSampler(len(names), 1.0)
    for i in range(count):
        if workload == "mixed" and rng.random() < 0.4:
            sender = accounts[i % len(accounts)]
            txs.append(Transaction(
                sender=sender, to=rng.choice(accounts),
                nonce=next_nonce(sender),
                value=rng.randint(1, 1000), gas_limit=50_000,
            ))
            continue
        call = library.plan(names[sampler.sample(rng)])
        tx = library.to_transaction(call)
        # Re-stamp with a per-sender nonce so repeated identical calls
        # still hash uniquely on the wire.
        txs.append(Transaction(
            sender=tx.sender, to=tx.to, nonce=next_nonce(tx.sender),
            gas_limit=tx.gas_limit, gas_price=tx.gas_price,
            value=tx.value, data=tx.data,
        ))
    return txs


# -- results ---------------------------------------------------------------
@dataclass
class LoadResult:
    """What one load-generation run measured."""

    mode: str
    requested: int = 0
    ok: int = 0
    #: JSON-RPC error code -> count (BUSY, RATE_LIMITED, ...).
    errors: dict = field(default_factory=dict)
    #: Requests that never received any response.
    unanswered: int = 0
    #: Retry attempts (client-side backoff/reconnects) — counted
    #: separately from failures: a request that succeeded on its third
    #: try is one ``ok`` and two ``retries``.
    retries: int = 0
    wall_seconds: float = 0.0
    latency: LatencyReport | None = None

    @property
    def tx_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.ok / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requested": self.requested,
            "ok": self.ok,
            "errors": dict(self.errors),
            "unanswered": self.unanswered,
            "retries": self.retries,
            "wall_seconds": self.wall_seconds,
            "tx_per_second": self.tx_per_second,
            "latency": (
                self.latency.to_dict() if self.latency is not None else None
            ),
        }


class LoadGenerator:
    """Drives a running server with generated traffic."""

    def __init__(
        self,
        host: str,
        port: int,
        deployment: Deployment | None = None,
        num_accounts: int = 64,
    ) -> None:
        self.host = host
        self.port = port
        #: Must mirror the server's genesis; `build_deployment` is
        #: deterministic, so both sides just build the same one.
        self.deployment = deployment or build_deployment(
            num_accounts=num_accounts
        )

    async def run_closed_loop(
        self,
        total: int,
        clients: int = 4,
        workload: str = "transfer",
        seed: int = 0,
        deadline_ms: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> LoadResult:
        """N clients, one request in flight each, until *total* sent."""
        txs = make_transactions(
            self.deployment, total, workload=workload, seed=seed
        )
        queue: asyncio.Queue = asyncio.Queue()
        for tx in txs:
            queue.put_nowait(tx)
        result = LoadResult(mode="closed", requested=total)
        samples: list[float] = []

        async def worker() -> None:
            client = await RpcClient.connect(
                self.host, self.port, retry_policy=retry_policy
            )
            try:
                while True:
                    try:
                        tx = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    params = {"tx": protocol.tx_to_wire(tx)}
                    if deadline_ms is not None:
                        params["deadline_ms"] = deadline_ms
                    started = time.monotonic()
                    try:
                        await client.call(
                            "repro_sendTransaction", params
                        )
                    except RpcClientError as err:
                        result.errors[err.code] = (
                            result.errors.get(err.code, 0) + 1
                        )
                    except ConnectionError:
                        result.unanswered += 1
                    else:
                        result.ok += 1
                        samples.append(
                            (time.monotonic() - started) * 1000.0
                        )
            finally:
                result.retries += client.retries
                await client.close()

        started = time.monotonic()
        await asyncio.gather(*(worker() for _ in range(clients)))
        result.wall_seconds = time.monotonic() - started
        result.latency = LatencyReport.from_samples(
            f"closed-loop x{clients}", samples
        )
        return result

    async def run_open_loop(
        self,
        rate: float,
        duration_s: float,
        clients: int = 4,
        workload: str = "transfer",
        seed: int = 0,
        deadline_ms: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> LoadResult:
        """Fire at *rate* tx/s for *duration_s*, regardless of replies."""
        total = max(1, int(rate * duration_s))
        txs = make_transactions(
            self.deployment, total, workload=workload, seed=seed
        )
        result = LoadResult(mode="open", requested=total)
        samples: list[float] = []
        connections = [
            await RpcClient.connect(
                self.host, self.port, retry_policy=retry_policy
            )
            for _ in range(clients)
        ]
        interval = 1.0 / rate if rate > 0 else 0.0

        async def fire(client: RpcClient, tx) -> None:
            params = {"tx": protocol.tx_to_wire(tx)}
            if deadline_ms is not None:
                params["deadline_ms"] = deadline_ms
            started = time.monotonic()
            try:
                await client.call("repro_sendTransaction", params)
            except RpcClientError as err:
                result.errors[err.code] = (
                    result.errors.get(err.code, 0) + 1
                )
            except ConnectionError:
                result.unanswered += 1
            else:
                result.ok += 1
                samples.append((time.monotonic() - started) * 1000.0)

        started = time.monotonic()
        tasks = []
        try:
            for index, tx in enumerate(txs):
                target = started + index * interval
                delay = target - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(asyncio.ensure_future(
                    fire(connections[index % clients], tx)
                ))
            await asyncio.gather(*tasks)
        finally:
            for client in connections:
                result.retries += client.retries
                await client.close()
        result.wall_seconds = time.monotonic() - started
        result.latency = LatencyReport.from_samples(
            f"open-loop {rate:g}tx/s", samples
        )
        return result
