"""Typed JSON-RPC error codes for the serving layer.

Standard JSON-RPC 2.0 codes cover protocol failures; the ``-320xx``
range carries the node's *operational* refusals, each of which a client
is expected to handle distinctly: back off on ``BUSY``/``RATE_LIMITED``,
give up on ``DEADLINE``, re-resolve the endpoint on ``SHUTTING_DOWN``
and fix the transaction on ``ADMISSION``.
"""

from __future__ import annotations

# -- standard JSON-RPC 2.0 codes -------------------------------------------
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603

# -- operational codes (node refusals, all retriable-or-actionable) --------
#: Ingress queue at capacity: admission refused instead of buffering
#: unboundedly. Retry after backoff.
BUSY = -32001
#: The client exceeded its token-bucket rate allowance.
RATE_LIMITED = -32002
#: The transaction failed mempool admission (``data.reason`` names the
#: :class:`~repro.chain.mempool.AdmissionError` subclass).
ADMISSION_REJECTED = -32003
#: The request's deadline elapsed before its receipt committed. The
#: transaction may still commit; poll ``repro_getReceipt``.
DEADLINE_EXCEEDED = -32004
#: The server is draining and no longer admits transactions.
SHUTTING_DOWN = -32005
#: Block execution failed even after the sequential fallback. The
#: transaction was dropped without committing; it is safe to resubmit.
EXECUTION_FAILED = -32006
#: This node is a read replica; it serves reads and subscriptions but
#: never admits transactions. Send writes to the writer.
READ_ONLY = -32007
#: A Merkle proof cannot be served: the node is not Merkleizing, or the
#: account/slot is absent from the trie (only inclusion is provable —
#: ``data.reason`` distinguishes the cases).
PROOF_UNAVAILABLE = -32008


class RpcError(Exception):
    """A request failure that maps onto a JSON-RPC error object."""

    def __init__(self, code: int, message: str, data: dict | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = data

    def to_obj(self) -> dict:
        obj: dict = {"code": self.code, "message": self.message}
        if self.data is not None:
            obj["data"] = self.data
        return obj


class BusyError(RpcError):
    def __init__(self, depth: int, limit: int):
        super().__init__(
            BUSY, "ingress queue full",
            {"pending": depth, "max_pending": limit},
        )


class RateLimitedError(RpcError):
    def __init__(self, retry_after: float):
        super().__init__(
            RATE_LIMITED, "rate limit exceeded",
            {"retry_after_s": round(retry_after, 4)},
        )


class DeadlineExceededError(RpcError):
    def __init__(self, deadline_ms: float):
        super().__init__(
            DEADLINE_EXCEEDED, "deadline exceeded",
            {"deadline_ms": deadline_ms},
        )


class ShuttingDownError(RpcError):
    def __init__(self):
        super().__init__(SHUTTING_DOWN, "server is draining")


class ReadOnlyError(RpcError):
    def __init__(self):
        super().__init__(
            READ_ONLY, "node is a read replica; writes go to the writer"
        )


class ExecutionFailedError(RpcError):
    def __init__(self, detail: str):
        super().__init__(
            EXECUTION_FAILED, "block execution failed",
            {"detail": detail},
        )
