"""Wire protocol: newline-delimited JSON-RPC 2.0 over a stream pair.

One request or response per line, UTF-8 JSON, ``\\n`` terminated — the
framing asyncio streams (and netcat) handle natively. Transactions cross
the wire as hex-encoded RLP (the chain's canonical encoding), receipts
as plain JSON objects; nothing here depends on asyncio so the codec is
reusable from synchronous clients and tests.
"""

from __future__ import annotations

import json

from ..chain.receipt import LogEntry, Receipt
from ..chain.transaction import Transaction
from .errors import INVALID_REQUEST, PARSE_ERROR, RpcError

#: Largest accepted request line; longer lines are a protocol error
#: (bounds per-connection buffering).
MAX_LINE_BYTES = 1 << 20


def encode_frame(obj: dict) -> bytes:
    """One JSON object as a newline-terminated wire frame."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes) -> dict:
    """Parse one wire frame; raises :class:`RpcError` on bad input."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        raise RpcError(PARSE_ERROR, "invalid JSON") from None
    if not isinstance(obj, dict):
        raise RpcError(INVALID_REQUEST, "request must be an object")
    return obj


def request(method: str, params: dict | None = None,
            request_id: int | None = None) -> dict:
    obj: dict = {"jsonrpc": "2.0", "method": method}
    if params is not None:
        obj["params"] = params
    if request_id is not None:
        obj["id"] = request_id
    return obj


def response(request_id, result) -> dict:
    return {"jsonrpc": "2.0", "id": request_id, "result": result}


def error_response(request_id, err: RpcError) -> dict:
    return {"jsonrpc": "2.0", "id": request_id, "error": err.to_obj()}


def notification(method: str, params: dict) -> dict:
    """A server-push message (no id, no reply expected)."""
    return {"jsonrpc": "2.0", "method": method, "params": params}


# -- payload codecs --------------------------------------------------------
def tx_to_wire(tx: Transaction) -> str:
    return tx.to_rlp().hex()


def tx_from_wire(blob_hex: str) -> Transaction:
    try:
        return Transaction.from_rlp(bytes.fromhex(blob_hex))
    except Exception as exc:
        raise RpcError(
            INVALID_REQUEST, f"undecodable transaction: {exc}"
        ) from None


def receipt_to_wire(receipt: Receipt, block_height: int | None = None,
                    tx_index: int | None = None) -> dict:
    obj = {
        "txHash": receipt.tx_hash.hex(),
        "success": receipt.success,
        "gasUsed": receipt.gas_used,
        "output": receipt.output.hex(),
        "logs": [
            {
                "address": log.address,
                "topics": list(log.topics),
                "data": log.data.hex(),
            }
            for log in receipt.logs
        ],
        "contractAddress": receipt.contract_address,
        "error": receipt.error,
    }
    if block_height is not None:
        obj["blockHeight"] = block_height
    if tx_index is not None:
        obj["txIndex"] = tx_index
    return obj


def receipt_from_wire(obj: dict) -> Receipt:
    return Receipt(
        tx_hash=bytes.fromhex(obj["txHash"]),
        success=obj["success"],
        gas_used=obj["gasUsed"],
        logs=tuple(
            LogEntry(
                address=log["address"],
                topics=tuple(log["topics"]),
                data=bytes.fromhex(log["data"]),
            )
            for log in obj["logs"]
        ),
        output=bytes.fromhex(obj["output"]),
        contract_address=obj.get("contractAddress"),
        error=obj.get("error", ""),
    )


def header_to_wire(block) -> dict:
    """The ``newHeads`` notification payload for a committed block.

    ``stateRoot`` is the sealed Merkle root ("" from a non-Merkleizing
    writer); the packed-lane stats describe the conflict-aware cut when
    the block was packed (absent for FIFO blocks).
    """
    header = block.header
    obj = {
        "height": header.height,
        "hash": block.hash().hex(),
        "parentHash": header.parent_hash.hex(),
        "stateRoot": header.state_root.hex(),
        "timestamp": header.timestamp,
        "gasLimit": header.gas_limit,
        "transactions": len(block.transactions),
    }
    if block.packed_lanes is not None:
        obj["packedLanes"] = len(block.packed_lanes)
        obj["packedParallelism"] = block.packed_parallelism
    return obj
