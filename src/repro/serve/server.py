"""The asyncio JSON-RPC node front-end.

Newline-delimited JSON-RPC 2.0 over plain TCP (stdlib asyncio streams,
no dependencies). Methods:

* ``repro_sendTransaction`` — admit a hex-RLP transaction; with
  ``wait`` (default) the response is the committed receipt, otherwise
  the transaction hash. ``deadline_ms`` bounds the wait.
* ``repro_getReceipt`` — look a committed receipt up by hash.
* ``repro_getBalance`` — read an account balance.
* ``repro_subscribe`` — ``newHeads`` push notifications per block.
* ``repro_stats`` — server counters (loadgen/smoke consume this).

Production behaviors are first-class: admission is bounded
(``max_pending`` → typed BUSY errors), per-client token buckets police
request rates, deadlines cancel abandoned waits, and shutdown drains the
block builder before the listener closes. Every refusal is a *typed*
error — a saturated server answers quickly and cheaply; it never hangs a
client or buffers without bound.
"""

from __future__ import annotations

import asyncio
import contextlib
import time

from ..chain.mempool import AdmissionError
from ..chain.node import Node
from ..obs import get_registry
from ..storage import codec as storage_codec
from . import protocol
from .batcher import BlockBuilder
from .config import ServeConfig
from ..trie import encode_proof
from .errors import (
    ADMISSION_REJECTED,
    INTERNAL_ERROR,
    INVALID_PARAMS,
    METHOD_NOT_FOUND,
    PROOF_UNAVAILABLE,
    BusyError,
    DeadlineExceededError,
    RateLimitedError,
    ReadOnlyError,
    RpcError,
    ShuttingDownError,
)
from .ratelimit import RateLimiter


class RpcServer:
    """One node's serving front-end."""

    def __init__(
        self,
        node: Node | None = None,
        config: ServeConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.config = config or ServeConfig()
        self._fault_injector = fault_injector
        self.node = node or Node(
            per_sender_cap=self.config.per_sender_cap,
            merkleize=self.config.merkleize,
            emit_witness=self.config.emit_witness,
        )
        if self.config.per_sender_cap is not None:
            self.node.mempool.per_sender_cap = self.config.per_sender_cap
        #: :class:`repro.storage.RecoveryResult` when startup recovered
        #: an existing data directory, else None.
        self.recovery = None
        if self.config.data_dir is not None:
            from ..storage import StorageConfig, attach

            self.recovery = attach(
                self.node,
                self.config.data_dir,
                StorageConfig(
                    fsync=self.config.fsync,
                    fsync_interval_blocks=self.config.fsync_interval_blocks,
                    snapshot_interval_blocks=(
                        self.config.snapshot_interval_blocks
                    ),
                ),
                receipt_history_blocks=self.config.receipt_history_blocks,
                fault_injector=fault_injector,
            )
        self.builder = BlockBuilder(
            self.node, self.config, fault_injector=fault_injector
        )
        if self.node.chain:
            # Restarted on a recovered chain: getReceipt and idempotent
            # resubmission must keep working for already-acked hashes.
            self.builder.seed_committed()
        self.limiter = (
            RateLimiter(self.config.rate_limit, self.config.rate_burst)
            if self.config.rate_limit is not None
            else None
        )
        #: The writer-side :class:`repro.replication.WalStreamer` when
        #: ``config.replication_port`` is set (started with the server).
        self.streamer = None
        #: The :class:`repro.replication.Replica` feeding a replica-role
        #: server, attached by whoever wires the two together; the
        #: health RPC and stats report through it when present.
        self.replication = None
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        #: Per-connection last-activity clock readings (idle reaping).
        self._last_activity: dict[asyncio.StreamWriter, float] = {}
        #: Injectable for fake-clock idle-timeout tests.
        self._clock = time.monotonic
        self._started_at = time.monotonic()
        self._reaper: asyncio.Task | None = None
        #: In-flight request tasks (replies must flush before close).
        self._request_tasks: set[asyncio.Task] = set()
        #: subscription id -> (writer, topic).
        self._subscriptions: dict[int, asyncio.StreamWriter] = {}
        self._next_subscription = 1
        self._shutting_down = False
        self.builder.on_new_head.append(self._publish_new_head)
        # -- counters the stats endpoint exposes -------------------------
        self.requests_served = 0
        self.busy_rejects = 0
        self.rate_limit_rejects = 0
        self.deadline_misses = 0
        self.admission_rejects = 0
        self.subscription_drops = 0
        self.health_checks = 0
        self.idle_drops = 0
        self.read_only_rejects = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the block builder.

        A replica-role server starts no builder loop (blocks arrive
        over the replication stream, not from a mempool); a writer with
        ``replication_port`` set additionally starts the WAL streamer
        and wires it to the builder's commit callback.
        """
        self._started_at = time.monotonic()
        if self.config.role == "writer":
            self.builder.start()
        if (
            self.config.role == "writer"
            and self.config.replication_port is not None
        ):
            from ..replication import ReplicationConfig, WalStreamer

            self.streamer = WalStreamer(
                self.config.data_dir,
                ReplicationConfig(
                    host=self.config.host,
                    stream_port=self.config.replication_port,
                ),
                fault_injector=self._fault_injector,
            )
            await self.streamer.start()
            self.config.replication_port = (
                self.streamer.config.stream_port
            )
            self.builder.on_new_head.append(self.streamer.notify_commit)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        # Ephemeral-port runs (tests, smoke) read the bound port back.
        self.config.port = self._server.sockets[0].getsockname()[1]
        if self.config.idle_timeout_s is not None:
            self._reaper = asyncio.get_running_loop().create_task(
                self._reap_idle_forever(), name="idle-reaper"
            )

    async def shutdown(self) -> None:
        """Graceful drain-then-stop.

        New transactions are refused with SHUTTING_DOWN immediately; the
        block builder finishes everything already admitted; then the
        listener and all connections close.
        """
        self._shutting_down = True
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
            self._reaper = None
        if self.streamer is not None:
            await self.streamer.stop()
        await self.builder.drain_and_stop()
        if self._request_tasks:
            # The drain resolved every pending receipt future; give the
            # per-request tasks a bounded chance to write their replies
            # before the transports close underneath them.
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(
                        *self._request_tasks, return_exceptions=True
                    ),
                    timeout=self.config.drain_timeout_s,
                )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._connections.clear()
        self._subscriptions.clear()
        if self.node.store is not None:
            # Anything still pooled (the drain timed out, or wait=False
            # admissions never cut) would silently vanish with the
            # process — spill it so the next start re-admits it.
            with self.builder.state_lock:
                leftover = self.node.mempool.spill_entries()
            if leftover:
                self.node.store.spill_mempool(leftover)
            self.node.store.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling -----------------------------------------------
    def _client_id(self, writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self._last_activity[writer] = self._clock()
        lock = asyncio.Lock()  # serializes interleaved writes
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break  # oversized frame: drop the connection
                if not line:
                    break
                self._last_activity[writer] = self._clock()
                if line.strip() == b"":
                    continue
                # Handle each request in its own task so one slow
                # sendTransaction wait never blocks the next request on
                # the same connection (pipelining).
                task = asyncio.ensure_future(
                    self._handle_line(line, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            self._drop_connection(writer)

    def _drop_connection(self, writer: asyncio.StreamWriter) -> None:
        self._connections.discard(writer)
        self._last_activity.pop(writer, None)
        for sub_id, sub_writer in list(self._subscriptions.items()):
            if sub_writer is writer:
                del self._subscriptions[sub_id]
        with contextlib.suppress(Exception):
            writer.close()

    # -- idle reaping --------------------------------------------------------
    async def _reap_idle_forever(self) -> None:
        interval = max(0.01, self.config.idle_timeout_s / 4.0)
        while True:
            await asyncio.sleep(interval)
            self._reap_idle()

    def _reap_idle(self) -> int:
        """Drop every non-subscriber silent beyond ``idle_timeout_s``.

        Factored out of the reaper task (and driven by the injectable
        ``self._clock``) so tests can advance a fake clock and call this
        directly instead of sleeping.
        """
        if self.config.idle_timeout_s is None:
            return 0
        cutoff = self._clock() - self.config.idle_timeout_s
        subscribed = set(self._subscriptions.values())
        reaped = 0
        for writer, last in list(self._last_activity.items()):
            if writer in subscribed:
                continue  # push traffic is the point; never reap
            if last < cutoff:
                self._drop_connection(writer)
                reaped += 1
        if reaped:
            self.idle_drops += reaped
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.idle_drops").inc(reaped)
        return reaped

    async def _send(
        self, writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: dict
    ) -> None:
        async with lock:
            writer.write(protocol.encode_frame(obj))
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        request_id = None
        try:
            obj = protocol.decode_frame(line)
            request_id = obj.get("id")
            result = await self._dispatch(obj, writer)
            reply = protocol.response(request_id, result)
        except RpcError as err:
            reply = protocol.error_response(request_id, err)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never leak a traceback to the wire
            reply = protocol.error_response(
                request_id, RpcError(INTERNAL_ERROR, repr(exc))
            )
        self.requests_served += 1
        await self._send(writer, lock, reply)

    # -- dispatch ----------------------------------------------------------
    async def _dispatch(self, obj: dict, writer) -> object:
        method = obj.get("method")
        params = obj.get("params") or {}
        if not isinstance(params, dict):
            raise RpcError(INVALID_PARAMS, "params must be an object")
        if method == "repro_sendTransaction":
            return await self._send_transaction(params, writer)
        if method == "repro_getReceipt":
            return self._get_receipt(params)
        if method == "repro_getBalance":
            return self._get_balance(params)
        if method == "repro_getProof":
            return self._get_proof(params)
        if method == "repro_getStorageProof":
            return self._get_storage_proof(params)
        if method == "repro_getBlock":
            return self._get_block(params)
        if method == "repro_subscribe":
            return self._subscribe(params, writer)
        if method == "repro_health":
            return self.health()
        if method == "repro_stats":
            return self.stats()
        raise RpcError(METHOD_NOT_FOUND, f"unknown method {method!r}")

    async def _send_transaction(self, params: dict, writer) -> object:
        if self.config.role != "writer":
            self.read_only_rejects += 1
            raise ReadOnlyError()
        if self._shutting_down or self.builder.draining:
            raise ShuttingDownError()
        if self.limiter is not None:
            client = self._client_id(writer)
            if not self.limiter.try_acquire(client):
                self.rate_limit_rejects += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "serve.rejected", reason="rate_limited"
                    ).inc()
                raise RateLimitedError(self.limiter.retry_after(client))
        tx = protocol.tx_from_wire(params.get("tx", ""))
        wait = params.get("wait", True)
        deadline_ms = params.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        tx_hash = tx.hash()
        # Idempotent resubmission: a hash that already committed must
        # never re-execute — serve its receipt instead.
        committed = self.builder.committed.get(tx_hash)
        if committed is not None:
            return protocol.receipt_to_wire(
                committed.receipt,
                committed.block_height,
                committed.tx_index,
            )
        # A retry of an in-flight hash — pooled or mid-block, e.g. after
        # a DEADLINE_EXCEEDED — attaches to the existing wait. It must
        # never be re-admitted: that would orphan the original waiter's
        # future and execute the transaction a second time.
        future = self.builder.future_for(tx_hash)
        if future is not None:
            if not wait:
                self.admission_rejects += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter(
                        "serve.rejected",
                        reason="DuplicateTransactionError",
                    ).inc()
                raise RpcError(
                    ADMISSION_REJECTED,
                    f"transaction {tx_hash.hex()[:16]}… already pending",
                    {"reason": "DuplicateTransactionError"},
                )
            return await self._await_receipt(future, deadline_ms)
        if self.builder.depth >= self.config.max_pending:
            self.busy_rejects += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.rejected", reason="busy").inc()
            raise BusyError(self.builder.depth, self.config.max_pending)
        try:
            future = self.builder.submit(tx)
        except AdmissionError as err:
            # Includes mempool-level duplicates (a hash heard via gossip
            # but never submitted over RPC has no pending future).
            self.admission_rejects += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "serve.rejected", reason=type(err).__name__
                ).inc()
            raise RpcError(
                ADMISSION_REJECTED, str(err),
                {"reason": type(err).__name__},
            ) from None
        if not wait:
            return {"txHash": tx_hash.hex()}
        return await self._await_receipt(future, deadline_ms)

    async def _await_receipt(
        self, future: asyncio.Future, deadline_ms: float
    ) -> object:
        try:
            committed = await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline_ms / 1000.0
            )
        except asyncio.TimeoutError:
            # The transaction stays admitted (it may still commit and
            # remains fetchable via getReceipt); only the wait ends.
            self.deadline_misses += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.deadline_misses").inc()
            raise DeadlineExceededError(deadline_ms) from None
        except asyncio.CancelledError:
            raise
        return protocol.receipt_to_wire(
            committed.receipt, committed.block_height, committed.tx_index
        )

    def _get_receipt(self, params: dict) -> object:
        tx_hash_hex = params.get("txHash")
        if not isinstance(tx_hash_hex, str):
            raise RpcError(INVALID_PARAMS, "txHash (hex string) required")
        try:
            tx_hash = bytes.fromhex(tx_hash_hex)
        except ValueError:
            raise RpcError(INVALID_PARAMS, "txHash is not hex") from None
        committed = self.builder.committed.get(tx_hash)
        if committed is None:
            return None
        return protocol.receipt_to_wire(
            committed.receipt, committed.block_height, committed.tx_index
        )

    def _get_balance(self, params: dict) -> int:
        address = params.get("address")
        if isinstance(address, str):
            try:
                address = int(address, 16)
            except ValueError:
                raise RpcError(
                    INVALID_PARAMS, "address is not hex"
                ) from None
        if not isinstance(address, int):
            raise RpcError(INVALID_PARAMS, "address required")
        # The lock keeps this read consistent: block execution mutates
        # the same state (and its access-tracking attribute) on a worker
        # thread, so an unguarded read could observe a mid-transaction
        # balance.
        with self.builder.state_lock, self.node.state.untracked():
            return self.node.state.get_balance(address)

    @staticmethod
    def _parse_address(params: dict, key: str = "address") -> int:
        value = params.get(key)
        if isinstance(value, str):
            try:
                value = int(value, 16)
            except ValueError:
                raise RpcError(
                    INVALID_PARAMS, f"{key} is not hex"
                ) from None
        if not isinstance(value, int) or value < 0:
            raise RpcError(INVALID_PARAMS, f"{key} required")
        return value

    def _require_trie(self):
        trie = self.node.trie
        if trie is None:
            raise RpcError(
                PROOF_UNAVAILABLE,
                "node is not Merkleizing (started with merkleize off)",
                {"reason": "not_merkleizing"},
            )
        return trie

    def _observe_proof(self, blob: bytes) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.histogram("trie.proof_bytes").observe(len(blob))

    def _get_proof(self, params: dict) -> dict:
        """Inclusion proof binding an account to the current state root.

        Absence is not provable (no exclusion proofs); an account not in
        the trie gets a typed PROOF_UNAVAILABLE error instead.
        """
        address = self._parse_address(params)
        trie = self._require_trie()
        with self.builder.state_lock:
            try:
                proof = trie.account_proof(address)
            except KeyError:
                raise RpcError(
                    PROOF_UNAVAILABLE,
                    f"account {address:#x} is not in the trie",
                    {"reason": "absent"},
                ) from None
            state_root = trie.root()
        blob = encode_proof(proof)
        self._observe_proof(blob)
        return {
            "address": f"{address:x}",
            "stateRoot": state_root.hex(),
            "balance": proof.balance,
            "nonce": proof.nonce,
            "proof": blob.hex(),
        }

    def _get_storage_proof(self, params: dict) -> dict:
        """Inclusion proof binding one storage slot to the state root."""
        address = self._parse_address(params)
        slot = self._parse_address(params, key="slot")
        trie = self._require_trie()
        with self.builder.state_lock:
            with self.node.state.untracked():
                value = self.node.state.get_storage(address, slot)
            try:
                proof = trie.storage_proof(address, slot, value)
            except (KeyError, ValueError):
                raise RpcError(
                    PROOF_UNAVAILABLE,
                    f"slot {slot:#x} of {address:#x} is empty or the "
                    "account is not in the trie",
                    {"reason": "absent"},
                ) from None
            state_root = trie.root()
        blob = encode_proof(proof)
        self._observe_proof(blob)
        return {
            "address": f"{address:x}",
            "slot": f"{slot:x}",
            "value": value,
            "stateRoot": state_root.hex(),
            "proof": blob.hex(),
        }

    def _get_block(self, params: dict) -> object:
        """Header fields of one committed block (None when unknown).

        ``height`` is an integer or ``"latest"``. Replicas answer from
        their replicated chain, which may start past genesis after a
        snapshot resync — heights below the anchor return None.
        """
        height = params.get("height", "latest")
        with self.builder.state_lock:
            chain = self.node.chain
            if height == "latest":
                block = chain[-1] if chain else None
            else:
                if not isinstance(height, int) or height < 0:
                    raise RpcError(
                        INVALID_PARAMS,
                        'height must be an integer or "latest"',
                    )
                block = None
                if chain:
                    index = height - chain[0].header.height
                    if 0 <= index < len(chain):
                        block = chain[index]
            if block is None:
                return None
            return protocol.header_to_wire(block)

    def _subscribe(self, params: dict, writer) -> dict:
        topic = params.get("topic", "newHeads")
        if topic != "newHeads":
            raise RpcError(INVALID_PARAMS, f"unknown topic {topic!r}")
        sub_id = self._next_subscription
        self._next_subscription += 1
        self._subscriptions[sub_id] = writer
        return {"subscription": sub_id}

    def _publish_new_head(self, block, receipts) -> None:
        if not self._subscriptions:
            return
        frame = protocol.encode_frame(
            protocol.notification(
                "repro_subscription",
                {"topic": "newHeads",
                 "result": protocol.header_to_wire(block)},
            )
        )
        for sub_id, writer in list(self._subscriptions.items()):
            if writer.is_closing():
                del self._subscriptions[sub_id]
                continue
            # Fire-and-forget, but bounded: a subscriber that stops
            # reading would otherwise grow its transport write buffer
            # with every block, forever. Past the cap, the subscription
            # is dropped rather than buffered.
            transport = writer.transport
            if (
                transport is not None
                and transport.get_write_buffer_size()
                > self.config.max_subscriber_buffer
            ):
                del self._subscriptions[sub_id]
                self.subscription_drops += 1
                continue
            writer.write(frame)

    # -- health ------------------------------------------------------------
    def health(self) -> dict:
        """Liveness + identity: what the read proxy routes on.

        The digest is the same commitment the WAL stamps carry, so two
        healthy nodes at the same height answering with the same digest
        are serving bit-identical universes.
        """
        self.health_checks += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.health_checks").inc()
        with self.builder.state_lock:
            digest = storage_codec.state_digest_bytes(self.node.state)
        height = (
            self.replication.height
            if self.replication is not None
            else len(self.node.chain)
        )
        out = {
            "role": self.config.role,
            "height": height,
            "stateDigest": digest.hex(),
            "stateRoot": self.node.state_root.hex(),
            "mempoolDepth": len(self.node.mempool),
            "queueDepth": self.builder.depth,
            "uptimeSeconds": round(
                time.monotonic() - self._started_at, 3
            ),
            "shuttingDown": self._shutting_down,
        }
        if self.replication is not None:
            out["replication"] = self.replication.stats()
        if self.streamer is not None:
            out["streaming"] = self.streamer.stats()
        return out

    # -- stats -------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "role": self.config.role,
            "requestsServed": self.requests_served,
            "blocksBuilt": self.builder.blocks_built,
            "txsCommitted": self.builder.txs_committed,
            "queueDepth": self.builder.depth,
            "busyRejects": self.busy_rejects,
            "rateLimitRejects": self.rate_limit_rejects,
            "deadlineMisses": self.deadline_misses,
            "admissionRejects": self.admission_rejects,
            "subscriptionDrops": self.subscription_drops,
            "healthChecks": self.health_checks,
            "idleDrops": self.idle_drops,
            "readOnlyRejects": self.read_only_rejects,
            "sequentialFallbacks": self.builder.sequential_fallbacks,
            "executionFailures": self.builder.execution_failures,
            "packing": self.config.packing,
            "packedBlocks": self.builder.packed_blocks,
            "packedDeferred": self.builder.packed_deferred_total,
            "packedParallelism": (
                self.builder.packed_parallelism_sum
                / self.builder.packed_blocks
                if self.builder.packed_blocks
                else 0.0
            ),
            "chainHeight": (
                self.replication.height
                if self.replication is not None
                else len(self.node.chain)
            ),
            "shuttingDown": self._shutting_down,
            "durable": self.node.store is not None,
            "recoveredHeight": (
                self.recovery.height if self.recovery else 0
            ),
            "walRecords": (
                self.node.store.wal_records
                if self.node.store is not None
                else 0
            ),
            "snapshotsWritten": (
                self.node.store.snapshots_written
                if self.node.store is not None
                else 0
            ),
        }
