"""The continuous block builder: queue → batch → execute → futures.

The inference-stack continuous-batching shape applied to blocks: client
transactions stream into the node's mempool; the builder cuts a block as
soon as a size target, a gas target, or a time budget is hit; the block
executes on a worker thread (sequential, MTPU, or the multicore parallel
backend); and each transaction's response future resolves the moment its
receipt commits. Receipts and ``state_digest()`` are bit-identical to
offline sequential execution — the MTPU and parallel backends guarantee
it, and any executor failure (e.g. every PU killed by an injected fault)
degrades to a clean sequential re-execution of the same block instead of
wedging the loop.
"""

from __future__ import annotations

import asyncio
import time

from ..chain.mempool import AdmissionError  # noqa: F401  (re-export)
from ..chain.node import Node
from ..chain.receipt import Receipt
from ..obs import get_registry
from .config import ServeConfig


class CommittedReceipt:
    """A receipt plus its position in the chain."""

    __slots__ = ("receipt", "block_height", "tx_index")

    def __init__(self, receipt: Receipt, block_height: int, tx_index: int):
        self.receipt = receipt
        self.block_height = block_height
        self.tx_index = tx_index


class BlockBuilder:
    """Owns the node and the build-execute-resolve loop."""

    def __init__(
        self,
        node: Node,
        config: ServeConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.node = node
        self.config = config or ServeConfig()
        #: Optional :class:`repro.faults.FaultInjector` whose PU faults
        #: strike the MTPU executor (degradation, never divergence).
        self.fault_injector = fault_injector
        #: tx hash -> future resolving to a :class:`CommittedReceipt`.
        self._pending: dict[bytes, asyncio.Future] = {}
        #: tx hash -> admission wall time (for the e2e latency SLO).
        self._admitted_at: dict[bytes, float] = {}
        #: tx hash -> committed receipt, for ``getReceipt`` lookups.
        self.committed: dict[bytes, CommittedReceipt] = {}
        self._wake = asyncio.Event()
        self._draining = False
        self._in_flight = 0
        self._task: asyncio.Task | None = None
        #: Callbacks fired with (block, receipts) after each commit.
        self.on_new_head: list = []
        # -- cumulative stats (mirrored into repro.obs when enabled) ----
        self.blocks_built = 0
        self.txs_committed = 0
        self.sequential_fallbacks = 0

    # -- ingress -----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Admitted-but-uncommitted transactions (queue + in flight)."""
        return len(self.node.mempool) + self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, tx) -> asyncio.Future:
        """Admit *tx* and return the future of its committed receipt.

        Raises :class:`~repro.chain.mempool.AdmissionError` (including
        the duplicate/sender-cap subtypes) when the mempool refuses it;
        the caller maps that onto a typed RPC error. Backpressure and
        drain checks happen in the server *before* this call.
        """
        self.node.mempool.add(tx)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        tx_hash = tx.hash()
        self._pending[tx_hash] = future
        self._admitted_at[tx_hash] = time.monotonic()
        self._wake.set()
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.admitted").inc()
            registry.gauge("serve.queue_depth").set(self.depth)
        return future

    def future_for(self, tx_hash: bytes) -> asyncio.Future | None:
        """The pending future for an already-admitted transaction."""
        return self._pending.get(tx_hash)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="block-builder"
            )

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: finish pending work, then stop the loop."""
        self._draining = True
        self._wake.set()
        if self._task is None:
            return
        try:
            await asyncio.wait_for(
                self._task, timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self._task.cancel()
            for future in self._pending.values():
                if not future.done():
                    future.cancel()
            self._pending.clear()
        self._task = None

    # -- the loop ----------------------------------------------------------
    async def _run(self) -> None:
        mempool = self.node.mempool
        config = self.config
        while True:
            while len(mempool) == 0:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
            # First transaction is pending: open the batching window.
            window_closes = (
                time.monotonic() + config.block_interval_ms / 1000.0
            )
            while (
                not self._draining
                and len(mempool) < config.block_size_target
                and not self._gas_target_met()
            ):
                remaining = window_closes - time.monotonic()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
            await self._cut_and_execute()

    def _gas_target_met(self) -> bool:
        if self.config.gas_target is None:
            return False
        gas = 0
        for tx in self.node.mempool.pending():
            gas += tx.gas_limit
            if gas >= self.config.gas_target:
                return True
        return False

    async def _cut_and_execute(self) -> None:
        config = self.config
        txs = self.node.mempool.take(
            config.block_size_target, gas_target=config.gas_target
        )
        if not txs:
            return
        self._in_flight = len(txs)
        loop = asyncio.get_running_loop()
        try:
            block, receipts = await loop.run_in_executor(
                None, self._build_and_execute, txs
            )
        finally:
            self._in_flight = 0
        self._resolve(block, receipts)

    # -- execution (worker thread; one block at a time) --------------------
    def _build_and_execute(self, txs):
        block = self.node.propose_block(transactions=txs)
        token = self.node.state.snapshot()
        try:
            receipts = self._execute(block)
        except Exception:
            # Degrade, never wedge: whatever the executor left behind is
            # rolled back and the block re-executes sequentially.
            self.node.state.revert(token)
            self.sequential_fallbacks += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.sequential_fallbacks").inc()
            receipts = self.node.execute_block(block)
        return block, receipts

    def _execute(self, block) -> list[Receipt]:
        if self.config.executor == "sequential":
            return self.node.execute_block(block)
        if self.config.executor == "mtpu":
            return self._execute_mtpu(block)
        return self._execute_parallel(block)

    def _execute_mtpu(self, block) -> list[Receipt]:
        from ..core.mtpu import MTPUExecutor
        from ..core.scheduler import run_spatial_temporal

        context = self.node.block_context(block.header.height)
        artifacts = {
            artifact.tx.hash(): artifact
            for artifact in (block.artifacts or [])
        }
        executor = MTPUExecutor(
            self.node.state,
            block=context,
            num_pus=self.config.num_workers,
            artifacts=artifacts,
        )
        schedule = run_spatial_temporal(
            executor,
            block.transactions,
            block.dag_edges,
            fault_injector=self.fault_injector,
        )
        receipts = schedule.receipts_in_block_order(block.transactions)
        self.node.commit_block(block, receipts)
        return receipts

    def _execute_parallel(self, block) -> list[Receipt]:
        from ..parallel import ParallelBlockExecutor

        context = self.node.block_context(block.header.height)
        # The per-block context carries a chain-local BLOCKHASH service,
        # so the executor degrades itself to the in-process serial
        # backend — still the artifact-replay execute-once path.
        with ParallelBlockExecutor(
            self.node.state,
            block=context,
            num_workers=self.config.num_workers,
        ) as executor:
            result = executor.execute_block(
                block.transactions,
                block.dag_edges,
                block.artifacts or [],
                artifacts=block.artifacts,
            )
        self.node.commit_block(block, result.receipts)
        return result.receipts

    # -- commit ------------------------------------------------------------
    def _resolve(self, block, receipts: list[Receipt]) -> None:
        height = block.header.height
        now = time.monotonic()
        registry = get_registry()
        for index, (tx, receipt) in enumerate(
            zip(block.transactions, receipts)
        ):
            tx_hash = tx.hash()
            committed = CommittedReceipt(receipt, height, index)
            self.committed[tx_hash] = committed
            future = self._pending.pop(tx_hash, None)
            if future is not None and not future.done():
                future.set_result(committed)
            admitted = self._admitted_at.pop(tx_hash, None)
            if registry.enabled and admitted is not None:
                registry.histogram("serve.e2e_latency_ms").observe(
                    (now - admitted) * 1000.0
                )
        self.blocks_built += 1
        self.txs_committed += len(receipts)
        if registry.enabled:
            registry.counter("serve.blocks_built").inc()
            registry.counter("serve.txs_committed").inc(len(receipts))
            registry.histogram("serve.block_size").observe(len(receipts))
            registry.gauge("serve.queue_depth").set(self.depth)
        for callback in list(self.on_new_head):
            callback(block, receipts)
