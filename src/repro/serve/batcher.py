"""The continuous block builder: queue → batch → execute → futures.

The inference-stack continuous-batching shape applied to blocks: client
transactions stream into the node's mempool; the builder cuts a block as
soon as a size target, a gas target, or a time budget is hit; the block
executes on a worker thread (sequential, MTPU, or the multicore parallel
backend); and each transaction's response future resolves the moment its
receipt commits. Receipts and ``state_digest()`` are bit-identical to
offline sequential execution — the MTPU and parallel backends guarantee
it, and any executor failure (e.g. every PU killed by an injected fault)
degrades to a clean sequential re-execution of the same block instead of
wedging the loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from collections import deque

from ..chain.bloom import AccessEstimator
from ..chain.mempool import (  # noqa: F401  (AdmissionError re-export)
    AdmissionError,
    DuplicateTransactionError,
    PackingPolicy,
)
from ..chain.node import Node
from ..chain.receipt import Receipt
from ..evm.decoded import warm_state_codes
from ..obs import get_registry
from .config import ServeConfig
from .errors import ExecutionFailedError


class CommittedReceipt:
    """A receipt plus its position in the chain."""

    __slots__ = ("receipt", "block_height", "tx_index")

    def __init__(self, receipt: Receipt, block_height: int, tx_index: int):
        self.receipt = receipt
        self.block_height = block_height
        self.tx_index = tx_index


class BlockBuilder:
    """Owns the node and the build-execute-resolve loop."""

    def __init__(
        self,
        node: Node,
        config: ServeConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.node = node
        self.config = config or ServeConfig()
        #: Optional :class:`repro.faults.FaultInjector` whose PU faults
        #: strike the MTPU executor (degradation, never divergence).
        self.fault_injector = fault_injector
        #: tx hash -> future resolving to a :class:`CommittedReceipt`.
        self._pending: dict[bytes, asyncio.Future] = {}
        #: tx hash -> admission wall time (for the e2e latency SLO).
        self._admitted_at: dict[bytes, float] = {}
        #: tx hash -> committed receipt, for ``getReceipt`` lookups.
        #: Bounded to ``config.receipt_history_blocks`` recent blocks.
        self.committed: dict[bytes, CommittedReceipt] = {}
        #: (block hash, tx hashes) per retained block, oldest first —
        #: the eviction order for the receipt-retention window.
        self._history: deque[tuple[bytes, list[bytes]]] = deque()
        #: Serializes block execution (worker thread) against event-loop
        #: reads of the shared world state: getBalance and the mempool's
        #: balance-aware admission both peek at ``node.state`` and toggle
        #: its ``access`` attribute, which the executing EVM also
        #: save/restores — unsynchronized, a read could observe
        #: mid-transaction balances or corrupt access tracking.
        self.state_lock = threading.Lock()
        self._wake = asyncio.Event()
        self._draining = False
        self._in_flight = 0
        self._task: asyncio.Task | None = None
        #: Callbacks fired with (block, receipts) after each commit.
        self.on_new_head: list = []
        # Serve nodes start warm: pre-decode every contract already in
        # state so the first block never pays the AOT decode pass.
        warm_state_codes(node.state)
        # -- cumulative stats (mirrored into repro.obs when enabled) ----
        self.blocks_built = 0
        self.txs_committed = 0
        self.sequential_fallbacks = 0
        self.execution_failures = 0
        self.packed_blocks = 0
        self.packed_parallelism_sum = 0.0
        self.packed_deferred_total = 0
        #: Resolved lane-depth/aging policy under conflict-aware packing.
        self.packing_policy: PackingPolicy | None = None
        if self.config.packing == "conflict_aware":
            depth = self.config.packing_lane_depth or max(
                1,
                self.config.block_size_target
                // max(1, self.config.num_workers),
            )
            self.packing_policy = PackingPolicy(
                lane_depth=depth,
                aging_bound=self.config.packing_aging_bound,
            )
            if self.config.packing_trust_estimates:
                if self.node.mempool.estimator is None:
                    self.node.mempool.estimator = AccessEstimator()
                self.node.mempool.trust_estimates = True

    # -- ingress -----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Admitted-but-uncommitted transactions (queue + in flight)."""
        return len(self.node.mempool) + self._in_flight

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, tx) -> asyncio.Future:
        """Admit *tx* and return the future of its committed receipt.

        Raises :class:`~repro.chain.mempool.AdmissionError` (including
        the duplicate/sender-cap subtypes) when the mempool refuses it;
        the caller maps that onto a typed RPC error. Backpressure and
        drain checks happen in the server *before* this call.
        """
        tx_hash = tx.hash()
        # The mempool forgets a hash the moment take() pulls it into a
        # block, so it cannot guard against resubmission of a
        # transaction that is mid-execution — _pending can (it holds the
        # hash from admission until the receipt resolves). Without this
        # check a retry would re-admit, orphan the original waiter's
        # future, and execute the transaction a second time.
        if tx_hash in self._pending:
            raise DuplicateTransactionError(
                f"transaction {tx_hash.hex()[:16]}… already pending"
            )
        # Admission reads balances off the shared state; hold the lock so
        # a concurrently executing block can't interleave.
        with self.state_lock:
            self.node.mempool.add(tx)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[tx_hash] = future
        self._admitted_at[tx_hash] = time.monotonic()
        self._wake.set()
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.admitted").inc()
            registry.gauge("serve.queue_depth").set(self.depth)
        return future

    def future_for(self, tx_hash: bytes) -> asyncio.Future | None:
        """The pending future for an already-admitted transaction."""
        return self._pending.get(tx_hash)

    def seed_committed(self) -> None:
        """Rebuild the receipt indexes from an already-populated node.

        After crash recovery the node carries a replayed chain and its
        receipts, but ``committed``/``_history`` (which back getReceipt
        and idempotent resubmission) live here. Seeding them restores
        both behaviors across a restart, bounded by the same retention
        window as live serving.
        """
        for block in self.node.chain:
            receipts = self.node.receipts.get(block.hash())
            if receipts is None:
                continue  # outside the recovered retention window
            height = block.header.height
            for index, (tx, receipt) in enumerate(
                zip(block.transactions, receipts)
            ):
                self.committed[tx.hash()] = CommittedReceipt(
                    receipt, height, index
                )
            self._history.append(
                (block.hash(), [tx.hash() for tx in block.transactions])
            )
        retain = self.config.receipt_history_blocks
        while retain is not None and len(self._history) > retain:
            old_block_hash, old_tx_hashes = self._history.popleft()
            self.node.receipts.pop(old_block_hash, None)
            for tx_hash in old_tx_hashes:
                self.committed.pop(tx_hash, None)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="block-builder"
            )

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: finish pending work, then stop the loop."""
        self._draining = True
        self._wake.set()
        if self._task is None:
            return
        try:
            await asyncio.wait_for(
                self._task, timeout=self.config.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self._task.cancel()
            for future in self._pending.values():
                if not future.done():
                    future.cancel()
            self._pending.clear()
        self._task = None

    # -- the loop ----------------------------------------------------------
    async def _run(self) -> None:
        mempool = self.node.mempool
        config = self.config
        while True:
            while len(mempool) == 0:
                if self._draining:
                    return
                self._wake.clear()
                await self._wake.wait()
            # First transaction is pending: open the batching window.
            window_closes = (
                time.monotonic() + config.block_interval_ms / 1000.0
            )
            while (
                not self._draining
                and len(mempool) < config.block_size_target
                and not self._gas_target_met()
            ):
                remaining = window_closes - time.monotonic()
                if remaining <= 0:
                    break
                self._wake.clear()
                try:
                    await asyncio.wait_for(
                        self._wake.wait(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
            try:
                await self._cut_and_execute()
            except asyncio.CancelledError:
                raise
            except Exception:
                # Degrade, never wedge: _cut_and_execute already failed
                # the affected futures; anything escaping it (a commit or
                # resolve bug) must still not kill the builder task —
                # a dead builder hangs every future submit forever.
                self.execution_failures += 1
                registry = get_registry()
                if registry.enabled:
                    registry.counter("serve.execution_failures").inc()

    def _gas_target_met(self) -> bool:
        if self.config.gas_target is None:
            return False
        gas = 0
        for tx in self.node.mempool.pending():
            gas += tx.gas_limit
            if gas >= self.config.gas_target:
                return True
        return False

    async def _cut_and_execute(self) -> None:
        config = self.config
        packed = None
        if self.packing_policy is not None:
            # take_packed reads only admission-time blooms — never the
            # shared world state — so it is safe here on the event loop
            # without state_lock, exactly like take().
            packed = self.node.mempool.take_packed(
                config.block_size_target,
                gas_target=config.gas_target,
                policy=self.packing_policy,
            )
            txs = packed.transactions
        else:
            txs = self.node.mempool.take(
                config.block_size_target, gas_target=config.gas_target
            )
        if not txs:
            return
        self._in_flight = len(txs)
        loop = asyncio.get_running_loop()
        try:
            block, receipts = await loop.run_in_executor(
                None, self._build_and_execute, txs, packed
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Even the sequential fallback failed. State was rolled
            # back; fail exactly this block's futures with a typed
            # error and keep the loop alive for everything else.
            self._in_flight = 0
            self._fail(txs, exc)
            return
        finally:
            self._in_flight = 0
        self._resolve(block, receipts)

    def _fail(self, txs, exc: Exception) -> None:
        self.execution_failures += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("serve.execution_failures").inc()
            registry.gauge("serve.queue_depth").set(self.depth)
        err = ExecutionFailedError(repr(exc))
        for tx in txs:
            tx_hash = tx.hash()
            self._admitted_at.pop(tx_hash, None)
            future = self._pending.pop(tx_hash, None)
            if future is not None and not future.done():
                future.set_exception(err)
                # A waiter may have already abandoned the future (its
                # deadline elapsed); retrieving the exception here keeps
                # asyncio from logging "exception was never retrieved".
                future.exception()

    # -- execution (worker thread; one block at a time) --------------------
    def _build_and_execute(self, txs, packed=None):
        with self.state_lock:
            return self._build_and_execute_locked(txs, packed)

    def _build_and_execute_locked(self, txs, packed=None):
        block = self.node.propose_block(
            transactions=txs, executor=self.config.executor
        )
        if packed is not None:
            block.packed_lanes = packed.lanes
            block.packed_parallelism = packed.parallelism
            self.packed_blocks += 1
            self.packed_parallelism_sum += packed.parallelism
            self.packed_deferred_total += packed.deferred
            registry = get_registry()
            if registry.enabled:
                registry.histogram("block.packed_parallelism").observe(
                    packed.parallelism
                )
        token = self.node.state.snapshot()
        try:
            receipts = self._execute(block)
        except Exception:
            # Degrade, never wedge: whatever the executor left behind is
            # rolled back and the block re-executes sequentially.
            self.node.state.revert(token)
            self.sequential_fallbacks += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("serve.sequential_fallbacks").inc()
            try:
                receipts = self.node.execute_block(block)
            except Exception:
                # The fallback died too: leave state exactly as it was
                # before the block; the caller fails the futures.
                self.node.state.revert(token)
                raise
        return block, receipts

    def _execute(self, block) -> list[Receipt]:
        if self.config.executor == "sequential":
            return self.node.execute_block(block)
        if self.config.executor == "mtpu":
            return self._execute_mtpu(block)
        if self.config.executor == "occ":
            return self._execute_occ(block)
        return self._execute_parallel(block)

    def _execute_occ(self, block) -> list[Receipt]:
        # Speculative (Block-STM) execution: the block was proposed with
        # no discovery pass, so this is the only serve path that never
        # pre-executes — conflicts surface as commit-time aborts and the
        # actual access sets feed the packing estimator.
        result = self.node.execute_block_occ(
            block, num_workers=self.config.num_workers
        )
        return result.receipts

    def _execute_mtpu(self, block) -> list[Receipt]:
        from ..core.mtpu import MTPUExecutor
        from ..core.scheduler import run_spatial_temporal

        context = self.node.block_context(block.header.height)
        artifacts = {
            artifact.tx.hash(): artifact
            for artifact in (block.artifacts or [])
        }
        executor = MTPUExecutor(
            self.node.state,
            block=context,
            num_pus=self.config.num_workers,
            artifacts=artifacts,
        )
        schedule = run_spatial_temporal(
            executor,
            block.transactions,
            block.dag_edges,
            fault_injector=self.fault_injector,
        )
        receipts = schedule.receipts_in_block_order(block.transactions)
        self.node.commit_block(block, receipts)
        return receipts

    def _execute_parallel(self, block) -> list[Receipt]:
        from ..parallel import ParallelBlockExecutor

        context = self.node.block_context(block.header.height)
        # The per-block context carries a chain-local BLOCKHASH service,
        # so the executor degrades itself to the in-process serial
        # backend — still the artifact-replay execute-once path.
        with ParallelBlockExecutor(
            self.node.state,
            block=context,
            num_workers=self.config.num_workers,
        ) as executor:
            result = executor.execute_block(
                block.transactions,
                block.dag_edges,
                block.artifacts or [],
                artifacts=block.artifacts,
            )
        self.node.commit_block(block, result.receipts)
        return result.receipts

    # -- commit ------------------------------------------------------------
    def _resolve(self, block, receipts: list[Receipt]) -> None:
        height = block.header.height
        now = time.monotonic()
        registry = get_registry()
        for index, (tx, receipt) in enumerate(
            zip(block.transactions, receipts)
        ):
            tx_hash = tx.hash()
            committed = CommittedReceipt(receipt, height, index)
            self.committed[tx_hash] = committed
            future = self._pending.pop(tx_hash, None)
            if future is not None and not future.done():
                future.set_result(committed)
            admitted = self._admitted_at.pop(tx_hash, None)
            if registry.enabled and admitted is not None:
                registry.histogram("serve.e2e_latency_ms").observe(
                    (now - admitted) * 1000.0
                )
        self._evict_history(block)
        self.blocks_built += 1
        self.txs_committed += len(receipts)
        if registry.enabled:
            registry.counter("serve.blocks_built").inc()
            registry.counter("serve.txs_committed").inc(len(receipts))
            registry.histogram("serve.block_size").observe(len(receipts))
            registry.gauge("serve.queue_depth").set(self.depth)
        for callback in list(self.on_new_head):
            with contextlib.suppress(Exception):
                # A broken head subscriber must not kill the builder.
                callback(block, receipts)

    def _evict_history(self, block) -> None:
        """Bound receipt retention to ``receipt_history_blocks`` blocks.

        Without a bound, ``committed`` (and ``Node.receipts``) grow
        linearly with every transaction ever served. Receipts older than
        the window stop being served — getReceipt returns null and
        resubmission of an ancient hash is no longer idempotent; run
        with ``receipt_history_blocks=None`` for archival behavior.
        """
        retain = self.config.receipt_history_blocks
        if retain is None:
            return
        self._history.append(
            (block.hash(), [tx.hash() for tx in block.transactions])
        )
        while len(self._history) > retain:
            old_block_hash, old_tx_hashes = self._history.popleft()
            self.node.receipts.pop(old_block_hash, None)
            for tx_hash in old_tx_hashes:
                self.committed.pop(tx_hash, None)
