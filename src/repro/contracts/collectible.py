"""CryptoCat: a CryptoKitties-style collectible with sale auctions.

The paper's motivation section uses CryptoCat as the canonical
once-hot-now-cold contract (peak 14% of all transactions); Table 2 uses
its ``createSaleAuction``. We implement breeding-free collectibles with a
declining-price ("Dutch") sale auction.
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Bin,
    CallValue,
    Caller,
    Const,
    ContractDef,
    Emit,
    FunctionDef,
    If,
    Local,
    MapLoad,
    MapStore,
    Require,
    Return,
    SLoad,
    SStore,
    Sha3,
    Stop,
    Timestamp,
    TransferNative,
)
from .lang.compiler import CompiledContract, compile_contract

AUCTION_CREATED_EVENT = "AuctionCreated(uint256,uint256,uint256)"
AUCTION_SUCCESSFUL_EVENT = "AuctionSuccessful(uint256,uint256,address)"

#: Gene layout: eight 32-bit segments per 256-bit genome.
GENE_SEGMENTS = 8
SEGMENT_BITS = 32
SEGMENT_MASK = (1 << SEGMENT_BITS) - 1


def _gene_mixing_loop():
    """Per-segment crossover: each 32-bit segment comes from the matron
    or the sire depending on one entropy bit, with a small mutation term
    — dense MUL/DIV/MOD/AND work, like the real mixGenes."""
    from .lang import Bin, If, While

    def segment_of(source):
        # (source / 2^(32*i)) % 2^32
        return Bin("%", Bin("/", source, Local("shift")),
                   Const(1 << SEGMENT_BITS))

    return While(
        Local("i").lt(GENE_SEGMENTS),
        [
            # shift = 2^(32*i), maintained multiplicatively.
            If(
                Local("i").eq(0),
                [Assign("shift", Const(1))],
                [Assign("shift",
                        Local("shift") * (1 << SEGMENT_BITS))],
            ),
            Assign("coin",
                   Bin("%", Bin("/", Local("entropy"), Local("shift")),
                       Const(2))),
            If(
                Local("coin").eq(0),
                [Assign("segment", segment_of(Local("matron_genes")))],
                [Assign("segment", segment_of(Local("sire_genes")))],
            ),
            # Rare mutation: perturb the segment from the entropy word.
            If(
                Bin("%", Bin("/", Local("entropy"), Local("shift")),
                    Const(16)).eq(7),
                [
                    Assign(
                        "segment",
                        Bin("%",
                            Local("segment")
                            + Bin("%", Local("entropy"), Const(251)),
                            Const(1 << SEGMENT_BITS)),
                    )
                ],
            ),
            Assign("child_genes",
                   Local("child_genes")
                   + Local("segment") * Local("shift")),
            Assign("i", Local("i") + 1),
        ],
    )


def make_cryptocat() -> CompiledContract:
    """Collectible registry + Dutch-auction marketplace in one contract."""
    definition = ContractDef(
        name="CryptoCat",
        scalars=["next_cat_id", "auction_duration"],
        mappings=[
            "cat_owner",  # catId -> owner
            "cat_genes",  # catId -> genes word
            "auction_start_price",  # catId -> starting price
            "auction_end_price",  # catId -> floor price
            "auction_started_at",  # catId -> timestamp (0 = none)
            "auction_seller",  # catId -> seller
        ],
        functions=[
            FunctionDef(
                "createCat(uint256)",
                # createCat(genes) -> catId
                [
                    Assign("cat_id", SLoad("next_cat_id")),
                    MapStore("cat_owner", Local("cat_id"), Caller()),
                    MapStore("cat_genes", Local("cat_id"), Arg(0)),
                    SStore("next_cat_id", Local("cat_id") + 1),
                    Return(Local("cat_id")),
                ],
            ),
            FunctionDef(
                "createSaleAuction(uint256,uint256,uint256)",
                # createSaleAuction(catId, startPrice, endPrice)
                [
                    Require(MapLoad("cat_owner", Arg(0)).eq(Caller())),
                    Require(MapLoad("auction_started_at", Arg(0)).eq(0)),
                    Require(Arg(1).ge(Arg(2))),
                    MapStore("auction_start_price", Arg(0), Arg(1)),
                    MapStore("auction_end_price", Arg(0), Arg(2)),
                    MapStore("auction_started_at", Arg(0), Timestamp()),
                    MapStore("auction_seller", Arg(0), Caller()),
                    # Escrow the cat with the contract itself.
                    MapStore("cat_owner", Arg(0), Const(0)),
                    Emit(AUCTION_CREATED_EVENT, data=[Arg(0), Arg(1)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "bid(uint256)",
                # bid(catId) payable — price declines linearly to the floor.
                [
                    Assign("started", MapLoad("auction_started_at", Arg(0))),
                    Require(Local("started").gt(0)),
                    Assign("elapsed", Timestamp() - Local("started")),
                    Assign("start_price",
                           MapLoad("auction_start_price", Arg(0))),
                    Assign("end_price", MapLoad("auction_end_price", Arg(0))),
                    Assign("duration", SLoad("auction_duration")),
                    If(
                        Local("elapsed").ge(Local("duration")),
                        [Assign("price", Local("end_price"))],
                        [
                            Assign(
                                "price",
                                Local("start_price")
                                - (
                                    (Local("start_price")
                                     - Local("end_price"))
                                    * Local("elapsed")
                                )
                                // Local("duration"),
                            )
                        ],
                    ),
                    Require(CallValue().ge(Local("price"))),
                    Assign("seller", MapLoad("auction_seller", Arg(0))),
                    MapStore("auction_started_at", Arg(0), Const(0)),
                    MapStore("cat_owner", Arg(0), Caller()),
                    TransferNative(Local("seller"), Local("price")),
                    Emit(
                        AUCTION_SUCCESSFUL_EVENT,
                        topics=[Caller()],
                        data=[Arg(0), Local("price")],
                    ),
                    Stop(),
                ],
                payable=True,
            ),
            FunctionDef(
                "giveBirth(uint256,uint256)",
                # giveBirth(matronId, sireId): mix the parents' genes —
                # the arithmetic-heavy core of the real CryptoKitties.
                [
                    Require(MapLoad("cat_owner", Arg(0)).eq(Caller())),
                    Require(MapLoad("cat_owner", Arg(1)).ne(0)),
                    Require(Arg(0).ne(Arg(1))),
                    Assign("matron_genes", MapLoad("cat_genes", Arg(0))),
                    Assign("sire_genes", MapLoad("cat_genes", Arg(1))),
                    Assign("entropy",
                           Sha3(Local("matron_genes"),
                                Local("sire_genes") + Timestamp())),
                    Assign("child_genes", Const(0)),
                    Assign("i", Const(0)),
                    _gene_mixing_loop(),
                    Assign("kitten_id", SLoad("next_cat_id")),
                    MapStore("cat_owner", Local("kitten_id"), Caller()),
                    MapStore("cat_genes", Local("kitten_id"),
                             Local("child_genes")),
                    SStore("next_cat_id", Local("kitten_id") + 1),
                    Emit("Birth(address,uint256,uint256,uint256)",
                         topics=[Caller()],
                         data=[Local("kitten_id"), Arg(0), Arg(1)]),
                    Return(Local("kitten_id")),
                ],
            ),
            FunctionDef(
                "cancelAuction(uint256)",
                [
                    Require(MapLoad("auction_started_at", Arg(0)).gt(0)),
                    Require(
                        MapLoad("auction_seller", Arg(0)).eq(Caller())
                    ),
                    MapStore("auction_started_at", Arg(0), Const(0)),
                    MapStore("cat_owner", Arg(0), Caller()),
                    Emit("AuctionCancelled(uint256)", data=[Arg(0)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "transfer(address,uint256)",
                # transfer(to, catId): plain collectible transfer.
                [
                    Require(MapLoad("cat_owner", Arg(1)).eq(Caller())),
                    Require(Arg(0).ne(0)),
                    MapStore("cat_owner", Arg(1), Arg(0)),
                    Emit("Transfer(address,address,uint256)",
                         topics=[Caller(), Arg(0)], data=[Arg(1)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "getAuction(uint256)",
                # Returns the current computed price of a live auction.
                [
                    Assign("started", MapLoad("auction_started_at",
                                              Arg(0))),
                    Require(Local("started").gt(0)),
                    Assign("elapsed", Timestamp() - Local("started")),
                    Assign("start_price",
                           MapLoad("auction_start_price", Arg(0))),
                    Assign("end_price",
                           MapLoad("auction_end_price", Arg(0))),
                    Assign("duration", SLoad("auction_duration")),
                    If(
                        Local("elapsed").ge(Local("duration")),
                        [Return(Local("end_price"))],
                        [
                            Return(
                                Local("start_price")
                                - (
                                    (Local("start_price")
                                     - Local("end_price"))
                                    * Local("elapsed")
                                )
                                // Local("duration")
                            )
                        ],
                    ),
                ],
            ),
            FunctionDef(
                "ownerOf(uint256)",
                [Return(MapLoad("cat_owner", Arg(0)))],
            ),
            FunctionDef(
                "getGenes(uint256)",
                [Return(MapLoad("cat_genes", Arg(0)))],
            ),
            FunctionDef(
                "totalSupply()",
                [Return(SLoad("next_cat_id"))],
            ),
        ],
    )
    return compile_contract(definition)
