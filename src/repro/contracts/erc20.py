"""ERC20-style token contracts.

Stand-ins for the paper's Tether USD, Dai and LinkToken workloads. The
core transfer/approve/transferFrom logic is shared; flavors differ the way
the real contracts do:

* **Tether** charges a basis-point fee routed to the owner and supports
  owner-gated issue/redeem.
* **Dai** supports open mint (gated by a wards mapping) and burn.
* **LinkToken** adds ``transferAndCall``, which invokes a callback on the
  recipient contract (ERC677) — this exercises the context-switching
  functional unit.
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Caller,
    Const,
    ContractDef,
    Emit,
    ExtCall,
    FunctionDef,
    If,
    Local,
    MapLoad,
    Map2Load,
    MapStore,
    Map2Store,
    Require,
    Return,
    SLoad,
    SStore,
    Stop,
)
from .lang.compiler import CompiledContract, compile_contract

TRANSFER_EVENT = "Transfer(address,address,uint256)"
APPROVAL_EVENT = "Approval(address,address,uint256)"


def _view_functions() -> list[FunctionDef]:
    return [
        FunctionDef(
            "balanceOf(address)",
            [Return(MapLoad("balances", Arg(0)))],
        ),
        FunctionDef(
            "allowance(address,address)",
            [Return(Map2Load("allowances", Arg(0), Arg(1)))],
        ),
        FunctionDef("totalSupply()", [Return(SLoad("total_supply"))]),
    ]


def _approve_function() -> FunctionDef:
    return FunctionDef(
        "approve(address,uint256)",
        [
            Map2Store("allowances", Caller(), Arg(0), Arg(1)),
            Emit(APPROVAL_EVENT, topics=[Caller(), Arg(0)], data=[Arg(1)]),
            Return(Const(1)),
        ],
    )


def _transfer_body(fee_basis_points: bool) -> list:
    """transfer(to, value) with optional Tether-style owner fee."""
    statements = [
        Assign("sender_balance", MapLoad("balances", Caller())),
        Require(Local("sender_balance").ge(Arg(1))),
    ]
    if fee_basis_points:
        statements += [
            Assign("fee", (Arg(1) * SLoad("fee_rate")) // 10_000),
            Assign("send_amount", Arg(1) - Local("fee")),
            MapStore(
                "balances", Caller(), Local("sender_balance") - Arg(1)
            ),
            Assign("recipient_balance", MapLoad("balances", Arg(0))),
            Assign("new_recipient_balance",
                   Local("recipient_balance") + Local("send_amount")),
            Require(
                Local("new_recipient_balance").ge(
                    Local("recipient_balance")
                )
            ),
            MapStore("balances", Arg(0), Local("new_recipient_balance")),
            If(
                Local("fee").gt(0),
                [
                    MapStore(
                        "balances",
                        SLoad("owner"),
                        MapLoad("balances", SLoad("owner")) + Local("fee"),
                    ),
                ],
            ),
            Emit(
                TRANSFER_EVENT,
                topics=[Caller(), Arg(0)],
                data=[Local("send_amount")],
            ),
            Return(Const(1)),
        ]
    else:
        statements += [
            MapStore(
                "balances", Caller(), Local("sender_balance") - Arg(1)
            ),
            # Checked addition (SafeMath / Solidity >=0.8 overflow guard).
            Assign("recipient_balance", MapLoad("balances", Arg(0))),
            Assign("new_recipient_balance",
                   Local("recipient_balance") + Arg(1)),
            Require(
                Local("new_recipient_balance").ge(
                    Local("recipient_balance")
                )
            ),
            MapStore("balances", Arg(0), Local("new_recipient_balance")),
            Emit(TRANSFER_EVENT, topics=[Caller(), Arg(0)], data=[Arg(1)]),
            Return(Const(1)),
        ]
    return statements


def _transfer_from_function() -> FunctionDef:
    return FunctionDef(
        "transferFrom(address,address,uint256)",
        [
            Assign("allowed", Map2Load("allowances", Arg(0), Caller())),
            Require(Local("allowed").ge(Arg(2))),
            Assign("from_balance", MapLoad("balances", Arg(0))),
            Require(Local("from_balance").ge(Arg(2))),
            Map2Store(
                "allowances", Arg(0), Caller(), Local("allowed") - Arg(2)
            ),
            MapStore("balances", Arg(0), Local("from_balance") - Arg(2)),
            MapStore(
                "balances", Arg(1), MapLoad("balances", Arg(1)) + Arg(2)
            ),
            Emit(TRANSFER_EVENT, topics=[Arg(0), Arg(1)], data=[Arg(2)]),
            Return(Const(1)),
        ],
    )


def make_tether() -> CompiledContract:
    """Tether USD: fee-charging ERC20 with owner-gated issuance."""
    definition = ContractDef(
        name="TetherToken",
        scalars=["total_supply", "owner", "fee_rate", "paused"],
        mappings=["balances", "allowances", "blacklist"],
        functions=[
            FunctionDef(
                "transfer(address,uint256)",
                [
                    Require(SLoad("paused").eq(0)),
                    Require(MapLoad("blacklist", Caller()).eq(0)),
                ]
                + _transfer_body(fee_basis_points=True),
            ),
            _transfer_from_function(),
            _approve_function(),
            *_view_functions(),
            FunctionDef(
                "issue(uint256)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    SStore("total_supply", SLoad("total_supply") + Arg(0)),
                    MapStore(
                        "balances",
                        SLoad("owner"),
                        MapLoad("balances", SLoad("owner")) + Arg(0),
                    ),
                    Stop(),
                ],
            ),
            FunctionDef(
                "setParams(uint256)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    Require(Arg(0).lt(20)),
                    SStore("fee_rate", Arg(0)),
                    Stop(),
                ],
            ),
            FunctionDef(
                "redeem(uint256)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    Assign("owner_balance",
                           MapLoad("balances", SLoad("owner"))),
                    Require(Local("owner_balance").ge(Arg(0))),
                    MapStore("balances", SLoad("owner"),
                             Local("owner_balance") - Arg(0)),
                    SStore("total_supply", SLoad("total_supply") - Arg(0)),
                    Stop(),
                ],
            ),
            FunctionDef(
                "addBlackList(address)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    MapStore("blacklist", Arg(0), Const(1)),
                    Emit("AddedBlackList(address)", topics=[Arg(0)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "removeBlackList(address)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    MapStore("blacklist", Arg(0), Const(0)),
                    Emit("RemovedBlackList(address)", topics=[Arg(0)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "destroyBlackFunds(address)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    Require(MapLoad("blacklist", Arg(0)).eq(1)),
                    Assign("funds", MapLoad("balances", Arg(0))),
                    MapStore("balances", Arg(0), Const(0)),
                    SStore("total_supply",
                           SLoad("total_supply") - Local("funds")),
                    Emit("DestroyedBlackFunds(address,uint256)",
                         topics=[Arg(0)], data=[Local("funds")]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "isBlackListed(address)",
                [Return(MapLoad("blacklist", Arg(0)))],
            ),
            FunctionDef(
                "transferOwnership(address)",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    Require(Arg(0).ne(0)),
                    SStore("owner", Arg(0)),
                    Stop(),
                ],
            ),
            FunctionDef(
                "pause()",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    SStore("paused", Const(1)),
                    Emit("Pause()"),
                    Stop(),
                ],
            ),
            FunctionDef(
                "unpause()",
                [
                    Require(Caller().eq(SLoad("owner"))),
                    SStore("paused", Const(0)),
                    Emit("Unpause()"),
                    Stop(),
                ],
            ),
            FunctionDef(
                "getOwner()",
                [Return(SLoad("owner"))],
            ),
        ],
    )
    return compile_contract(definition)


def make_dai() -> CompiledContract:
    """Dai stablecoin: ERC20 with wards-gated mint and open burn."""
    definition = ContractDef(
        name="Dai",
        scalars=["total_supply"],
        mappings=["balances", "allowances", "wards"],
        functions=[
            FunctionDef(
                "transfer(address,uint256)",
                _transfer_body(fee_basis_points=False),
            ),
            _transfer_from_function(),
            _approve_function(),
            *_view_functions(),
            FunctionDef(
                "mint(address,uint256)",
                [
                    Require(MapLoad("wards", Caller()).eq(1)),
                    MapStore(
                        "balances",
                        Arg(0),
                        MapLoad("balances", Arg(0)) + Arg(1),
                    ),
                    SStore("total_supply", SLoad("total_supply") + Arg(1)),
                    Emit(TRANSFER_EVENT, topics=[Const(0), Arg(0)],
                         data=[Arg(1)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "burn(address,uint256)",
                [
                    Assign("balance", MapLoad("balances", Arg(0))),
                    Require(Local("balance").ge(Arg(1))),
                    Require(Caller().eq(Arg(0))),
                    MapStore("balances", Arg(0), Local("balance") - Arg(1)),
                    SStore("total_supply", SLoad("total_supply") - Arg(1)),
                    Emit(TRANSFER_EVENT, topics=[Arg(0), Const(0)],
                         data=[Arg(1)]),
                    Stop(),
                ],
            ),
        ],
    )
    return compile_contract(definition)


def make_link_token() -> CompiledContract:
    """LinkToken: ERC20 + ERC677 transferAndCall into the recipient."""
    definition = ContractDef(
        name="LinkToken",
        scalars=["total_supply"],
        mappings=["balances", "allowances"],
        functions=[
            FunctionDef(
                "transfer(address,uint256)",
                _transfer_body(fee_basis_points=False),
            ),
            _transfer_from_function(),
            _approve_function(),
            *_view_functions(),
            FunctionDef(
                "transferAndCall(address,uint256,uint256)",
                [
                    Assign("sender_balance", MapLoad("balances", Caller())),
                    Require(Local("sender_balance").ge(Arg(1))),
                    MapStore(
                        "balances", Caller(), Local("sender_balance") - Arg(1)
                    ),
                    MapStore(
                        "balances",
                        Arg(0),
                        MapLoad("balances", Arg(0)) + Arg(1),
                    ),
                    Emit(TRANSFER_EVENT, topics=[Caller(), Arg(0)],
                         data=[Arg(1)]),
                    ExtCall(
                        target=Arg(0),
                        signature="onTokenTransfer(address,uint256,uint256)",
                        args=[Caller(), Arg(1), Arg(2)],
                    ),
                    Return(Const(1)),
                ],
            ),
        ],
    )
    return compile_contract(definition)


def make_plain_erc20(name: str) -> CompiledContract:
    """A minimal ERC20 (used for DEX pair legs and generic tokens)."""
    definition = ContractDef(
        name=name,
        scalars=["total_supply"],
        mappings=["balances", "allowances"],
        functions=[
            FunctionDef(
                "transfer(address,uint256)",
                _transfer_body(fee_basis_points=False),
            ),
            _transfer_from_function(),
            _approve_function(),
            *_view_functions(),
        ],
    )
    return compile_contract(definition)


def make_oracle_receiver() -> CompiledContract:
    """ERC677 receiver used as LinkToken's callback target."""
    definition = ContractDef(
        name="OracleReceiver",
        scalars=["request_count"],
        mappings=["requests"],
        functions=[
            FunctionDef(
                "onTokenTransfer(address,uint256,uint256)",
                [
                    Assign("count", SLoad("request_count")),
                    MapStore("requests", Local("count"), Arg(2)),
                    SStore("request_count", Local("count") + 1),
                    Return(Const(1)),
                ],
            ),
        ],
    )
    return compile_contract(definition)
