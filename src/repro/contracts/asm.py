"""A two-pass EVM assembler.

The contract suite (our stand-ins for the paper's TOP8 Ethereum contracts)
is authored either directly in this assembly or through the
:mod:`repro.contracts.lang` compiler, which emits it.

Syntax, one statement per line::

    ; comment (also //-style)
    label:              ; defines a jump target (emits JUMPDEST)
    PUSH 0x42           ; auto-sized push
    PUSH4 0xcc80f6f3    ; explicitly sized push
    PUSH @label         ; push a label address (fixed PUSH2)
    JUMPI
    STOP

Labels always emit a JUMPDEST so every target is a valid destination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..evm import opcodes

#: Width used for label-address pushes (code is always < 64 KiB here).
LABEL_PUSH_WIDTH = 2


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""


@dataclass(frozen=True)
class _Statement:
    line_number: int
    label: str | None = None
    mnemonic: str | None = None
    operand: int | None = None
    operand_label: str | None = None
    push_width: int | None = None


def _parse_line(line: str, line_number: int) -> list[_Statement]:
    code = line.split(";", 1)[0].split("//", 1)[0].strip()
    if not code:
        return []
    statements: list[_Statement] = []
    if code.endswith(":"):
        label = code[:-1].strip()
        if not label.isidentifier():
            raise AssemblyError(f"line {line_number}: bad label {label!r}")
        return [_Statement(line_number, label=label)]

    parts = code.split()
    mnemonic = parts[0].upper()
    operand: int | None = None
    operand_label: str | None = None
    push_width: int | None = None

    if mnemonic.startswith("PUSH"):
        suffix = mnemonic[4:]
        if suffix:
            try:
                push_width = int(suffix)
            except ValueError as exc:
                raise AssemblyError(
                    f"line {line_number}: bad push width {suffix!r}"
                ) from exc
            if not 1 <= push_width <= 32:
                raise AssemblyError(
                    f"line {line_number}: push width {push_width} out of range"
                )
        mnemonic = "PUSH"
        if len(parts) != 2:
            raise AssemblyError(f"line {line_number}: PUSH needs one operand")
        token = parts[1]
        if token.startswith("@"):
            operand_label = token[1:]
            push_width = push_width or LABEL_PUSH_WIDTH
        else:
            operand = _parse_int(token, line_number)
    else:
        if len(parts) != 1:
            raise AssemblyError(
                f"line {line_number}: {mnemonic} takes no operand"
            )
        if mnemonic not in opcodes.BY_NAME:
            raise AssemblyError(
                f"line {line_number}: unknown mnemonic {mnemonic!r}"
            )

    statements.append(
        _Statement(
            line_number,
            mnemonic=mnemonic,
            operand=operand,
            operand_label=operand_label,
            push_width=push_width,
        )
    )
    return statements


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(
            f"line {line_number}: bad integer {token!r}"
        ) from exc


def _push_width_for(value: int) -> int:
    if value < 0:
        raise AssemblyError(f"negative push operand {value}")
    return max(1, (value.bit_length() + 7) // 8)


def _statement_size(stmt: _Statement) -> int:
    if stmt.label is not None:
        return 1  # JUMPDEST
    if stmt.mnemonic == "PUSH":
        if stmt.operand_label is not None:
            return 1 + (stmt.push_width or LABEL_PUSH_WIDTH)
        width = stmt.push_width or _push_width_for(stmt.operand or 0)
        return 1 + width
    return 1


def assemble(source: str) -> bytes:
    """Assemble a source string into bytecode."""
    statements: list[_Statement] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        statements.extend(_parse_line(line, line_number))

    # Pass 1: assign byte offsets and collect label addresses.
    labels: dict[str, int] = {}
    offset = 0
    for stmt in statements:
        if stmt.label is not None:
            if stmt.label in labels:
                raise AssemblyError(
                    f"line {stmt.line_number}: duplicate label {stmt.label!r}"
                )
            labels[stmt.label] = offset
        offset += _statement_size(stmt)

    # Pass 2: emit bytes.
    output = bytearray()
    for stmt in statements:
        if stmt.label is not None:
            output.append(opcodes.BY_NAME["JUMPDEST"].value)
            continue
        if stmt.mnemonic == "PUSH":
            if stmt.operand_label is not None:
                if stmt.operand_label not in labels:
                    raise AssemblyError(
                        f"line {stmt.line_number}: undefined label "
                        f"{stmt.operand_label!r}"
                    )
                value = labels[stmt.operand_label]
                width = stmt.push_width or LABEL_PUSH_WIDTH
            else:
                value = stmt.operand or 0
                width = stmt.push_width or _push_width_for(value)
            if value >= 1 << (8 * width):
                raise AssemblyError(
                    f"line {stmt.line_number}: operand {value:#x} does not "
                    f"fit PUSH{width}"
                )
            output.append(opcodes.BY_NAME[f"PUSH{width}"].value)
            output.extend(value.to_bytes(width, "big"))
            continue
        output.append(opcodes.BY_NAME[stmt.mnemonic].value)
    return bytes(output)


def label_addresses(source: str) -> dict[str, int]:
    """Map label name -> byte offset (useful for chunking and tests)."""
    statements: list[_Statement] = []
    for line_number, line in enumerate(source.splitlines(), start=1):
        statements.extend(_parse_line(line, line_number))
    labels: dict[str, int] = {}
    offset = 0
    for stmt in statements:
        if stmt.label is not None:
            labels[stmt.label] = offset
        offset += _statement_size(stmt)
    return labels
