"""Disassembler: bytecode back to readable assembly."""

from __future__ import annotations

from ..evm.code import decode


def disassemble(code: bytes) -> str:
    """Human-readable listing, one instruction per line."""
    lines = []
    for instr in decode(code):
        if instr.immediate is not None:
            lines.append(f"{instr.pc:#06x}: {instr.op.name} {instr.immediate:#x}")
        else:
            lines.append(f"{instr.pc:#06x}: {instr.op.name}")
    return "\n".join(lines)
