"""Ballot: the Solidity-by-example voting contract (paper Table 2)."""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Bin,
    Caller,
    Const,
    ContractDef,
    FunctionDef,
    If,
    Local,
    MapLoad,
    MapStore,
    Require,
    Return,
    SLoad,
    Stop,
)
from .lang.compiler import CompiledContract, compile_contract


def make_ballot() -> CompiledContract:
    """Vote for a proposal; weighted by giveRightToVote; one vote each."""
    definition = ContractDef(
        name="Ballot",
        scalars=["chairperson", "proposal_count"],
        mappings=[
            "voter_weight",  # voter -> weight
            "voter_voted",  # voter -> 0/1
            "voter_choice",  # voter -> proposal voted for
            "voter_delegate",  # voter -> delegate address
            "vote_counts",  # proposal -> accumulated weight
        ],
        functions=[
            FunctionDef(
                "giveRightToVote(address)",
                [
                    Require(Caller().eq(SLoad("chairperson"))),
                    Require(MapLoad("voter_voted", Arg(0)).eq(0)),
                    MapStore("voter_weight", Arg(0), Const(1)),
                    Stop(),
                ],
            ),
            FunctionDef(
                "vote(uint256)",
                [
                    Assign("weight", MapLoad("voter_weight", Caller())),
                    Require(Local("weight").gt(0)),
                    Require(MapLoad("voter_voted", Caller()).eq(0)),
                    Require(Arg(0).lt(SLoad("proposal_count"))),
                    MapStore("voter_voted", Caller(), Const(1)),
                    MapStore("voter_choice", Caller(), Arg(0)),
                    MapStore(
                        "vote_counts",
                        Arg(0),
                        MapLoad("vote_counts", Arg(0)) + Local("weight"),
                    ),
                    Stop(),
                ],
            ),
            FunctionDef(
                "delegate(address)",
                # Follow the delegation chain (bounded walk), then move
                # this voter's weight to the final delegate — the real
                # Ballot's recursive delegation, iteratively.
                [
                    Assign("weight", MapLoad("voter_weight", Caller())),
                    Require(Local("weight").gt(0)),
                    Require(MapLoad("voter_voted", Caller()).eq(0)),
                    Require(Arg(0).ne(Caller())),
                    Assign("target", Arg(0)),
                    Assign("hops", Const(0)),
                    _follow_delegation_loop(),
                    Require(Local("target").ne(Caller())),
                    MapStore("voter_voted", Caller(), Const(1)),
                    MapStore("voter_delegate", Caller(), Local("target")),
                    If(
                        MapLoad("voter_voted", Local("target")).eq(1),
                        # Delegate already voted: add weight to their
                        # chosen proposal.
                        [
                            MapStore(
                                "vote_counts",
                                MapLoad("voter_choice", Local("target")),
                                MapLoad(
                                    "vote_counts",
                                    MapLoad("voter_choice",
                                            Local("target")),
                                )
                                + Local("weight"),
                            ),
                        ],
                        [
                            MapStore(
                                "voter_weight",
                                Local("target"),
                                MapLoad("voter_weight", Local("target"))
                                + Local("weight"),
                            ),
                        ],
                    ),
                    Stop(),
                ],
            ),
            FunctionDef(
                "winningProposal()",
                [
                    Assign("winner", Const(0)),
                    Assign("best", MapLoad("vote_counts", Const(0))),
                    Assign("i", Const(1)),
                    # Linear scan — the rare loop in the suite, exercising
                    # backward branches in the DB cache.
                    _scan_loop(),
                    Return(Local("winner")),
                ],
            ),
        ],
    )
    return compile_contract(definition)


def _follow_delegation_loop():
    from .lang import If, While

    return While(
        Bin("&",
            MapLoad("voter_delegate", Local("target")).ne(0),
            Local("hops").lt(8)),
        [
            Assign("target",
                   MapLoad("voter_delegate", Local("target"))),
            Assign("hops", Local("hops") + 1),
        ],
    )


def _scan_loop():
    from .lang import If, While

    return While(
        Local("i").lt(SLoad("proposal_count")),
        [
            Assign("count", MapLoad("vote_counts", Local("i"))),
            If(
                Local("count").gt(Local("best")),
                [
                    Assign("best", Local("count")),
                    Assign("winner", Local("i")),
                ],
            ),
            Assign("i", Local("i") + 1),
        ],
    )
