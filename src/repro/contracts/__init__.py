"""Contract substrate: assembler, compiler and the synthetic TOP8 suite."""

from .asm import AssemblyError, assemble, label_addresses
from .disasm import disassemble
from .lang.compiler import CompiledContract, CompiledFunction, compile_contract
from .registry import (
    Deployment,
    DeployedContract,
    ERC20_NAMES,
    TOP8_NAMES,
    build_deployment,
    compile_suite,
)

__all__ = [
    "AssemblyError",
    "assemble",
    "label_addresses",
    "disassemble",
    "CompiledContract",
    "CompiledFunction",
    "compile_contract",
    "Deployment",
    "DeployedContract",
    "ERC20_NAMES",
    "TOP8_NAMES",
    "build_deployment",
    "compile_suite",
]
