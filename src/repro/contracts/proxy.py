"""Delegate proxies: FiatTokenProxy and MainchainGatewayProxy stand-ins.

Both of the paper's proxy workloads are thin DELEGATECALL forwarders in
front of an implementation contract — the proxy holds the storage, the
implementation holds the logic. This shows up in Table 6 as a relatively
high Branch share (the dispatch falls through to the fallback).
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Caller,
    Const,
    ContractDef,
    DelegateAll,
    Emit,
    ExtCall,
    FunctionDef,
    Local,
    MapLoad,
    Map2Load,
    MapStore,
    Map2Store,
    Require,
    Return,
    SLoad,
    SStore,
    SelfAddress,
    Stop,
)
from .lang.compiler import CompiledContract, compile_contract

#: Storage slot 0 of the proxy holds the implementation address; proxy and
#: implementation must therefore lay out their remaining storage starting
#: at slot 1, which the definitions below do by reserving "implementation".
DEPOSIT_EVENT = "TokenDeposited(address,address,uint256)"
WITHDRAWAL_EVENT = "TokenWithdrew(address,address,uint256)"


def make_proxy(name: str) -> CompiledContract:
    """A transparent proxy: upgradeTo for the admin, DELEGATECALL fallback."""
    definition = ContractDef(
        name=name,
        scalars=["implementation", "admin"],
        mappings=[],
        functions=[
            FunctionDef(
                "upgradeTo(address)",
                [
                    Require(Caller().eq(SLoad("admin"))),
                    SStore("implementation", Arg(0)),
                    Stop(),
                ],
            ),
            FunctionDef(
                "implementation()",
                [Return(SLoad("implementation"))],
            ),
        ],
        fallback=[DelegateAll(SLoad("implementation"))],
    )
    return compile_contract(definition)


def make_fiat_token_impl() -> CompiledContract:
    """USDC-style implementation living behind FiatTokenProxy.

    Storage slots 0/1 mirror the proxy ("implementation"/"admin") so that
    delegatecalled code addresses the proxy's storage correctly.
    """
    definition = ContractDef(
        name="FiatTokenV2",
        scalars=["implementation", "admin", "total_supply", "masterMinter"],
        mappings=["balances", "allowances", "minters"],
        functions=[
            FunctionDef(
                "transfer(address,uint256)",
                [
                    Assign("balance", MapLoad("balances", Caller())),
                    Require(Local("balance").ge(Arg(1))),
                    MapStore("balances", Caller(), Local("balance") - Arg(1)),
                    MapStore(
                        "balances",
                        Arg(0),
                        MapLoad("balances", Arg(0)) + Arg(1),
                    ),
                    Emit(
                        "Transfer(address,address,uint256)",
                        topics=[Caller(), Arg(0)],
                        data=[Arg(1)],
                    ),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "approve(address,uint256)",
                [
                    Map2Store("allowances", Caller(), Arg(0), Arg(1)),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "transferFrom(address,address,uint256)",
                [
                    Assign(
                        "allowed", Map2Load("allowances", Arg(0), Caller())
                    ),
                    Require(Local("allowed").ge(Arg(2))),
                    Assign("from_balance", MapLoad("balances", Arg(0))),
                    Require(Local("from_balance").ge(Arg(2))),
                    Map2Store(
                        "allowances", Arg(0), Caller(),
                        Local("allowed") - Arg(2),
                    ),
                    MapStore(
                        "balances", Arg(0), Local("from_balance") - Arg(2)
                    ),
                    MapStore(
                        "balances", Arg(1),
                        MapLoad("balances", Arg(1)) + Arg(2),
                    ),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "mint(address,uint256)",
                [
                    Require(MapLoad("minters", Caller()).eq(1)),
                    MapStore(
                        "balances", Arg(0),
                        MapLoad("balances", Arg(0)) + Arg(1),
                    ),
                    SStore("total_supply", SLoad("total_supply") + Arg(1)),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "balanceOf(address)",
                [Return(MapLoad("balances", Arg(0)))],
            ),
        ],
    )
    return compile_contract(definition)


def make_gateway_impl() -> CompiledContract:
    """Ronin-style mainchain gateway behind MainchainGatewayProxy.

    deposit: pulls ERC20 into the gateway and records a deposit entry;
    withdraw: releases tokens against a quota check. Logic-heavy with
    multiple requires, matching the paper's MGP profile (highest Logic
    share in Table 6).
    """
    definition = ContractDef(
        name="MainchainGatewayManager",
        scalars=["implementation", "admin", "deposit_count", "paused"],
        mappings=[
            "deposit_amount",  # depositId -> amount
            "deposit_owner",  # depositId -> depositor
            "withdrawal_done",  # withdrawalId -> 0/1
            "daily_quota",  # token -> remaining quota
        ],
        functions=[
            FunctionDef(
                "depositERC20(address,uint256)",
                # depositERC20(token, amount)
                [
                    Require(SLoad("paused").eq(0)),
                    Require(Arg(1).gt(0)),
                    ExtCall(
                        target=Arg(0),
                        signature="transferFrom(address,address,uint256)",
                        args=[Caller(), SelfAddress(), Arg(1)],
                    ),
                    Assign("deposit_id", SLoad("deposit_count")),
                    MapStore("deposit_amount", Local("deposit_id"), Arg(1)),
                    MapStore("deposit_owner", Local("deposit_id"), Caller()),
                    SStore("deposit_count", Local("deposit_id") + 1),
                    Emit(DEPOSIT_EVENT, topics=[Caller(), Arg(0)],
                         data=[Arg(1)]),
                    Return(Local("deposit_id")),
                ],
            ),
            FunctionDef(
                "withdrawERC20(uint256,address,uint256)",
                # withdrawERC20(withdrawalId, token, amount)
                [
                    Require(SLoad("paused").eq(0)),
                    Require(MapLoad("withdrawal_done", Arg(0)).eq(0)),
                    Assign("quota", MapLoad("daily_quota", Arg(1))),
                    Require(Local("quota").ge(Arg(2))),
                    MapStore("daily_quota", Arg(1),
                             Local("quota") - Arg(2)),
                    MapStore("withdrawal_done", Arg(0), Const(1)),
                    ExtCall(
                        target=Arg(1),
                        signature="transfer(address,uint256)",
                        args=[Caller(), Arg(2)],
                    ),
                    Emit(WITHDRAWAL_EVENT, topics=[Caller(), Arg(1)],
                         data=[Arg(2)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "depositCount()",
                [Return(SLoad("deposit_count"))],
            ),
        ],
    )
    return compile_contract(definition)
