"""WETH9: wrapped native token (paper Table 2's WETH9.Withdraw workload)."""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    BalanceOf,
    CallValue,
    Caller,
    Const,
    ContractDef,
    Emit,
    FunctionDef,
    If,
    Local,
    MapLoad,
    Map2Load,
    MapStore,
    Map2Store,
    Require,
    Return,
    SelfAddress,
    Stop,
    TransferNative,
)
from .lang.compiler import CompiledContract, compile_contract

DEPOSIT_EVENT = "Deposit(address,uint256)"
WITHDRAWAL_EVENT = "Withdrawal(address,uint256)"
TRANSFER_EVENT = "Transfer(address,address,uint256)"
APPROVAL_EVENT = "Approval(address,address,uint256)"


def make_weth() -> CompiledContract:
    """WETH9: the real contract's full surface — deposit (payable),
    withdraw, ERC20 transfer/approve/transferFrom and views."""
    definition = ContractDef(
        name="WETH9",
        scalars=[],
        mappings=["balances", "allowances"],
        functions=[
            FunctionDef(
                "deposit()",
                [
                    MapStore(
                        "balances",
                        Caller(),
                        MapLoad("balances", Caller()) + CallValue(),
                    ),
                    Emit(DEPOSIT_EVENT, topics=[Caller()],
                         data=[CallValue()]),
                    Stop(),
                ],
                payable=True,
            ),
            FunctionDef(
                "withdraw(uint256)",
                [
                    Assign("balance", MapLoad("balances", Caller())),
                    Require(Local("balance").ge(Arg(0))),
                    MapStore("balances", Caller(), Local("balance") - Arg(0)),
                    TransferNative(Caller(), Arg(0)),
                    Emit(WITHDRAWAL_EVENT, topics=[Caller()], data=[Arg(0)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "transfer(address,uint256)",
                [
                    Assign("balance", MapLoad("balances", Caller())),
                    Require(Local("balance").ge(Arg(1))),
                    MapStore("balances", Caller(), Local("balance") - Arg(1)),
                    MapStore(
                        "balances",
                        Arg(0),
                        MapLoad("balances", Arg(0)) + Arg(1),
                    ),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "balanceOf(address)",
                [Return(MapLoad("balances", Arg(0)))],
            ),
            FunctionDef(
                "approve(address,uint256)",
                [
                    Map2Store("allowances", Caller(), Arg(0), Arg(1)),
                    Emit(APPROVAL_EVENT, topics=[Caller(), Arg(0)],
                         data=[Arg(1)]),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "transferFrom(address,address,uint256)",
                [
                    Assign("from_balance", MapLoad("balances", Arg(0))),
                    Require(Local("from_balance").ge(Arg(2))),
                    # WETH9 semantics: the owner moving their own funds
                    # skips the allowance check.
                    If(
                        Caller().ne(Arg(0)),
                        [
                            Assign(
                                "allowed",
                                Map2Load("allowances", Arg(0), Caller()),
                            ),
                            Require(Local("allowed").ge(Arg(2))),
                            Map2Store(
                                "allowances", Arg(0), Caller(),
                                Local("allowed") - Arg(2),
                            ),
                        ],
                    ),
                    MapStore("balances", Arg(0),
                             Local("from_balance") - Arg(2)),
                    MapStore("balances", Arg(1),
                             MapLoad("balances", Arg(1)) + Arg(2)),
                    Emit(TRANSFER_EVENT, topics=[Arg(0), Arg(1)],
                         data=[Arg(2)]),
                    Return(Const(1)),
                ],
            ),
            FunctionDef(
                "allowance(address,address)",
                [Return(Map2Load("allowances", Arg(0), Arg(1)))],
            ),
            FunctionDef(
                "totalSupply()",
                # Real WETH9: total supply is the contract's native
                # balance (all wrapped ether is escrowed here).
                [Return(BalanceOf(SelfAddress()))],
            ),
        ],
    )
    return compile_contract(definition)
