"""AMM routers: stand-ins for UniswapV2Router02 and SwapRouter.

A router keeps constant-product reserves per (tokenIn, tokenOut) direction
in nested mappings and moves tokens by calling into the ERC20 contracts —
the paper's heaviest context-switching workloads (Table 6 shows these two
contracts with the highest Context switching share).

``UniswapV2Router02`` uses the classic 0.3% fee math; ``SwapRouter``
(Uniswap V3-flavored) uses 0.05% and adds an exact-output entry point.
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Caller,
    ContractDef,
    Emit,
    ExtCall,
    FunctionDef,
    Local,
    Map2Load,
    Map2Store,
    Require,
    Return,
    SelfAddress,
    Stop,
)
from .lang.compiler import CompiledContract, compile_contract

SWAP_EVENT = "Swap(address,address,uint256)"
SYNC_EVENT = "Sync(uint256,uint256)"


def _swap_exact_in_body(fee_numerator: int, fee_denominator: int) -> list:
    """Exact-input swap body: (amountIn, amountOutMin, tokenIn, tokenOut).

    out = (in * fee * R_out) / (R_in * D + in * fee) — Uniswap
    constant-product math with fee ratio ``fee_numerator/fee_denominator``.
    """
    return [
        Assign("reserve_in", Map2Load("reserves", Arg(2), Arg(3))),
        Assign("reserve_out", Map2Load("reserves", Arg(3), Arg(2))),
        Require(Local("reserve_in").gt(0)),
        Require(Local("reserve_out").gt(0)),
        Assign("amount_in_with_fee", Arg(0) * fee_numerator),
        Assign(
            "amount_out",
            (Local("amount_in_with_fee") * Local("reserve_out"))
            // (Local("reserve_in") * fee_denominator
                + Local("amount_in_with_fee")),
        ),
        Require(Local("amount_out").ge(Arg(1))),
        # Pull the input leg, push the output leg.
        ExtCall(
            target=Arg(2),
            signature="transferFrom(address,address,uint256)",
            args=[Caller(), SelfAddress(), Arg(0)],
        ),
        ExtCall(
            target=Arg(3),
            signature="transfer(address,uint256)",
            args=[Caller(), Local("amount_out")],
        ),
        Map2Store("reserves", Arg(2), Arg(3),
                  Local("reserve_in") + Arg(0)),
        Map2Store("reserves", Arg(3), Arg(2),
                  Local("reserve_out") - Local("amount_out")),
        Emit(SWAP_EVENT, topics=[Caller(), Arg(2)],
             data=[Local("amount_out")]),
        Emit(SYNC_EVENT, data=[Local("reserve_in") + Arg(0),
                               Local("reserve_out") - Local("amount_out")]),
        Return(Local("amount_out")),
    ]


def _add_liquidity_function() -> FunctionDef:
    """addLiquidity(tokenA, tokenB, amountA, amountB)."""
    return FunctionDef(
        "addLiquidity(address,address,uint256,uint256)",
        [
            ExtCall(
                target=Arg(0),
                signature="transferFrom(address,address,uint256)",
                args=[Caller(), SelfAddress(), Arg(2)],
            ),
            ExtCall(
                target=Arg(1),
                signature="transferFrom(address,address,uint256)",
                args=[Caller(), SelfAddress(), Arg(3)],
            ),
            Map2Store("reserves", Arg(0), Arg(1),
                      Map2Load("reserves", Arg(0), Arg(1)) + Arg(2)),
            Map2Store("reserves", Arg(1), Arg(0),
                      Map2Load("reserves", Arg(1), Arg(0)) + Arg(3)),
            Emit(SYNC_EVENT, data=[Map2Load("reserves", Arg(0), Arg(1)),
                                   Map2Load("reserves", Arg(1), Arg(0))]),
            Stop(),
        ],
    )


def _get_amount_out_function(
    fee_numerator: int, fee_denominator: int
) -> FunctionDef:
    """getAmountOut(amountIn, tokenIn, tokenOut) — view quote."""
    return FunctionDef(
        "getAmountOut(uint256,address,address)",
        [
            Assign("reserve_in", Map2Load("reserves", Arg(1), Arg(2))),
            Assign("reserve_out", Map2Load("reserves", Arg(2), Arg(1))),
            Require(Local("reserve_in").gt(0)),
            Assign("amount_in_with_fee", Arg(0) * fee_numerator),
            Return(
                (Local("amount_in_with_fee") * Local("reserve_out"))
                // (Local("reserve_in") * fee_denominator
                    + Local("amount_in_with_fee"))
            ),
        ],
    )


def make_uniswap_router() -> CompiledContract:
    """UniswapV2Router02-style router (0.3% fee)."""
    definition = ContractDef(
        name="UniswapV2Router02",
        scalars=["factory"],
        mappings=["reserves"],
        functions=[
            FunctionDef(
                "swapExactTokensForTokens(uint256,uint256,address,address)",
                _swap_exact_in_body(997, 1000),
            ),
            _add_liquidity_function(),
            _get_amount_out_function(997, 1000),
        ],
    )
    return compile_contract(definition)


def make_swap_router() -> CompiledContract:
    """SwapRouter-style router (0.05% fee tier, plus exact-output)."""
    definition = ContractDef(
        name="SwapRouter",
        scalars=["factory"],
        mappings=["reserves"],
        functions=[
            FunctionDef(
                "exactInputSingle(uint256,uint256,address,address)",
                _swap_exact_in_body(9995, 10000),
            ),
            FunctionDef(
                "exactOutputSingle(uint256,uint256,address,address)",
                # exactOutputSingle(amountOut, amountInMax, tokenIn, tokenOut)
                [
                    Assign("reserve_in", Map2Load("reserves", Arg(2), Arg(3))),
                    Assign("reserve_out",
                           Map2Load("reserves", Arg(3), Arg(2))),
                    Require(Local("reserve_out").gt(Arg(0))),
                    Assign(
                        "amount_in",
                        (Local("reserve_in") * Arg(0) * 10000)
                        // ((Local("reserve_out") - Arg(0)) * 9995)
                        + 1,
                    ),
                    Require(Local("amount_in").le(Arg(1))),
                    ExtCall(
                        target=Arg(2),
                        signature="transferFrom(address,address,uint256)",
                        args=[Caller(), SelfAddress(), Local("amount_in")],
                    ),
                    ExtCall(
                        target=Arg(3),
                        signature="transfer(address,uint256)",
                        args=[Caller(), Arg(0)],
                    ),
                    Map2Store("reserves", Arg(2), Arg(3),
                              Local("reserve_in") + Local("amount_in")),
                    Map2Store("reserves", Arg(3), Arg(2),
                              Local("reserve_out") - Arg(0)),
                    Emit(SWAP_EVENT, topics=[Caller(), Arg(2)],
                         data=[Arg(0)]),
                    Return(Local("amount_in")),
                ],
            ),
            _add_liquidity_function(),
        ],
    )
    return compile_contract(definition)
