"""OpenSea-style NFT marketplace.

Fixed-price sell orders over an internal token-ownership registry, with a
payable purchase path (value forwarding to the seller) and order
management — an arithmetic-heavy workload like the paper's OpenSea
(Wyvern) contract (Table 6: highest Arithmetic share of the TOP8).
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    CallValue,
    Caller,
    Const,
    ContractDef,
    Emit,
    FunctionDef,
    Local,
    MapLoad,
    MapStore,
    Require,
    Return,
    SLoad,
    SStore,
    Stop,
    TransferNative,
)
from .lang.compiler import CompiledContract, compile_contract

ORDER_CREATED_EVENT = "OrderCreated(address,uint256,uint256)"
ORDER_CANCELLED_EVENT = "OrderCancelled(uint256)"
ORDER_MATCHED_EVENT = "OrdersMatched(address,address,uint256)"


def make_marketplace() -> CompiledContract:
    """OpenSea-style exchange over an internal NFT registry."""
    definition = ContractDef(
        name="OpenSea",
        scalars=["next_order_id", "protocol_fee_bp", "fee_recipient"],
        mappings=[
            "token_owner",  # tokenId -> owner
            "order_token",  # orderId -> tokenId
            "order_price",  # orderId -> asking price
            "order_seller",  # orderId -> seller (0 = inactive)
        ],
        functions=[
            FunctionDef(
                "mintToken(uint256)",
                [
                    Require(MapLoad("token_owner", Arg(0)).eq(0)),
                    MapStore("token_owner", Arg(0), Caller()),
                    Stop(),
                ],
            ),
            FunctionDef(
                "createOrder(uint256,uint256)",
                # createOrder(tokenId, price)
                [
                    Require(MapLoad("token_owner", Arg(0)).eq(Caller())),
                    Require(Arg(1).gt(0)),
                    Assign("order_id", SLoad("next_order_id")),
                    MapStore("order_token", Local("order_id"), Arg(0)),
                    MapStore("order_price", Local("order_id"), Arg(1)),
                    MapStore("order_seller", Local("order_id"), Caller()),
                    SStore("next_order_id", Local("order_id") + 1),
                    Emit(
                        ORDER_CREATED_EVENT,
                        topics=[Caller()],
                        data=[Arg(0), Arg(1)],
                    ),
                    Return(Local("order_id")),
                ],
            ),
            FunctionDef(
                "cancelOrder(uint256)",
                [
                    Require(MapLoad("order_seller", Arg(0)).eq(Caller())),
                    MapStore("order_seller", Arg(0), Const(0)),
                    Emit(ORDER_CANCELLED_EVENT, data=[Arg(0)]),
                    Stop(),
                ],
            ),
            FunctionDef(
                "atomicMatch(uint256)",
                # Buy order Arg(0) at its asking price (attached as value).
                [
                    Assign("seller", MapLoad("order_seller", Arg(0))),
                    Require(Local("seller").ne(0)),
                    Assign("price", MapLoad("order_price", Arg(0))),
                    Require(CallValue().ge(Local("price"))),
                    Assign(
                        "fee",
                        (Local("price") * SLoad("protocol_fee_bp")) // 10_000,
                    ),
                    Assign("payout", Local("price") - Local("fee")),
                    # Settle: NFT to buyer, funds to seller and fee sink.
                    MapStore(
                        "token_owner",
                        MapLoad("order_token", Arg(0)),
                        Caller(),
                    ),
                    MapStore("order_seller", Arg(0), Const(0)),
                    TransferNative(Local("seller"), Local("payout")),
                    TransferNative(SLoad("fee_recipient"), Local("fee")),
                    Emit(
                        ORDER_MATCHED_EVENT,
                        topics=[Local("seller"), Caller()],
                        data=[Local("price")],
                    ),
                    Stop(),
                ],
                payable=True,
            ),
            FunctionDef(
                "ownerOf(uint256)",
                [Return(MapLoad("token_owner", Arg(0)))],
            ),
            FunctionDef(
                "orderPrice(uint256)",
                [Return(MapLoad("order_price", Arg(0)))],
            ),
        ],
    )
    return compile_contract(definition)
