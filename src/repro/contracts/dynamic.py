"""Dynamic-storage-key archetypes: workloads declarations cannot serve.

Every contract here derives its hot storage slots from *runtime* values —
token addresses picked per call, loop counters, delegatecalled layouts —
so no submitter can attach a truthful access-set declaration and the
conflict-aware packer sees them as opaque. They exist to exercise the
speculative (Block-STM) executor, which needs no declarations at all:

* :func:`make_path_router` — a multi-hop AMM router whose reserve slots
  depend on the ``(tokenIn, tokenOut)`` pair of *each hop* of a
  caller-chosen path.
* :func:`make_airdrop_distributor` — a batch airdrop whose recipient
  balance slots are computed in a loop (``firstRecipient + i``); the key
  *count* itself is a calldata argument.
* The delegatecall proxy hot path reuses :func:`~repro.contracts.proxy
  .make_proxy` in front of the path router (``RouterProxy`` in the
  registry): the proxy's storage is addressed by the *implementation's*
  layout behind a DELEGATECALL, one more indirection no declaration
  survives.

The router mirrors the proxy storage convention (scalars 0/1 reserved
for ``implementation``/``admin``) so the same compiled artifact serves
standalone and as a proxy implementation.
"""

from __future__ import annotations

from .lang import (
    Arg,
    Assign,
    Caller,
    Const,
    ContractDef,
    Emit,
    ExtCall,
    FunctionDef,
    Local,
    MapLoad,
    Map2Load,
    MapStore,
    Map2Store,
    Require,
    Return,
    SelfAddress,
    While,
)
from .lang.compiler import CompiledContract, compile_contract

PATH_SWAP_EVENT = "PathSwap(address,address,uint256)"
AIRDROP_EVENT = "Airdrop(address,address,uint256)"


def _hop(prefix: str, token_in, token_out, amount_in) -> list:
    """One constant-product hop (0.3% fee); output in ``<prefix>_out``.

    The reserve slots are ``keccak``-derived from *token_in*/*token_out*
    — calldata at run time, unknowable at admission time.
    """
    reserve_in = f"{prefix}_reserve_in"
    reserve_out = f"{prefix}_reserve_out"
    fee_amount = f"{prefix}_in_with_fee"
    out = f"{prefix}_out"
    return [
        Assign(reserve_in, Map2Load("reserves", token_in, token_out)),
        Assign(reserve_out, Map2Load("reserves", token_out, token_in)),
        Require(Local(reserve_in).gt(0)),
        Require(Local(reserve_out).gt(0)),
        Assign(fee_amount, amount_in * 997),
        Assign(
            out,
            (Local(fee_amount) * Local(reserve_out))
            // (Local(reserve_in) * 1000 + Local(fee_amount)),
        ),
        Map2Store("reserves", token_in, token_out,
                  Local(reserve_in) + amount_in),
        Map2Store("reserves", token_out, token_in,
                  Local(reserve_out) - Local(out)),
    ]


def make_path_router() -> CompiledContract:
    """Multi-hop AMM router: ``swapExactPath`` routes through two pools.

    ``swapExactPath(amountIn, minOut, token0, token1, token2)`` swaps
    token0 → token1 → token2 against this contract's own reserves,
    pulling the input leg from the caller and paying the final leg out
    of router inventory. Four reserve slots across two pools plus two
    ERC20 legs — every one keyed by calldata.
    """
    definition = ContractDef(
        name="PathRouter",
        scalars=["implementation", "admin"],
        mappings=["reserves"],
        functions=[
            FunctionDef(
                "swapExactPath(uint256,uint256,address,address,address)",
                [
                    *_hop("hop1", Arg(2), Arg(3), Arg(0)),
                    *_hop("hop2", Arg(3), Arg(4), Local("hop1_out")),
                    Require(Local("hop2_out").ge(Arg(1))),
                    ExtCall(
                        target=Arg(2),
                        signature="transferFrom(address,address,uint256)",
                        args=[Caller(), SelfAddress(), Arg(0)],
                    ),
                    ExtCall(
                        target=Arg(4),
                        signature="transfer(address,uint256)",
                        args=[Caller(), Local("hop2_out")],
                    ),
                    Emit(PATH_SWAP_EVENT, topics=[Caller(), Arg(2)],
                         data=[Local("hop2_out")]),
                    Return(Local("hop2_out")),
                ],
            ),
            FunctionDef(
                "quotePath(uint256,address,address,address)",
                # View quote for the same two-hop path.
                [
                    *_hop("q1", Arg(1), Arg(2), Arg(0)),
                    *_hop("q2", Arg(2), Arg(3), Local("q1_out")),
                    Return(Local("q2_out")),
                ],
            ),
        ],
    )
    return compile_contract(definition)


def make_airdrop_distributor() -> CompiledContract:
    """Batch airdrop: one transaction funds *count* consecutive accounts.

    ``airdrop(token, firstRecipient, count, amountEach)`` pulls
    ``count × amountEach`` from the *caller's* token balance (so two
    airdrops from different senders touch disjoint debit slots and can
    commit concurrently) and credits ``firstRecipient + i`` for each
    ``i < count`` — a write set whose size and members are both
    calldata-dependent.
    """
    definition = ContractDef(
        name="AirdropDistributor",
        scalars=["implementation", "admin"],
        mappings=["drops"],
        functions=[
            FunctionDef(
                "airdrop(address,address,uint256,uint256)",
                [
                    Require(Arg(2).gt(0)),
                    Assign("i", Const(0)),
                    While(
                        Local("i").lt(Arg(2)),
                        [
                            ExtCall(
                                target=Arg(0),
                                signature=(
                                    "transferFrom(address,address,uint256)"
                                ),
                                args=[
                                    Caller(),
                                    Arg(1) + Local("i"),
                                    Arg(3),
                                ],
                            ),
                            Assign("i", Local("i") + 1),
                        ],
                    ),
                    MapStore("drops", Caller(),
                             MapLoad("drops", Caller()) + Arg(2)),
                    Emit(AIRDROP_EVENT, topics=[Caller(), Arg(0)],
                         data=[Arg(2)]),
                    Return(Arg(2)),
                ],
            ),
            FunctionDef(
                "dropsOf(address)",
                [Return(MapLoad("drops", Arg(0)))],
            ),
        ],
    )
    return compile_contract(definition)
