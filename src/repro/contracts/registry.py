"""Contract registry and genesis deployment.

Builds the full synthetic mainnet the evaluation runs against: the TOP8
contract archetypes of the paper (Table 6), the auxiliary contracts they
interact with, pre-funded user accounts, token allowances, AMM reserves
and gateway quotas — so that generated workloads execute successfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.state import WorldState
from .ballot import make_ballot
from .collectible import make_cryptocat
from .dex import make_swap_router, make_uniswap_router
from .dynamic import make_airdrop_distributor, make_path_router
from .erc20 import (
    make_dai,
    make_link_token,
    make_oracle_receiver,
    make_plain_erc20,
    make_tether,
)
from .lang.compiler import CompiledContract
from .marketplace import make_marketplace
from .proxy import make_fiat_token_impl, make_gateway_impl, make_proxy
from .weth import make_weth

# -- fixed address plan -------------------------------------------------------
ADMIN = 0xAD317
TETHER = 0x1001
UNISWAP_ROUTER = 0x1002
FIAT_TOKEN_PROXY = 0x1003
OPENSEA = 0x1004
LINK_TOKEN = 0x1005
SWAP_ROUTER = 0x1006
DAI = 0x1007
GATEWAY_PROXY = 0x1008
WETH = 0x1009
BALLOT = 0x100A
CRYPTOCAT = 0x100B
#: Dynamic-storage-key archetypes (repro.contracts.dynamic): their hot
#: slots are calldata-derived, so they run undeclared — the speculative
#: (OCC) executor's workloads.
PATH_ROUTER = 0x100C
AIRDROP = 0x100D
ROUTER_PROXY = 0x100E
TOKEN_A = 0x2001
TOKEN_B = 0x2002
ORACLE_RECEIVER = 0x2003
FIAT_TOKEN_IMPL = 0x3001
GATEWAY_IMPL = 0x3002

#: The paper's TOP8 hotspot contracts, in Table 6 order.
TOP8_NAMES = [
    "TetherToken",
    "UniswapV2Router02",
    "FiatTokenProxy",
    "OpenSea",
    "LinkToken",
    "SwapRouter",
    "Dai",
    "MainchainGatewayProxy",
]

#: Contracts whose transactions count as "ERC20 transactions" for the
#: BPU comparison (paper Tables 8-9). TokenA/TokenB deliberately stay
#: outside the set: in BPU comparisons they stand in for non-standard
#: application contracts that the App engine cannot accelerate.
ERC20_NAMES = {
    "TetherToken", "Dai", "LinkToken", "FiatTokenProxy", "WETH9",
}

TOKEN_SUPPLY = 10**15  # per-user genesis token balance
NATIVE_SUPPLY = 10**24  # per-user genesis native balance
HUGE_ALLOWANCE = 10**30


@dataclass
class DeployedContract:
    """One contract instance in the deployment."""

    name: str
    address: int
    artifact: CompiledContract
    #: Artifact whose storage layout governs this address (differs from
    #: ``artifact`` for proxies, whose logic lives elsewhere).
    storage_artifact: CompiledContract = None  # type: ignore[assignment]
    is_erc20: bool = False

    def __post_init__(self) -> None:
        if self.storage_artifact is None:
            self.storage_artifact = self.artifact


@dataclass
class Deployment:
    """The genesis world: state + contracts + user accounts."""

    state: WorldState
    contracts: dict[str, DeployedContract]
    accounts: list[int]
    admin: int = ADMIN

    def contract(self, name: str) -> DeployedContract:
        return self.contracts[name]

    def address_of(self, name: str) -> int:
        return self.contracts[name].address

    def by_address(self, address: int) -> DeployedContract | None:
        for deployed in self.contracts.values():
            if deployed.address == address:
                return deployed
        return None

    def top8(self) -> list[DeployedContract]:
        """The paper's TOP8 hotspot contracts, Table 6 order."""
        return [self.contracts[name] for name in TOP8_NAMES]

    # -- storage helpers (route through the storage artifact's layout) -----
    def token_balance(self, name: str, holder: int) -> int:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.mapping_value_slot(
            "balances", holder
        )
        return self.state.get_storage(deployed.address, slot)

    def set_token_balance(self, name: str, holder: int, amount: int) -> None:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.mapping_value_slot(
            "balances", holder
        )
        self.state.set_storage(deployed.address, slot, amount)

    def set_allowance(
        self, name: str, owner: int, spender: int, amount: int
    ) -> None:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.mapping2_value_slot(
            "allowances", owner, spender
        )
        self.state.set_storage(deployed.address, slot, amount)

    def set_scalar(self, name: str, scalar: str, value: int) -> None:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.scalar_slots[scalar]
        self.state.set_storage(deployed.address, slot, value)

    def set_mapping(
        self, name: str, map_name: str, key: int, value: int
    ) -> None:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.mapping_value_slot(map_name, key)
        self.state.set_storage(deployed.address, slot, value)

    def set_mapping2(
        self, name: str, map_name: str, key1: int, key2: int, value: int
    ) -> None:
        deployed = self.contracts[name]
        slot = deployed.storage_artifact.mapping2_value_slot(
            map_name, key1, key2
        )
        self.state.set_storage(deployed.address, slot, value)


def compile_suite() -> dict[str, CompiledContract]:
    """Compile every contract in the suite (pure, no state)."""
    return {
        "TetherToken": make_tether(),
        "Dai": make_dai(),
        "LinkToken": make_link_token(),
        "UniswapV2Router02": make_uniswap_router(),
        "SwapRouter": make_swap_router(),
        "OpenSea": make_marketplace(),
        "FiatTokenProxy": make_proxy("FiatTokenProxy"),
        "FiatTokenV2": make_fiat_token_impl(),
        "MainchainGatewayProxy": make_proxy("MainchainGatewayProxy"),
        "MainchainGatewayManager": make_gateway_impl(),
        "WETH9": make_weth(),
        "Ballot": make_ballot(),
        "CryptoCat": make_cryptocat(),
        "TokenA": make_plain_erc20("TokenA"),
        "TokenB": make_plain_erc20("TokenB"),
        "OracleReceiver": make_oracle_receiver(),
        "PathRouter": make_path_router(),
        "AirdropDistributor": make_airdrop_distributor(),
        "RouterProxy": make_proxy("RouterProxy"),
    }


def build_deployment(
    num_accounts: int = 64, account_base: int = 0x100000
) -> Deployment:
    """Deploy the suite into a fresh world state and seed balances."""
    artifacts = compile_suite()
    state = WorldState()
    accounts = [account_base + i for i in range(num_accounts)]

    placements = {
        "TetherToken": TETHER,
        "Dai": DAI,
        "LinkToken": LINK_TOKEN,
        "UniswapV2Router02": UNISWAP_ROUTER,
        "SwapRouter": SWAP_ROUTER,
        "OpenSea": OPENSEA,
        "FiatTokenProxy": FIAT_TOKEN_PROXY,
        "FiatTokenV2": FIAT_TOKEN_IMPL,
        "MainchainGatewayProxy": GATEWAY_PROXY,
        "MainchainGatewayManager": GATEWAY_IMPL,
        "WETH9": WETH,
        "Ballot": BALLOT,
        "CryptoCat": CRYPTOCAT,
        "TokenA": TOKEN_A,
        "TokenB": TOKEN_B,
        "OracleReceiver": ORACLE_RECEIVER,
        "PathRouter": PATH_ROUTER,
        "AirdropDistributor": AIRDROP,
        "RouterProxy": ROUTER_PROXY,
    }
    contracts: dict[str, DeployedContract] = {}
    for name, artifact in artifacts.items():
        address = placements[name]
        artifact.deploy(state, address)
        contracts[name] = DeployedContract(
            name=name,
            address=address,
            artifact=artifact,
            is_erc20=name in ERC20_NAMES,
        )
    # Proxies execute their implementation's logic against their own
    # storage; route storage helpers through the implementation layout.
    contracts["FiatTokenProxy"].storage_artifact = artifacts["FiatTokenV2"]
    contracts["MainchainGatewayProxy"].storage_artifact = artifacts[
        "MainchainGatewayManager"
    ]
    contracts["RouterProxy"].storage_artifact = artifacts["PathRouter"]

    deployment = Deployment(
        state=state, contracts=contracts, accounts=accounts
    )
    _seed_genesis(deployment)
    return deployment


def _seed_genesis(d: Deployment) -> None:
    state = d.state
    parties = d.accounts + [d.admin]

    # Native balances for users, contracts that pay out, and the admin.
    for account in parties:
        state.set_balance(account, NATIVE_SUPPLY)
    for holder in (WETH, OPENSEA, CRYPTOCAT, GATEWAY_PROXY):
        state.set_balance(holder, NATIVE_SUPPLY)

    # Proxy wiring.
    d.set_scalar("FiatTokenProxy", "implementation", FIAT_TOKEN_IMPL)
    d.set_scalar("FiatTokenProxy", "admin", d.admin)
    d.set_scalar("MainchainGatewayProxy", "implementation", GATEWAY_IMPL)
    d.set_scalar("MainchainGatewayProxy", "admin", d.admin)
    # RouterProxy delegates straight to the standalone PathRouter code
    # (proxy storage, router logic — the delegatecall hot path).
    d.set_scalar("RouterProxy", "implementation", PATH_ROUTER)
    d.set_scalar("RouterProxy", "admin", d.admin)

    # Tether configuration: owner, 10bp fee, unpaused.
    d.set_scalar("TetherToken", "owner", d.admin)
    d.set_scalar("TetherToken", "fee_rate", 10)
    d.set_mapping("Dai", "wards", d.admin, 1)
    # A sacrificial blacklisted account for destroyBlackFunds workloads.
    d.set_mapping("TetherToken", "blacklist", 0xBADD1E, 1)
    d.set_token_balance("TetherToken", 0xBADD1E, 1000)
    d.set_mapping("FiatTokenProxy", "minters", d.admin, 1)

    # Token balances and allowances. The dynamic-archetype spenders
    # (path router, its proxy, the airdrop distributor) get the same
    # pre-approval so undeclared OCC workloads execute successfully.
    spenders = (UNISWAP_ROUTER, SWAP_ROUTER, GATEWAY_PROXY,
                PATH_ROUTER, ROUTER_PROXY, AIRDROP)
    for token in ("TetherToken", "Dai", "LinkToken", "FiatTokenProxy",
                  "TokenA", "TokenB"):
        for account in parties:
            d.set_token_balance(token, account, TOKEN_SUPPLY)
            for spender in spenders:
                d.set_allowance(token, account, spender, HUGE_ALLOWANCE)
        # Ring allowance over user accounts: account i may spend from
        # account i-1, giving transferFrom workloads a pre-approved owner.
        for i, account in enumerate(d.accounts):
            d.set_allowance(
                token, d.accounts[i - 1], account, HUGE_ALLOWANCE
            )
        # Routers and gateway need inventory to pay out swaps/withdrawals.
        for holder in spenders:
            d.set_token_balance(token, holder, TOKEN_SUPPLY * 1000)
        d.set_scalar(
            token, "total_supply",
            TOKEN_SUPPLY * (len(parties) + 1000 * len(spenders)),
        )

    # AMM reserves for the trading pairs used by workloads.
    pairs = [
        (TOKEN_A, TOKEN_B),
        (TETHER, DAI),
        (TOKEN_A, TETHER),
        (TOKEN_B, DAI),
    ]
    for router in ("UniswapV2Router02", "SwapRouter"):
        for left, right in pairs:
            d.set_mapping2(router, "reserves", left, right, 10**13)
            d.set_mapping2(router, "reserves", right, left, 10**13)

    # Path-router reserves: every ordered pair of the four route tokens
    # holds liquidity, so any caller-chosen two-hop path is viable. The
    # proxy holds its *own* reserves (delegatecalled code addresses
    # proxy storage).
    route_tokens = (TETHER, DAI, TOKEN_A, TOKEN_B)
    for router in ("PathRouter", "RouterProxy"):
        for left in route_tokens:
            for right in route_tokens:
                if left != right:
                    d.set_mapping2(router, "reserves", left, right, 10**13)

    # WETH: users start with wrapped balance (native escrow is above),
    # plus the same ring allowance as the other tokens.
    for i, account in enumerate(d.accounts):
        d.set_mapping("WETH9", "balances", account, TOKEN_SUPPLY)
        d.set_allowance("WETH9", d.accounts[i - 1], account,
                        HUGE_ALLOWANCE)

    # Gateway: generous withdrawal quota per token.
    for token in (TETHER, DAI, TOKEN_A, TOKEN_B):
        d.set_mapping("MainchainGatewayProxy", "daily_quota", token, 10**30)

    # OpenSea: fee config.
    d.set_scalar("OpenSea", "protocol_fee_bp", 250)
    d.set_scalar("OpenSea", "fee_recipient", d.admin)

    # CryptoCat: hour-long auctions.
    d.set_scalar("CryptoCat", "auction_duration", 3600)

    # Ballot: ten proposals, every user enfranchised.
    d.set_scalar("Ballot", "chairperson", d.admin)
    d.set_scalar("Ballot", "proposal_count", 10)
    for account in d.accounts:
        d.set_mapping("Ballot", "voter_weight", account, 1)

    # Marketplace inventory: pre-minted NFTs and open sell orders.
    tokens, orders, next_nft = marketplace_genesis(d.accounts)
    for owner, token_id in tokens:
        d.set_mapping("OpenSea", "token_owner", token_id, owner)
    for order_id, seller, price, token_id in orders:
        d.set_mapping("OpenSea", "token_owner", token_id, 0)
        d.set_mapping("OpenSea", "order_token", order_id, token_id)
        d.set_mapping("OpenSea", "order_price", order_id, price)
        d.set_mapping("OpenSea", "order_seller", order_id, seller)
    d.set_scalar("OpenSea", "next_order_id", len(orders))

    # Collectible inventory: owned cats plus live Dutch auctions.
    cats, auctions, next_cat = cryptocat_genesis(d.accounts)
    for owner, cat_id, genes in cats:
        d.set_mapping("CryptoCat", "cat_owner", cat_id, owner)
        d.set_mapping("CryptoCat", "cat_genes", cat_id, genes)
    for cat_id, seller, start_price, end_price in auctions:
        d.set_mapping("CryptoCat", "cat_owner", cat_id, 0)
        d.set_mapping("CryptoCat", "auction_start_price", cat_id,
                      start_price)
        d.set_mapping("CryptoCat", "auction_end_price", cat_id, end_price)
        d.set_mapping("CryptoCat", "auction_started_at", cat_id,
                      1_600_000_000)
        d.set_mapping("CryptoCat", "auction_seller", cat_id, seller)
    d.set_scalar("CryptoCat", "next_cat_id", next_cat)

    state.clear_journal()


def marketplace_genesis(
    accounts: list[int],
) -> tuple[list[tuple[int, int]], list[tuple[int, int, int, int]], int]:
    """Deterministic OpenSea inventory shared by genesis and workloads.

    Returns (owned tokens as (owner, tokenId), open orders as
    (orderId, seller, price, tokenId), next free tokenId).
    """
    count = max(64, 4 * len(accounts))
    next_nft = 10_000
    tokens: list[tuple[int, int]] = []
    for i in range(count):
        tokens.append((accounts[i % len(accounts)], next_nft))
        next_nft += 1
    orders: list[tuple[int, int, int, int]] = []
    for i in range(count):
        seller = accounts[(i * 7) % len(accounts)]
        price = 10**9 * (1 + i % 5)
        orders.append((i, seller, price, next_nft))
        next_nft += 1
    return tokens, orders, next_nft


def cryptocat_genesis(
    accounts: list[int],
) -> tuple[list[tuple[int, int, int]], list[tuple[int, int, int, int]], int]:
    """Deterministic CryptoCat inventory shared by genesis and workloads.

    Returns (cats as (owner, catId, genes), auctions as
    (catId, seller, startPrice, endPrice), next free catId).
    """
    from ..crypto import keccak256_int

    count = max(64, 4 * len(accounts))
    cats = [
        (
            accounts[i % len(accounts)],
            i,
            keccak256_int(i.to_bytes(4, "big")),
        )
        for i in range(count)
    ]
    auctions = [
        (i, accounts[(i * 5) % len(accounts)], 10**10, 10**8)
        for i in range(count, 2 * count)
    ]
    return cats, auctions, 2 * count
