"""Compiler: contract AST → EVM assembly → bytecode.

The emitted code follows the canonical layout the paper's hotspot chunker
expects (Fig. 10b):

* **Compare chunk** — selector extraction and the PUSH4/EQ/PUSH2/JUMPI
  dispatch ladder (this is exactly the folding example of section 3.3.4).
* **Check chunk** — per-function CALLVALUE check for non-payable entries.
* **Execute chunks** — the function bodies.
* **End** — RETURN/STOP/REVERT terminators.

Memory map of compiled frames::

    0x000-0x03f   hash scratch (mapping-slot computation, Sha3)
    0x040-0x05f   return-value scratch
    0x080-0x3ff   named locals (32 bytes each)
    0x400-0x7df   external-call calldata / event-data build area
    0x7e0-0x7ff   external-call return buffer
"""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import keccak256_int, selector, selector_int
from ..asm import assemble, label_addresses
from . import ast

HASH_SCRATCH = 0x00
RETURN_SCRATCH = 0x40
LOCALS_BASE = 0x80
LOCALS_LIMIT = 0x400
CALL_AREA = 0x400
RETURN_BUFFER = 0x7E0


class CompileError(ValueError):
    """Raised for malformed contract definitions."""


@dataclass(frozen=True)
class CompiledFunction:
    """Metadata for one dispatched entry function."""

    name: str
    signature: str
    selector: bytes
    arg_count: int
    payable: bool
    entry_label: str  # start of the Check chunk (or body when payable)
    body_label: str  # start of the Execute chunk


@dataclass
class CompiledContract:
    """Compilation result: bytecode plus structural metadata."""

    name: str
    bytecode: bytes
    asm_source: str
    labels: dict[str, int]
    functions: list[CompiledFunction]
    scalar_slots: dict[str, int]
    mapping_slots: dict[str, int]

    def function(self, name: str) -> CompiledFunction:
        """Look up a function's metadata by short name."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"{self.name} has no function {name!r}")

    def selectors(self) -> list[bytes]:
        """All dispatchable selectors."""
        return [fn.selector for fn in self.functions]

    @property
    def compare_chunk_end(self) -> int:
        """Byte offset where the Compare chunk (dispatch ladder) ends."""
        starts = [
            self.labels[fn.entry_label] for fn in self.functions
        ] or [len(self.bytecode)]
        fallback = self.labels.get("__fallback")
        if fallback is not None:
            starts.append(fallback)
        return min(starts)

    def deploy(self, state, address: int) -> None:
        """Install the runtime bytecode directly at *address*."""
        state.set_code(address, self.bytecode)

    def mapping_value_slot(self, map_name: str, key: int) -> int:
        """Storage slot of ``mapping[key]`` (Solidity layout)."""
        slot = self.mapping_slots[map_name]
        return keccak256_int(
            key.to_bytes(32, "big") + slot.to_bytes(32, "big")
        )

    def mapping2_value_slot(self, map_name: str, key1: int, key2: int) -> int:
        """Storage slot of ``mapping[key1][key2]``."""
        inner = self.mapping_value_slot(map_name, key1)
        return keccak256_int(
            key2.to_bytes(32, "big") + inner.to_bytes(32, "big")
        )


class _Emitter:
    """Accumulates assembly lines with fresh-label generation."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._label_counter = 0

    def emit(self, *instructions: str) -> None:
        self.lines.extend(instructions)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f"__{hint}_{self._label_counter}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


_BIN_SIMPLE = {
    "+": "ADD",
    "-": "SUB",
    "*": "MUL",
    "/": "DIV",
    "%": "MOD",
    "&": "AND",
    "|": "OR",
    "^": "XOR",
    "<": "LT",
    ">": "GT",
    "==": "EQ",
}

_BIN_NEGATED = {"<=": "GT", ">=": "LT", "!=": "EQ"}


class _FunctionCompiler:
    """Compiles one function body within a contract's storage layout."""

    def __init__(
        self,
        contract: "_ContractLayout",
        emitter: _Emitter,
        arg_types: tuple[str, ...] = (),
    ) -> None:
        self.layout = contract
        self.out = emitter
        self.arg_types = arg_types
        self.locals: dict[str, int] = {}

    # -- locals ------------------------------------------------------------
    def local_offset(self, name: str, create: bool = False) -> int:
        if name not in self.locals:
            if not create:
                raise CompileError(f"undefined local {name!r}")
            offset = LOCALS_BASE + 32 * len(self.locals)
            if offset >= LOCALS_LIMIT:
                raise CompileError("too many locals")
            self.locals[name] = offset
        return self.locals[name]

    # -- expressions ----------------------------------------------------------
    def expr(self, node: ast.Expr) -> None:
        """Emit code leaving the expression value on the stack top."""
        out = self.out
        if isinstance(node, ast.Const):
            out.emit(f"PUSH {node.value:#x}")
        elif isinstance(node, ast.Arg):
            out.emit(f"PUSH {4 + 32 * node.index:#x}", "CALLDATALOAD")
            if self.arg_types and node.index < len(self.arg_types):
                # Solidity cleans address-typed arguments with an AND
                # mask; emitting it keeps the instruction mix realistic
                # (paper Table 6).
                if self.arg_types[node.index] == "address":
                    out.emit(f"PUSH20 {(1 << 160) - 1:#x}", "AND")
                elif self.arg_types[node.index] == "bool":
                    out.emit("PUSH 0x1", "AND")
        elif isinstance(node, ast.Local):
            out.emit(f"PUSH {self.local_offset(node.name):#x}", "MLOAD")
        elif isinstance(node, ast.EnvValue):
            out.emit(node.opcode)
        elif isinstance(node, ast.SLoad):
            out.emit(f"PUSH {self.layout.scalar_slot(node.name):#x}", "SLOAD")
        elif isinstance(node, ast.MapLoad):
            self._mapping_slot(node.map_name, node.key)
            out.emit("SLOAD")
        elif isinstance(node, ast.Map2Load):
            self._mapping2_slot(node.map_name, node.key1, node.key2)
            out.emit("SLOAD")
        elif isinstance(node, ast.BalanceOf):
            self.expr(node.address)
            out.emit("BALANCE")
        elif isinstance(node, ast.Bin):
            self._binary(node)
        elif isinstance(node, ast.Not):
            self.expr(node.operand)
            out.emit("ISZERO")
        elif isinstance(node, ast.Sha3):
            self.expr(node.first)
            out.emit(f"PUSH {HASH_SCRATCH:#x}", "MSTORE")
            self.expr(node.second)
            out.emit(f"PUSH {HASH_SCRATCH + 32:#x}", "MSTORE")
            out.emit("PUSH 0x40", f"PUSH {HASH_SCRATCH:#x}", "SHA3")
        else:
            raise CompileError(f"unsupported expression {node!r}")

    def _binary(self, node: ast.Bin) -> None:
        # Binary opcodes consume the stack *top* as their first operand, so
        # emit the right operand first, then the left.
        self.expr(node.right)
        self.expr(node.left)
        if node.op in _BIN_SIMPLE:
            self.out.emit(_BIN_SIMPLE[node.op])
        elif node.op in _BIN_NEGATED:
            self.out.emit(_BIN_NEGATED[node.op], "ISZERO")
        else:
            raise CompileError(f"unsupported operator {node.op!r}")

    def _mapping_slot(self, map_name: str, key: ast.Expr) -> None:
        """Leave keccak(key ‖ slot) on the stack."""
        slot = self.layout.mapping_slot(map_name)
        self.expr(key)
        self.out.emit(f"PUSH {HASH_SCRATCH:#x}", "MSTORE")
        self.out.emit(f"PUSH {slot:#x}", f"PUSH {HASH_SCRATCH + 32:#x}",
                      "MSTORE")
        self.out.emit("PUSH 0x40", f"PUSH {HASH_SCRATCH:#x}", "SHA3")

    def _mapping2_slot(
        self, map_name: str, key1: ast.Expr, key2: ast.Expr
    ) -> None:
        """Leave keccak(key2 ‖ keccak(key1 ‖ slot)) on the stack."""
        self._mapping_slot(map_name, key1)  # inner slot on stack
        self.expr(key2)
        self.out.emit(f"PUSH {HASH_SCRATCH:#x}", "MSTORE")  # mem[0] = key2
        self.out.emit(f"PUSH {HASH_SCRATCH + 32:#x}", "MSTORE")  # mem[32] = inner
        self.out.emit("PUSH 0x40", f"PUSH {HASH_SCRATCH:#x}", "SHA3")

    # -- statements ----------------------------------------------------------------
    def block(self, statements: list[ast.Statement]) -> None:
        for statement in statements:
            self.statement(statement)

    def statement(self, node: ast.Statement) -> None:
        out = self.out
        if isinstance(node, ast.Assign):
            self.expr(node.value)
            offset = self.local_offset(node.name, create=True)
            out.emit(f"PUSH {offset:#x}", "MSTORE")
        elif isinstance(node, ast.SStore):
            self.expr(node.value)
            out.emit(f"PUSH {self.layout.scalar_slot(node.name):#x}", "SSTORE")
        elif isinstance(node, ast.MapStore):
            self.expr(node.value)
            self._mapping_slot(node.map_name, node.key)
            out.emit("SSTORE")
        elif isinstance(node, ast.Map2Store):
            self.expr(node.value)
            self._mapping2_slot(node.map_name, node.key1, node.key2)
            out.emit("SSTORE")
        elif isinstance(node, ast.Require):
            self.expr(node.condition)
            out.emit("ISZERO", "PUSH @__revert", "JUMPI")
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.Return):
            if node.value is None:
                out.emit("PUSH 0x0", "PUSH 0x0", "RETURN")
            else:
                self.expr(node.value)
                out.emit(f"PUSH {RETURN_SCRATCH:#x}", "MSTORE")
                out.emit("PUSH 0x20", f"PUSH {RETURN_SCRATCH:#x}", "RETURN")
        elif isinstance(node, ast.Stop):
            out.emit("STOP")
        elif isinstance(node, ast.Emit):
            self._emit_event(node)
        elif isinstance(node, ast.ExtCall):
            self._ext_call(node)
        elif isinstance(node, ast.TransferNative):
            # CALL pops gas, to, value, in_off, in_len, out_off, out_len.
            out.emit("PUSH 0x0", "PUSH 0x0", "PUSH 0x0", "PUSH 0x0")
            self.expr(node.amount)
            self.expr(node.to)
            out.emit("GAS", "CALL", "ISZERO", "PUSH @__revert", "JUMPI")
        elif isinstance(node, ast.DelegateAll):
            self._delegate_all(node)
        else:
            raise CompileError(f"unsupported statement {node!r}")

    def _if(self, node: ast.If) -> None:
        out = self.out
        if node.else_body:
            else_label = out.fresh("else")
            end_label = out.fresh("endif")
            self.expr(node.condition)
            out.emit("ISZERO", f"PUSH @{else_label}", "JUMPI")
            self.block(node.then_body)
            out.emit(f"PUSH @{end_label}", "JUMP")
            out.label(else_label)
            self.block(node.else_body)
            out.label(end_label)
        else:
            end_label = out.fresh("endif")
            self.expr(node.condition)
            out.emit("ISZERO", f"PUSH @{end_label}", "JUMPI")
            self.block(node.then_body)
            out.label(end_label)

    def _while(self, node: ast.While) -> None:
        out = self.out
        head = out.fresh("while")
        end = out.fresh("wend")
        out.label(head)
        self.expr(node.condition)
        out.emit("ISZERO", f"PUSH @{end}", "JUMPI")
        self.block(node.body)
        out.emit(f"PUSH @{head}", "JUMP")
        out.label(end)

    def _emit_event(self, node: ast.Emit) -> None:
        out = self.out
        if len(node.topics) > 3:
            raise CompileError("at most 3 indexed topics")
        for i, value in enumerate(node.data):
            self.expr(value)
            out.emit(f"PUSH {CALL_AREA + 32 * i:#x}", "MSTORE")
        # LOGn pops offset, length, topic1..topicn — build bottom-up.
        event_topic = keccak256_int(node.event.encode("ascii"))
        for topic in reversed(node.topics):
            self.expr(topic)
        out.emit(f"PUSH32 {event_topic:#x}")
        out.emit(f"PUSH {32 * len(node.data):#x}")
        out.emit(f"PUSH {CALL_AREA:#x}")
        out.emit(f"LOG{1 + len(node.topics)}")

    def _ext_call(self, node: ast.ExtCall) -> None:
        out = self.out
        sel = selector_int(node.signature)
        # Build calldata: selector word then 32-byte args.
        out.emit(f"PUSH4 {sel:#010x}", "PUSH 0xe0", "SHL",
                 f"PUSH {CALL_AREA:#x}", "MSTORE")
        for i, arg in enumerate(node.args):
            self.expr(arg)
            out.emit(f"PUSH {CALL_AREA + 4 + 32 * i:#x}", "MSTORE")
        args_length = 4 + 32 * len(node.args)
        # CALL pops gas, to, value, in_off, in_len, out_off, out_len.
        out.emit("PUSH 0x20", f"PUSH {RETURN_BUFFER:#x}")
        out.emit(f"PUSH {args_length:#x}", f"PUSH {CALL_AREA:#x}")
        if node.static:
            self.expr(node.target)
            out.emit("GAS", "STATICCALL")
        else:
            if node.value is None:
                out.emit("PUSH 0x0")
            else:
                self.expr(node.value)
            self.expr(node.target)
            out.emit("GAS", "CALL")
        if node.require_success:
            out.emit("ISZERO", "PUSH @__revert", "JUMPI")
            if node.result is not None:
                offset = self.local_offset(node.result, create=True)
                out.emit(f"PUSH {RETURN_BUFFER:#x}", "MLOAD",
                         f"PUSH {offset:#x}", "MSTORE")
        else:
            if node.result is not None:
                offset = self.local_offset(node.result, create=True)
                out.emit(f"PUSH {offset:#x}", "MSTORE")
            else:
                out.emit("POP")

    def _delegate_all(self, node: ast.DelegateAll) -> None:
        out = self.out
        ok = out.fresh("dok")
        # Copy the entire calldata to memory 0.
        out.emit("CALLDATASIZE", "PUSH 0x0", "PUSH 0x0", "CALLDATACOPY")
        # DELEGATECALL pops gas, to, in_off, in_len, out_off, out_len.
        out.emit("PUSH 0x0", "PUSH 0x0", "CALLDATASIZE", "PUSH 0x0")
        self.expr(node.target)
        out.emit("GAS", "DELEGATECALL")
        # Copy whatever came back and propagate success/revert.
        out.emit("RETURNDATASIZE", "PUSH 0x0", "PUSH 0x0", "RETURNDATACOPY")
        out.emit(f"PUSH @{ok}", "JUMPI")
        out.emit("RETURNDATASIZE", "PUSH 0x0", "REVERT")
        out.label(ok)
        out.emit("RETURNDATASIZE", "PUSH 0x0", "RETURN")


class _ContractLayout:
    """Storage-slot assignment for a contract definition."""

    def __init__(self, definition: ast.ContractDef) -> None:
        self.definition = definition
        self.scalars = {name: i for i, name in enumerate(definition.scalars)}
        base = len(definition.scalars)
        self.mappings = {
            name: base + i for i, name in enumerate(definition.mappings)
        }

    def scalar_slot(self, name: str) -> int:
        if name not in self.scalars:
            raise CompileError(f"undefined storage scalar {name!r}")
        return self.scalars[name]

    def mapping_slot(self, name: str) -> int:
        if name not in self.mappings:
            raise CompileError(f"undefined mapping {name!r}")
        return self.mappings[name]


def compile_contract(definition: ast.ContractDef) -> CompiledContract:
    """Compile a contract definition to runtime bytecode."""
    layout = _ContractLayout(definition)
    out = _Emitter()
    functions_meta: list[CompiledFunction] = []

    # --- Compare chunk: selector dispatch ladder (paper Fig. 10b) --------
    out.emit("PUSH 0x0", "CALLDATALOAD", "PUSH 0xe0", "SHR")
    for fn in definition.functions:
        sel = selector_int(fn.signature)
        out.emit("DUP1", f"PUSH4 {sel:#010x}", "EQ",
                 f"PUSH @__fn_{fn.name}", "JUMPI")

    # --- Fallback --------------------------------------------------------
    out.label("__fallback")
    if definition.fallback is not None:
        fallback_compiler = _FunctionCompiler(layout, out)
        fallback_compiler.block(definition.fallback)
    out.emit("PUSH 0x0", "PUSH 0x0", "REVERT")

    # --- Shared revert target (Require / failed calls) ---------------------
    out.label("__revert")
    out.emit("PUSH 0x0", "PUSH 0x0", "REVERT")

    # --- Per-function Check + Execute chunks ------------------------------
    for fn in definition.functions:
        entry_label = f"__fn_{fn.name}"
        body_label = f"__fnbody_{fn.name}"
        out.label(entry_label)
        if not fn.payable:
            # Check chunk: non-payable functions reject attached value.
            out.emit("CALLVALUE", "ISZERO", f"PUSH @{body_label}", "JUMPI")
            out.emit("PUSH 0x0", "PUSH 0x0", "REVERT")
        out.label(body_label)
        params = fn.signature.split("(", 1)[1].rstrip(")")
        arg_types = tuple(params.split(",")) if params else ()
        compiler = _FunctionCompiler(layout, out, arg_types=arg_types)
        compiler.block(fn.body)
        # Implicit STOP when the body can fall through.
        out.emit("STOP")
        functions_meta.append(
            CompiledFunction(
                name=fn.name,
                signature=fn.signature,
                selector=selector(fn.signature),
                arg_count=fn.arg_count,
                payable=fn.payable,
                entry_label=entry_label,
                body_label=body_label,
            )
        )

    source = out.source()
    bytecode = assemble(source)
    labels = label_addresses(source)
    return CompiledContract(
        name=definition.name,
        bytecode=bytecode,
        asm_source=source,
        labels=labels,
        functions=functions_meta,
        scalar_slots=dict(layout.scalars),
        mapping_slots=dict(layout.mappings),
    )
