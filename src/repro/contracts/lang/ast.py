"""AST for the contract language.

Expressions evaluate to one 256-bit word on the EVM stack; statements
manage storage, locals (compiled to fixed memory slots), control flow,
events and external calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for expressions (one stack word)."""

    # Operator sugar so contract bodies read naturally.
    def __add__(self, other: "Expr | int") -> "Bin":
        return Bin("+", self, _wrap(other))

    def __sub__(self, other: "Expr | int") -> "Bin":
        return Bin("-", self, _wrap(other))

    def __mul__(self, other: "Expr | int") -> "Bin":
        return Bin("*", self, _wrap(other))

    def __floordiv__(self, other: "Expr | int") -> "Bin":
        return Bin("/", self, _wrap(other))

    def __mod__(self, other: "Expr | int") -> "Bin":
        return Bin("%", self, _wrap(other))

    def __and__(self, other: "Expr | int") -> "Bin":
        return Bin("&", self, _wrap(other))

    def __or__(self, other: "Expr | int") -> "Bin":
        return Bin("|", self, _wrap(other))

    def lt(self, other: "Expr | int") -> "Bin":
        return Bin("<", self, _wrap(other))

    def gt(self, other: "Expr | int") -> "Bin":
        return Bin(">", self, _wrap(other))

    def le(self, other: "Expr | int") -> "Bin":
        return Bin("<=", self, _wrap(other))

    def ge(self, other: "Expr | int") -> "Bin":
        return Bin(">=", self, _wrap(other))

    def eq(self, other: "Expr | int") -> "Bin":
        return Bin("==", self, _wrap(other))

    def ne(self, other: "Expr | int") -> "Bin":
        return Bin("!=", self, _wrap(other))


def _wrap(value: "Expr | int") -> "Expr":
    return value if isinstance(value, Expr) else Const(value)


@dataclass
class Const(Expr):
    """A literal 256-bit constant."""

    value: int


@dataclass
class Arg(Expr):
    """The i-th calldata argument (CALLDATALOAD at 4 + 32*i)."""

    index: int


@dataclass
class Local(Expr):
    """A named local variable (compiled to an MLOAD of its memory slot)."""

    name: str


@dataclass
class EnvValue(Expr):
    """A transaction/block attribute (fixed-access instruction)."""

    opcode: str  # e.g. "CALLER", "CALLVALUE", "TIMESTAMP"


def Caller() -> EnvValue:
    """msg.sender."""
    return EnvValue("CALLER")


def CallValue() -> EnvValue:
    """msg.value."""
    return EnvValue("CALLVALUE")


def Timestamp() -> EnvValue:
    """block.timestamp."""
    return EnvValue("TIMESTAMP")


def SelfAddress() -> EnvValue:
    """address(this)."""
    return EnvValue("ADDRESS")


def env(opcode: str) -> EnvValue:
    """Any zero-operand fixed-access attribute by opcode name."""
    return EnvValue(opcode)


@dataclass
class SLoad(Expr):
    """Read a named scalar storage variable."""

    name: str


@dataclass
class MapLoad(Expr):
    """Read ``mapping[key]`` (slot = keccak(key ‖ map_slot))."""

    map_name: str
    key: Expr


@dataclass
class Map2Load(Expr):
    """Read ``mapping[k1][k2]`` (nested Solidity layout)."""

    map_name: str
    key1: Expr
    key2: Expr


@dataclass
class BalanceOf(Expr):
    """Native token balance of an address (BALANCE)."""

    address: Expr


@dataclass
class Bin(Expr):
    """Binary operation over two expressions."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Not(Expr):
    """Logical negation (ISZERO)."""

    operand: Expr


@dataclass
class Sha3(Expr):
    """Hash of two words (SHA3 over a 64-byte scratch region)."""

    first: Expr
    second: Expr


class Statement:
    """Base class for statements."""


@dataclass
class Assign(Statement):
    """``local = expr`` (locals live in fixed memory slots)."""

    name: str
    value: Expr


@dataclass
class SStore(Statement):
    """Write a named scalar storage variable."""

    name: str
    value: Expr


@dataclass
class MapStore(Statement):
    """``mapping[key] = value``."""

    map_name: str
    key: Expr
    value: Expr


@dataclass
class Map2Store(Statement):
    """``mapping[k1][k2] = value``."""

    map_name: str
    key1: Expr
    key2: Expr
    value: Expr


@dataclass
class Require(Statement):
    """Revert the transaction unless the condition is non-zero."""

    condition: Expr


@dataclass
class If(Statement):
    """Two-armed conditional."""

    condition: Expr
    then_body: list[Statement]
    else_body: list[Statement] = field(default_factory=list)


@dataclass
class While(Statement):
    """Loop while the condition is non-zero."""

    condition: Expr
    body: list[Statement]


@dataclass
class Return(Statement):
    """Return a single word (or nothing when value is None)."""

    value: Expr | None = None


@dataclass
class Stop(Statement):
    """Halt without returning data."""


@dataclass
class Emit(Statement):
    """Emit an event: LOG(1 + len(topics)) with word-encoded data."""

    event: str  # event signature, e.g. "Transfer(address,address,uint256)"
    topics: list[Expr] = field(default_factory=list)
    data: list[Expr] = field(default_factory=list)


@dataclass
class ExtCall(Statement):
    """External message call ``target.sig(args)`` with optional result.

    ``result`` names a local that receives the first return word;
    ``value`` attaches native tokens. Unless ``require_success`` is False,
    a failed call reverts the caller.
    """

    target: Expr
    signature: str
    args: list[Expr] = field(default_factory=list)
    value: Expr | None = None
    result: str | None = None
    require_success: bool = True
    static: bool = False


@dataclass
class TransferNative(Statement):
    """Send native tokens with empty calldata (WETH9-style withdraw)."""

    to: Expr
    amount: Expr


@dataclass
class DelegateAll(Statement):
    """Proxy pattern: DELEGATECALL the full calldata to *target* and
    return/revert with whatever it produced."""

    target: Expr


@dataclass
class FunctionDef:
    """One externally callable function."""

    signature: str  # canonical, e.g. "transfer(address,uint256)"
    body: list[Statement]
    payable: bool = False

    @property
    def name(self) -> str:
        return self.signature.split("(", 1)[0]

    @property
    def arg_count(self) -> int:
        params = self.signature.split("(", 1)[1].rstrip(")")
        return 0 if not params else params.count(",") + 1


@dataclass
class ContractDef:
    """A contract: storage layout plus functions.

    ``scalars`` get storage slots 0..n-1 in order; ``mappings`` get the
    following slots (their data lives at hashed offsets). ``fallback``
    statements run when no selector matches (used by proxy contracts).
    """

    name: str
    scalars: list[str] = field(default_factory=list)
    mappings: list[str] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    fallback: list[Statement] | None = None
