"""A small contract language compiled to EVM bytecode.

The paper's workloads are real Ethereum contracts compiled from Solidity.
We reproduce them with this deliberately small language: enough surface to
express ERC20 tokens, an AMM router, an NFT marketplace, delegate proxies
and a voting contract, while emitting the same canonical code shapes the
paper's analyses depend on — a selector-dispatch *Compare* chunk, a
CALLVALUE *Check* chunk, function-body *Execute* chunks and a shared
*End* chunk (paper Fig. 10), with Solidity-style mapping slots
(keccak(key ‖ slot)) and stack-heavy expression code (Table 6's ~62%
stack-instruction share emerges naturally).
"""

from .ast import (
    Arg,
    Assign,
    BalanceOf,
    Bin,
    CallValue,
    Caller,
    Const,
    ContractDef,
    DelegateAll,
    Emit,
    Expr,
    ExtCall,
    FunctionDef,
    If,
    Local,
    MapLoad,
    Map2Load,
    MapStore,
    Map2Store,
    Not,
    Require,
    Return,
    SLoad,
    SStore,
    SelfAddress,
    Sha3,
    Statement,
    Stop,
    Timestamp,
    TransferNative,
    While,
    env,
)
from .compiler import CompiledContract, CompiledFunction, compile_contract

__all__ = [
    "Arg",
    "Assign",
    "BalanceOf",
    "Bin",
    "CallValue",
    "Caller",
    "Const",
    "ContractDef",
    "DelegateAll",
    "Emit",
    "Expr",
    "ExtCall",
    "FunctionDef",
    "If",
    "Local",
    "MapLoad",
    "Map2Load",
    "MapStore",
    "Map2Store",
    "Not",
    "Require",
    "Return",
    "SLoad",
    "SStore",
    "SelfAddress",
    "Sha3",
    "Statement",
    "Stop",
    "Timestamp",
    "TransferNative",
    "While",
    "env",
    "CompiledContract",
    "CompiledFunction",
    "compile_contract",
]
