"""The reference sequential EVM interpreter.

This is the functional substrate everything else measures against:

* It defines transaction semantics (the "single PU, sequential" behaviour
  the paper uses as its baseline).
* Run with a :class:`~repro.evm.tracer.Tracer`, it produces the dataflow
  traces that drive the MTPU timing model and the hotspot optimizer.
* Its deterministic gas accounting embodies the consistency constraint of
  paper section 3.3.3 (one transaction, one gas consumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain.receipt import LogEntry, Receipt
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..crypto import (
    ADDRESS_MASK,
    contract_address,
    create2_address,
    keccak256_int,
)
from . import decoded, opcodes
from .alu import (  # noqa: F401  (re-exported: tests and tools import from here)
    _ARITH_FN,
    _LOGIC_FN,
    _byte,
    _div,
    _mod,
    _sar,
    _sdiv,
    _signextend,
    _smod,
    _to_signed,
    _to_unsigned,
)
from .code import valid_jumpdests
from .context import BlockContext, CallKind, CallResult, Message
from .errors import (
    ExceptionalHalt,
    InvalidJump,
    InvalidOpcode,
    Revert,
    WriteInStaticContext,
)
from ..obs import get_registry
from .gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from .memory import Memory
from .stack import WORD_MASK, Stack
from .tracer import EXTERNAL_PRODUCER, NullTracer, Tracer, TraceStep

MAX_CALL_DEPTH = 1024
SIGN_BIT = 1 << 255

# Message calls recurse through the host interpreter (~8 Python frames per
# EVM frame); the EVM's own 1024-depth cap therefore needs more headroom
# than CPython's default 1000-frame limit.
import sys  # noqa: E402

if sys.getrecursionlimit() < 16 * MAX_CALL_DEPTH:
    sys.setrecursionlimit(16 * MAX_CALL_DEPTH)


@dataclass
class Frame:
    """One message-call execution frame (an entry of the Call_Contract
    Stack, paper section 3.3.6)."""

    msg: Message
    code: bytes
    gas: GasMeter
    stack: Stack = field(default_factory=Stack)
    memory: Memory = field(default_factory=Memory)
    pc: int = 0
    logs: list[LogEntry] = field(default_factory=list)
    return_data: bytes = b""
    output: bytes = b""
    halted: bool = False
    # Shadow stack: trace index of the step that produced each stack slot.
    shadow: list[int] = field(default_factory=list)
    # Per-frame jump-destination cache: set once per frame (by the decoded
    # fast path at program bind, by op_branch lazily) so repeated jumps
    # skip even the memo lookup in repro.evm.code.
    jumpdests: frozenset[int] | None = None


class _StopFrame(Exception):
    """Internal: normal frame termination (STOP/RETURN/SELFDESTRUCT)."""


class EVM:
    """A complete EVM: message-call machinery plus the instruction set."""

    def __init__(
        self,
        state: WorldState,
        block: BlockContext | None = None,
        schedule: GasSchedule | None = None,
        tracer: Tracer | None = None,
        fast_path: bool | None = None,
    ) -> None:
        self.state = state
        self.block = block or BlockContext()
        self.schedule = schedule or DEFAULT_SCHEDULE
        # Note: "tracer or ..." would misfire — an empty Tracer has
        # __len__() == 0 and is falsy.
        self.tracer = tracer if tracer is not None else NullTracer()
        # The decoded fast path (repro.evm.decoded) is only sound when no
        # tracer observes individual steps; fast_path=False forces the
        # legacy loop even under NullTracer (differential tests, benches).
        untraced = isinstance(self.tracer, NullTracer)
        self._fast = untraced if fast_path is None else (fast_path and untraced)

    # ------------------------------------------------------------------
    # Transaction-level entry point
    # ------------------------------------------------------------------
    def execute_transaction(self, tx: Transaction) -> Receipt:
        """Run one transaction to completion and produce its receipt.

        Fee handling: the gas fee moves from sender to coinbase *outside*
        access tracking — otherwise every transaction in a block would
        artificially conflict on the coinbase balance, collapsing the
        dependency DAG (real schedulers special-case fee accounting the
        same way).
        """
        intrinsic = self.schedule.intrinsic_gas(tx.data, tx.is_create)
        if intrinsic > tx.gas_limit:
            return self._finish(Receipt(
                tx_hash=tx.hash(),
                success=False,
                gas_used=tx.gas_limit,
                error="intrinsic gas exceeds limit",
            ))

        saved_access = self.state.access
        self.state.access = None
        try:
            if self.state.get_balance(tx.sender) < tx.value:
                return self._finish(Receipt(
                    tx_hash=tx.hash(),
                    success=False,
                    gas_used=intrinsic,
                    error="insufficient balance for value",
                ))
            self.state.increment_nonce(tx.sender)
        finally:
            self.state.access = saved_access

        gas = tx.gas_limit - intrinsic
        if tx.is_create:
            msg = Message(
                caller=tx.sender,
                to=0,
                value=tx.value,
                data=b"",
                gas=gas,
                code_address=0,
                origin=tx.sender,
                gas_price=tx.gas_price,
                kind=CallKind.CREATE,
                create_code=tx.data,
            )
        else:
            msg = Message(
                caller=tx.sender,
                to=tx.to,
                value=tx.value,
                data=tx.data,
                gas=gas,
                code_address=tx.to,
                origin=tx.sender,
                gas_price=tx.gas_price,
                kind=CallKind.CALL,
            )

        result = self.call(msg)
        gas_used = intrinsic + result.gas_used

        # SSTORE-clear refunds, capped at half the gas used (EVM rule).
        refund = min(result.refund, gas_used // 2)
        gas_used -= refund

        saved_access = self.state.access
        self.state.access = None
        try:
            fee = gas_used * tx.gas_price
            sender_balance = self.state.get_balance(tx.sender)
            self.state.set_balance(tx.sender, max(0, sender_balance - fee))
            coinbase = self.block.coinbase
            self.state.set_balance(
                coinbase, self.state.get_balance(coinbase) + fee
            )
        finally:
            self.state.access = saved_access

        return self._finish(Receipt(
            tx_hash=tx.hash(),
            success=result.success,
            gas_used=gas_used,
            logs=tuple(result.logs),
            output=result.output,
            contract_address=result.created_address,
            error=result.error,
        ))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _finish(self, receipt: Receipt) -> Receipt:
        """Record transaction-level metrics; one branch when disabled."""
        registry = get_registry()
        if registry.enabled:
            self._record_tx_metrics(registry, receipt)
        return receipt

    def _record_tx_metrics(self, registry, receipt: Receipt) -> None:
        """Publish evm.* metrics for one executed transaction.

        The opcode mix, executed-instruction count and stack/call depth
        are derived post-hoc from the attached tracer's trace (free when
        a :class:`NullTracer` is attached — its step list stays empty).
        """
        registry.counter("evm.transactions").inc()
        # Functional executions only — artifact replays in the execute-
        # once pipeline do not pass through here, so this counter exposes
        # how many times each block's transactions actually ran.
        registry.counter("evm.tx_executions").inc()
        registry.counter("evm.gas_used").inc(receipt.gas_used)
        if not receipt.success:
            registry.counter("evm.failures").inc()
        if self._fast:
            registry.counter("evm.fast_path_txs").inc()
        steps = self.tracer.steps
        if not steps:
            return
        registry.counter("evm.instructions").inc(len(steps))
        categories: dict[str, int] = {}
        max_call_depth = 0
        # Per-frame operand-stack height, replayed from pops/pushes; a
        # call record's start index marks where its frame's stack resets.
        frame_resets = {}
        for call in self.tracer.calls:
            frame_resets.setdefault(call.start_index, call.depth)
        heights: dict[int, int] = {}
        max_height = 0
        for step in steps:
            key = step.op.category.value
            categories[key] = categories.get(key, 0) + 1
            depth = step.depth
            if depth > max_call_depth:
                max_call_depth = depth
            if frame_resets.get(step.index) == depth:
                heights[depth] = 0
            height = heights.get(depth, 0) - step.op.pops + step.op.pushes
            heights[depth] = height
            if height > max_height:
                max_height = height
        for category, count in categories.items():
            registry.counter("evm.ops", category=category).inc(count)
        registry.histogram("evm.stack_depth").observe(max_height)
        registry.histogram("evm.call_depth").observe(max_call_depth)

    # ------------------------------------------------------------------
    # Message-call machinery
    # ------------------------------------------------------------------
    def call(self, msg: Message) -> CallResult:
        """Execute one message call (or contract creation) atomically."""
        if msg.depth > MAX_CALL_DEPTH:
            return CallResult(
                success=False, gas_used=msg.gas, error="call depth exceeded"
            )

        is_create = msg.kind in (CallKind.CREATE, CallKind.CREATE2)
        snapshot = self.state.snapshot()
        gas = GasMeter(msg.gas)
        created_address: int | None = None

        try:
            if is_create:
                created_address = self._derive_create_address(msg)
                self.state.increment_nonce(msg.caller)
                msg.to = created_address
                msg.code_address = created_address
                code = msg.create_code
                existing = self.state.account(created_address)
                if existing.code or existing.nonce:
                    raise ExceptionalHalt("address collision on create")
                self.state.increment_nonce(created_address)
            else:
                code = self.state.get_code(msg.code_address)

            if msg.value and msg.kind in (
                CallKind.CALL,
                CallKind.CREATE,
                CallKind.CREATE2,
            ):
                self.state.transfer(msg.caller, msg.to, msg.value)

            frame = Frame(msg=msg, code=code, gas=gas)
            self.tracer.enter_call(msg.depth, msg.code_address, msg.kind)
            try:
                self._run(frame)
            finally:
                pass

            if is_create:
                deposit = len(frame.output) * self.schedule.code_deposit_byte
                gas.consume(deposit, "code deposit")
                self.state.set_code(created_address, frame.output)
                output = b""
            else:
                output = frame.output

            self.tracer.exit_call(True)
            return CallResult(
                success=True,
                output=output,
                gas_used=gas.consumed,
                gas_left=gas.remaining,
                logs=frame.logs,
                created_address=created_address,
                refund=gas.refund,
            )

        except Revert as exc:
            self.state.revert(snapshot)
            self.tracer.exit_call(False)
            return CallResult(
                success=False,
                output=exc.data,
                gas_used=gas.consumed,
                gas_left=gas.remaining,
                error="revert",
            )

        except (ExceptionalHalt, ValueError) as exc:
            # ValueError covers insufficient-balance transfers inside calls.
            self.state.revert(snapshot)
            self.tracer.exit_call(False)
            return CallResult(
                success=False,
                gas_used=msg.gas,  # exceptional halt burns the frame's gas
                gas_left=0,
                error=type(exc).__name__,
            )

    def _derive_create_address(self, msg: Message) -> int:
        if msg.kind == CallKind.CREATE2:
            return create2_address(msg.caller, msg.value_salt, msg.create_code)  # type: ignore[attr-defined]
        return contract_address(msg.caller, self.state.get_nonce(msg.caller))

    # ------------------------------------------------------------------
    # The fetch / decode / gas-check / execute loop (paper Fig. 8a)
    # ------------------------------------------------------------------
    def _run(self, frame: Frame) -> None:
        code = frame.code
        if not code:
            frame.halted = True  # empty code: implicit STOP
            return
        if self._fast:
            decoded.run_program(self, frame, decoded.DECODE_CACHE.get(code))
            return
        code_len = len(code)
        infos = opcodes.INFO_BY_BYTE
        handlers = _HANDLERS_BY_BYTE
        while not frame.halted:
            pc = frame.pc
            if pc >= code_len:
                frame.halted = True  # implicit STOP
                return
            opcode_byte = code[pc]
            handler = handlers[opcode_byte]
            if handler is None:
                raise InvalidOpcode(f"invalid opcode 0x{opcode_byte:02x}")
            try:
                handler(self, frame, infos[opcode_byte])
            except _StopFrame:
                frame.halted = True
                return

    def _step(self, frame: Frame, info: opcodes.OpcodeInfo) -> None:
        handler = _HANDLERS[info.name]
        handler(self, frame, info)

    # -- shadow-stack helpers ----------------------------------------------
    def _pop(self, frame: Frame, n: int) -> tuple[list[int], tuple[int, ...]]:
        """Pop n operands plus their trace producer indices."""
        values = frame.stack.pop_n(n)
        if n == 0:
            return values, ()
        producers = tuple(frame.shadow[-n:][::-1])
        del frame.shadow[-n:]
        return values, producers

    def _push(self, frame: Frame, value: int, producer: int) -> None:
        frame.stack.push(value)
        frame.shadow.append(producer)

    def _trace(
        self,
        frame: Frame,
        info: opcodes.OpcodeInfo,
        pc: int,
        gas_cost: int,
        operands: tuple[int, ...] = (),
        producers: tuple[int, ...] = (),
        results: tuple[int, ...] = (),
        immediate: int | None = None,
        extra: dict | None = None,
    ) -> int:
        index = self.tracer.next_index
        self.tracer.record(
            TraceStep(
                index=index,
                pc=pc,
                op=info,
                immediate=immediate,
                gas_cost=gas_cost,
                depth=frame.msg.depth,
                code_address=frame.msg.code_address,
                operands=operands,
                producers=producers,
                results=results,
                extra=extra or {},
            )
        )
        return index

    def _charge_memory(self, frame: Frame, offset: int, length: int) -> int:
        """Gas for expanding memory to cover [offset, offset+length)."""
        if length == 0:
            return 0
        new_words = (offset + length + 31) // 32
        return self.schedule.memory_expansion_cost(
            frame.memory.size_words, new_words
        )

    # ------------------------------------------------------------------
    # Instruction implementations, grouped by functional unit
    # ------------------------------------------------------------------
    # Arithmetic -----------------------------------------------------------
    def op_arith(self, frame: Frame, info) -> None:
        pc = frame.pc
        n = info.pops
        gas_cost = info.gas
        values, producers = self._pop(frame, n)
        if info.name == "EXP":
            exponent = values[1]
            byte_count = (exponent.bit_length() + 7) // 8
            gas_cost += self.schedule.exp_byte * byte_count
        frame.gas.consume(gas_cost, info.name)
        result = _ARITH_FN[info.name](*values)
        index = self._trace(
            frame, info, pc, gas_cost,
            operands=tuple(values), producers=producers,
            results=(result,),
        )
        self._push(frame, result, index)
        frame.pc += 1

    # Logic ---------------------------------------------------------------
    def op_logic(self, frame: Frame, info) -> None:
        pc = frame.pc
        values, producers = self._pop(frame, info.pops)
        frame.gas.consume(info.gas, info.name)
        result = _LOGIC_FN[info.name](*values)
        index = self._trace(
            frame, info, pc, info.gas,
            operands=tuple(values), producers=producers,
            results=(result,),
        )
        self._push(frame, result, index)
        frame.pc += 1

    # SHA -----------------------------------------------------------------
    def op_sha3(self, frame: Frame, info) -> None:
        pc = frame.pc
        (offset, length), producers = self._pop(frame, 2)
        words = (length + 31) // 32
        gas_cost = (
            info.gas
            + self.schedule.sha3_word * words
            + self._charge_memory(frame, offset, length)
        )
        frame.gas.consume(gas_cost, "SHA3")
        data = frame.memory.read(offset, length)
        result = keccak256_int(data)
        index = self._trace(
            frame, info, pc, gas_cost,
            operands=(offset, length), producers=producers,
            results=(result,),
            extra={"offset": offset, "length": length, "preimage": data},
        )
        self._push(frame, result, index)
        frame.pc += 1

    # Fixed access ----------------------------------------------------------
    def op_fixed(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        msg = frame.msg
        extra: dict = {}
        if name == "CALLDATALOAD":
            (offset,), producers = self._pop(frame, 1)
            frame.gas.consume(info.gas, name)
            chunk = msg.data[offset : offset + 32]
            chunk = chunk + b"\x00" * (32 - len(chunk))
            result = int.from_bytes(chunk, "big")
            extra["offset"] = offset
            index = self._trace(
                frame, info, pc, info.gas,
                operands=(offset,), producers=producers, results=(result,),
                extra=extra,
            )
            self._push(frame, result, index)
            frame.pc += 1
            return
        if name in ("CALLDATACOPY", "CODECOPY", "RETURNDATACOPY"):
            (dest, src, length), producers = self._pop(frame, 3)
            words = (length + 31) // 32
            gas_cost = (
                info.gas
                + self.schedule.copy_word * words
                + self._charge_memory(frame, dest, length)
            )
            frame.gas.consume(gas_cost, name)
            if name == "CALLDATACOPY":
                blob = msg.data
            elif name == "CODECOPY":
                blob = frame.code
            else:
                if src + length > len(frame.return_data):
                    raise ExceptionalHalt("RETURNDATACOPY out of bounds")
                blob = frame.return_data
            chunk = blob[src : src + length]
            chunk = chunk + b"\x00" * (length - len(chunk))
            frame.memory.write(dest, chunk)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(dest, src, length), producers=producers,
                extra={"dest": dest, "src": src, "length": length},
            )
            frame.pc += 1
            return
        if name == "BLOCKHASH":
            (height,), producers = self._pop(frame, 1)
            frame.gas.consume(info.gas, name)
            result = self.block.blockhash_fn(height)
            index = self._trace(
                frame, info, pc, info.gas,
                operands=(height,), producers=producers, results=(result,),
            )
            self._push(frame, result, index)
            frame.pc += 1
            return

        frame.gas.consume(info.gas, name)
        result = self._fixed_value(frame, name)
        index = self._trace(frame, info, pc, info.gas, results=(result,))
        self._push(frame, result, index)
        frame.pc += 1

    def _fixed_value(self, frame: Frame, name: str) -> int:
        msg = frame.msg
        block = self.block
        values = {
            "ADDRESS": msg.to,
            "ORIGIN": msg.origin,
            "CALLER": msg.caller,
            "CALLVALUE": msg.value,
            "CALLDATASIZE": len(msg.data),
            "CODESIZE": len(frame.code),
            "GASPRICE": msg.gas_price,
            "RETURNDATASIZE": len(frame.return_data),
            "COINBASE": block.coinbase,
            "TIMESTAMP": block.timestamp,
            "NUMBER": block.height,
            "DIFFICULTY": block.difficulty,
            "GASLIMIT": block.gas_limit,
            "PC": frame.pc,
            "GAS": frame.gas.remaining,
        }
        return values[name] & WORD_MASK

    # State query ------------------------------------------------------------
    def op_state_query(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        if name == "EXTCODECOPY":
            (address, dest, src, length), producers = self._pop(frame, 4)
            address &= ADDRESS_MASK
            words = (length + 31) // 32
            gas_cost = (
                info.gas
                + self.schedule.copy_word * words
                + self._charge_memory(frame, dest, length)
            )
            frame.gas.consume(gas_cost, name)
            blob = self.state.get_code(address)
            chunk = blob[src : src + length]
            chunk = chunk + b"\x00" * (length - len(chunk))
            frame.memory.write(dest, chunk)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(address, dest, src, length), producers=producers,
                extra={"address": address},
            )
            frame.pc += 1
            return

        (raw,), producers = self._pop(frame, 1)
        address = raw & ADDRESS_MASK
        frame.gas.consume(info.gas, name)
        if name == "BALANCE":
            result = self.state.get_balance(address)
        elif name == "EXTCODESIZE":
            result = len(self.state.get_code(address))
        else:  # EXTCODEHASH
            code = self.state.get_code(address)
            result = keccak256_int(code) if code else 0
        index = self._trace(
            frame, info, pc, info.gas,
            operands=(raw,), producers=producers, results=(result,),
            extra={"address": address},
        )
        self._push(frame, result, index)
        frame.pc += 1

    # Memory -----------------------------------------------------------------
    def op_memory(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        if name == "MLOAD":
            (offset,), producers = self._pop(frame, 1)
            gas_cost = info.gas + self._charge_memory(frame, offset, 32)
            frame.gas.consume(gas_cost, name)
            result = frame.memory.read_word(offset)
            index = self._trace(
                frame, info, pc, gas_cost,
                operands=(offset,), producers=producers, results=(result,),
                extra={"offset": offset},
            )
            self._push(frame, result, index)
        elif name == "MSTORE":
            (offset, value), producers = self._pop(frame, 2)
            gas_cost = info.gas + self._charge_memory(frame, offset, 32)
            frame.gas.consume(gas_cost, name)
            frame.memory.write_word(offset, value)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(offset, value), producers=producers,
                extra={"offset": offset},
            )
        elif name == "MSTORE8":
            (offset, value), producers = self._pop(frame, 2)
            gas_cost = info.gas + self._charge_memory(frame, offset, 1)
            frame.gas.consume(gas_cost, name)
            frame.memory.write_byte(offset, value)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(offset, value), producers=producers,
                extra={"offset": offset},
            )
        elif name == "MSIZE":
            frame.gas.consume(info.gas, name)
            result = frame.memory.size_words * 32
            index = self._trace(frame, info, pc, info.gas, results=(result,))
            self._push(frame, result, index)
        else:  # LOG0..LOG4
            self._op_log(frame, info)
            return
        frame.pc += 1

    def _op_log(self, frame: Frame, info) -> None:
        pc = frame.pc
        if frame.msg.is_static:
            raise WriteInStaticContext("LOG in static context")
        topic_count = info.pops - 2
        values, producers = self._pop(frame, info.pops)
        offset, length = values[0], values[1]
        topics = tuple(values[2:])
        gas_cost = (
            info.gas
            + self.schedule.log_topic * topic_count
            + self.schedule.log_data_byte * length
            + self._charge_memory(frame, offset, length)
        )
        frame.gas.consume(gas_cost, info.name)
        data = frame.memory.read(offset, length)
        frame.logs.append(LogEntry(frame.msg.to, topics, data))
        self._trace(
            frame, info, pc, gas_cost,
            operands=tuple(values), producers=producers,
            extra={"topics": topics, "length": length},
        )
        frame.pc += 1

    # Storage -----------------------------------------------------------------
    def op_storage(self, frame: Frame, info) -> None:
        pc = frame.pc
        address = frame.msg.to
        if info.name == "SLOAD":
            (slot,), producers = self._pop(frame, 1)
            frame.gas.consume(info.gas, "SLOAD")
            result = self.state.get_storage(address, slot)
            index = self._trace(
                frame, info, pc, info.gas,
                operands=(slot,), producers=producers, results=(result,),
                extra={"address": address, "slot": slot},
            )
            self._push(frame, result, index)
        else:  # SSTORE
            if frame.msg.is_static:
                raise WriteInStaticContext("SSTORE in static context")
            (slot, value), producers = self._pop(frame, 2)
            old = self.state.get_storage(address, slot)
            if old == 0 and value != 0:
                gas_cost = self.schedule.sstore_set
            else:
                gas_cost = self.schedule.sstore_reset
            frame.gas.consume(gas_cost, "SSTORE")
            if old != 0 and value == 0:
                frame.gas.add_refund(self.schedule.sstore_clear_refund)
            self.state.set_storage(address, slot, value)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(slot, value), producers=producers,
                extra={"address": address, "slot": slot},
            )
        frame.pc += 1

    # Branch ---------------------------------------------------------------------
    def op_branch(self, frame: Frame, info) -> None:
        pc = frame.pc
        dests = frame.jumpdests
        if dests is None:
            dests = frame.jumpdests = valid_jumpdests(frame.code)
        if info.name == "JUMP":
            (target,), producers = self._pop(frame, 1)
            frame.gas.consume(info.gas, "JUMP")
            self._trace(
                frame, info, pc, info.gas,
                operands=(target,), producers=producers,
                extra={"target": target, "taken": True},
            )
            if target not in dests:
                raise InvalidJump(f"jump to {target:#x}")
            frame.pc = target
        elif info.name == "JUMPI":
            (target, condition), producers = self._pop(frame, 2)
            frame.gas.consume(info.gas, "JUMPI")
            taken = condition != 0
            self._trace(
                frame, info, pc, info.gas,
                operands=(target, condition), producers=producers,
                extra={"target": target, "taken": taken},
            )
            if taken:
                if target not in dests:
                    raise InvalidJump(f"jumpi to {target:#x}")
                frame.pc = target
            else:
                frame.pc += 1
        else:  # JUMPDEST
            frame.gas.consume(info.gas, "JUMPDEST")
            self._trace(frame, info, pc, info.gas)
            frame.pc += 1

    # Stack -------------------------------------------------------------------------
    def op_stack(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        if name == "POP":
            (value,), producers = self._pop(frame, 1)
            frame.gas.consume(info.gas, "POP")
            self._trace(
                frame, info, pc, info.gas,
                operands=(value,), producers=producers,
            )
            frame.pc += 1
            return
        if opcodes.is_push(info):
            frame.gas.consume(info.gas, name)
            raw = frame.code[pc + 1 : pc + 1 + info.immediate_size]
            raw = raw + b"\x00" * (info.immediate_size - len(raw))
            value = int.from_bytes(raw, "big")
            index = self._trace(
                frame, info, pc, info.gas,
                results=(value,), immediate=value,
            )
            self._push(frame, value, index)
            frame.pc += 1 + info.immediate_size
            return
        if opcodes.is_dup(info):
            n = info.value - 0x80 + 1
            frame.gas.consume(info.gas, name)
            value = frame.stack.peek(n - 1)
            producer = (
                frame.shadow[-n] if n <= len(frame.shadow) else EXTERNAL_PRODUCER
            )
            index = self._trace(
                frame, info, pc, info.gas,
                operands=(value,), producers=(producer,), results=(value,),
            )
            frame.stack.dup(n)
            frame.shadow.append(index)
            frame.pc += 1
            return
        # SWAPn
        n = info.value - 0x90 + 1
        frame.gas.consume(info.gas, name)
        top = frame.stack.peek(0)
        other = frame.stack.peek(n)
        producer_top = frame.shadow[-1] if frame.shadow else EXTERNAL_PRODUCER
        producer_other = (
            frame.shadow[-1 - n] if n < len(frame.shadow) else EXTERNAL_PRODUCER
        )
        self._trace(
            frame, info, pc, info.gas,
            operands=(top, other), producers=(producer_top, producer_other),
        )
        frame.stack.swap(n)
        if n < len(frame.shadow):
            frame.shadow[-1], frame.shadow[-1 - n] = (
                frame.shadow[-1 - n],
                frame.shadow[-1],
            )
        frame.pc += 1

    # Control ------------------------------------------------------------------------
    def op_control(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        if name == "STOP":
            frame.gas.consume(info.gas, "STOP")
            self._trace(frame, info, pc, info.gas)
            frame.output = b""
            raise _StopFrame
        if name == "RETURN":
            (offset, length), producers = self._pop(frame, 2)
            gas_cost = info.gas + self._charge_memory(frame, offset, length)
            frame.gas.consume(gas_cost, "RETURN")
            frame.output = frame.memory.read(offset, length)
            self._trace(
                frame, info, pc, gas_cost,
                operands=(offset, length), producers=producers,
            )
            raise _StopFrame
        # REVERT
        (offset, length), producers = self._pop(frame, 2)
        gas_cost = info.gas + self._charge_memory(frame, offset, length)
        frame.gas.consume(gas_cost, "REVERT")
        data = frame.memory.read(offset, length)
        self._trace(
            frame, info, pc, gas_cost,
            operands=(offset, length), producers=producers,
        )
        raise Revert(data)

    # Context switching -----------------------------------------------------------------
    def op_context(self, frame: Frame, info) -> None:
        name = info.name
        if name in ("CALL", "CALLCODE"):
            self._op_call(frame, info, with_value=True)
        elif name == "DELEGATECALL":
            self._op_call(frame, info, with_value=False)
        elif name == "STATICCALL":
            self._op_call(frame, info, with_value=False)
        elif name in ("CREATE", "CREATE2"):
            self._op_create(frame, info)
        else:  # SELFDESTRUCT
            self._op_selfdestruct(frame, info)

    def _op_call(self, frame: Frame, info, with_value: bool) -> None:
        pc = frame.pc
        name = info.name
        if with_value:
            (
                (gas_req, to, value, in_off, in_len, out_off, out_len),
                producers,
            ) = self._pop(frame, 7)
        else:
            (
                (gas_req, to, in_off, in_len, out_off, out_len),
                producers,
            ) = self._pop(frame, 6)
            value = 0
        to &= ADDRESS_MASK

        if value and frame.msg.is_static:
            raise WriteInStaticContext("value transfer in static context")

        gas_cost = info.gas
        if value:
            gas_cost += self.schedule.call_value_transfer
            if name == "CALL" and not self.state.account_exists(to):
                gas_cost += self.schedule.call_new_account
        gas_cost += self._charge_memory(frame, in_off, in_len)
        gas_cost += self._charge_memory(frame, out_off, out_len)
        frame.gas.consume(gas_cost, name)

        # 63/64ths rule: the child cannot take everything.
        available = frame.gas.remaining - frame.gas.remaining // 64
        child_gas = min(gas_req, available)
        frame.gas.consume(child_gas, f"{name} child gas")
        if value:
            child_gas += self.schedule.call_stipend

        call_data = frame.memory.read(in_off, in_len)
        if name == "CALL":
            child = Message(
                caller=frame.msg.to, to=to, value=value, data=call_data,
                gas=child_gas, code_address=to, origin=frame.msg.origin,
                gas_price=frame.msg.gas_price, depth=frame.msg.depth + 1,
                is_static=frame.msg.is_static, kind=CallKind.CALL,
            )
        elif name == "CALLCODE":
            child = Message(
                caller=frame.msg.to, to=frame.msg.to, value=value,
                data=call_data, gas=child_gas, code_address=to,
                origin=frame.msg.origin, gas_price=frame.msg.gas_price,
                depth=frame.msg.depth + 1, is_static=frame.msg.is_static,
                kind=CallKind.CALLCODE,
            )
        elif name == "DELEGATECALL":
            child = Message(
                caller=frame.msg.caller, to=frame.msg.to,
                value=frame.msg.value, data=call_data, gas=child_gas,
                code_address=to, origin=frame.msg.origin,
                gas_price=frame.msg.gas_price, depth=frame.msg.depth + 1,
                is_static=frame.msg.is_static, kind=CallKind.DELEGATECALL,
            )
        else:  # STATICCALL
            child = Message(
                caller=frame.msg.to, to=to, value=0, data=call_data,
                gas=child_gas, code_address=to, origin=frame.msg.origin,
                gas_price=frame.msg.gas_price, depth=frame.msg.depth + 1,
                is_static=True, kind=CallKind.STATICCALL,
            )

        step_index = self._trace(
            frame, info, pc, gas_cost,
            operands=(gas_req, to, value, in_off, in_len, out_off, out_len)
            if with_value
            else (gas_req, to, in_off, in_len, out_off, out_len),
            producers=producers,
            extra={"target": to, "value": value, "kind": name},
        )

        result = self.call(child)
        frame.gas.return_gas(result.gas_left)
        if result.success:
            frame.gas.refund += result.refund
            frame.logs.extend(result.logs)
        frame.return_data = result.output
        if out_len and result.output:
            frame.memory.write(out_off, result.output[:out_len])
        self._push(frame, 1 if result.success else 0, step_index)
        frame.pc += 1

    def _op_create(self, frame: Frame, info) -> None:
        pc = frame.pc
        name = info.name
        if frame.msg.is_static:
            raise WriteInStaticContext("CREATE in static context")
        if name == "CREATE":
            (value, offset, length), producers = self._pop(frame, 3)
            salt = 0
        else:
            (value, offset, length, salt), producers = self._pop(frame, 4)
        gas_cost = info.gas + self._charge_memory(frame, offset, length)
        frame.gas.consume(gas_cost, name)
        init_code = frame.memory.read(offset, length)

        available = frame.gas.remaining - frame.gas.remaining // 64
        frame.gas.consume(available, f"{name} child gas")

        child = Message(
            caller=frame.msg.to, to=0, value=value, data=b"",
            gas=available, code_address=0, origin=frame.msg.origin,
            gas_price=frame.msg.gas_price, depth=frame.msg.depth + 1,
            kind=CallKind.CREATE if name == "CREATE" else CallKind.CREATE2,
            create_code=init_code,
        )
        if name == "CREATE2":
            child.value_salt = salt  # type: ignore[attr-defined]

        step_index = self._trace(
            frame, info, pc, gas_cost,
            operands=(value, offset, length), producers=producers[:3],
            extra={"kind": name},
        )
        result = self.call(child)
        frame.gas.return_gas(result.gas_left)
        if result.success:
            frame.gas.refund += result.refund
            frame.logs.extend(result.logs)
            self._push(frame, result.created_address or 0, step_index)
        else:
            self._push(frame, 0, step_index)
        frame.return_data = result.output if not result.success else b""
        frame.pc += 1

    def _op_selfdestruct(self, frame: Frame, info) -> None:
        pc = frame.pc
        if frame.msg.is_static:
            raise WriteInStaticContext("SELFDESTRUCT in static context")
        (raw,), producers = self._pop(frame, 1)
        beneficiary = raw & ADDRESS_MASK
        frame.gas.consume(info.gas, "SELFDESTRUCT")
        balance = self.state.get_balance(frame.msg.to)
        if balance:
            self.state.set_balance(
                beneficiary, self.state.get_balance(beneficiary) + balance
            )
        self.state.set_balance(frame.msg.to, 0)
        self.state.delete_account(frame.msg.to)
        self._trace(
            frame, info, pc, info.gas,
            operands=(raw,), producers=producers,
            extra={"beneficiary": beneficiary},
        )
        frame.output = b""
        raise _StopFrame


def _build_handlers() -> dict:
    from .opcodes import OPCODES, Category

    handlers: dict = {}
    for op in OPCODES.values():
        if op.category is Category.ARITHMETIC:
            handlers[op.name] = EVM.op_arith
        elif op.category is Category.LOGIC:
            handlers[op.name] = EVM.op_logic
        elif op.category is Category.SHA:
            handlers[op.name] = EVM.op_sha3
        elif op.category is Category.FIXED_ACCESS:
            handlers[op.name] = EVM.op_fixed
        elif op.category is Category.STATE_QUERY:
            handlers[op.name] = EVM.op_state_query
        elif op.category is Category.MEMORY:
            handlers[op.name] = EVM.op_memory
        elif op.category is Category.STORAGE:
            handlers[op.name] = EVM.op_storage
        elif op.category is Category.BRANCH:
            handlers[op.name] = EVM.op_branch
        elif op.category is Category.STACK:
            handlers[op.name] = EVM.op_stack
        elif op.category is Category.CONTROL:
            handlers[op.name] = EVM.op_control
        elif op.category is Category.CONTEXT:
            handlers[op.name] = EVM.op_context
    return handlers


# Mnemonic-keyed table (kept: external tools and _step dispatch by name).
_HANDLERS = _build_handlers()


def _build_handlers_by_byte() -> tuple:
    """256-entry dispatch table for the legacy loop.

    Built once at import so the traced path pays one tuple index per step
    instead of an ``opcodes.info`` call plus a string-keyed dict lookup.
    INVALID and undefined bytes map to None (the loop raises
    :class:`InvalidOpcode`).
    """
    table: list = [None] * 256
    for value in range(256):
        info = opcodes.INFO_BY_BYTE[value]
        if info is None or info.name == "INVALID":
            continue
        table[value] = _HANDLERS[info.name]
    return tuple(table)


_HANDLERS_BY_BYTE = _build_handlers_by_byte()
