"""Static bytecode utilities: decoding and jump-destination analysis.

The MTPU fill unit (paper section 3.3.3) consumes *decoded bytecodes*;
this module is the shared decoder used by the interpreter, the fill unit,
the disassembler and the hotspot chunker.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from . import opcodes
from .opcodes import OpcodeInfo


@dataclass(frozen=True)
class Instruction:
    """One statically decoded instruction."""

    pc: int
    op: OpcodeInfo
    immediate: int | None = None  # PUSH payload

    @property
    def size(self) -> int:
        """Encoded size in bytes (1 + immediate bytes)."""
        return 1 + self.op.immediate_size

    @property
    def next_pc(self) -> int:
        """PC of the fall-through successor."""
        return self.pc + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        if self.immediate is not None:
            return f"{self.pc:#06x}: {self.op.name} {self.immediate:#x}"
        return f"{self.pc:#06x}: {self.op.name}"


def decode(code: bytes) -> list[Instruction]:
    """Linearly decode a code blob into instructions.

    Bytes that are not defined opcodes decode as INVALID; PUSH immediates
    that run past the end of code are zero-padded (EVM semantics).
    """
    instructions: list[Instruction] = []
    pc = 0
    invalid = opcodes.BY_NAME["INVALID"]
    while pc < len(code):
        info = opcodes.info(code[pc])
        if info is None:
            instructions.append(Instruction(pc, invalid))
            pc += 1
            continue
        immediate = None
        if info.immediate_size:
            raw = code[pc + 1 : pc + 1 + info.immediate_size]
            raw = raw + b"\x00" * (info.immediate_size - len(raw))
            immediate = int.from_bytes(raw, "big")
        instructions.append(Instruction(pc, info, immediate))
        pc += 1 + info.immediate_size
    return instructions


def instruction_at(code: bytes, pc: int) -> Instruction:
    """Decode the single instruction at *pc*."""
    invalid = opcodes.BY_NAME["INVALID"]
    if pc >= len(code):
        return Instruction(pc, opcodes.BY_NAME["STOP"])
    info = opcodes.info(code[pc])
    if info is None:
        return Instruction(pc, invalid)
    immediate = None
    if info.immediate_size:
        raw = code[pc + 1 : pc + 1 + info.immediate_size]
        raw = raw + b"\x00" * (info.immediate_size - len(raw))
        immediate = int.from_bytes(raw, "big")
    return Instruction(pc, info, immediate)


@lru_cache(maxsize=1024)
def valid_jumpdests(code: bytes) -> frozenset[int]:
    """Byte offsets that are legal JUMP/JUMPI targets.

    A target is valid only if it holds a JUMPDEST opcode *outside* any
    PUSH immediate.
    """
    dests: set[int] = set()
    pc = 0
    while pc < len(code):
        byte = code[pc]
        if byte == 0x5B:
            dests.add(pc)
        info = opcodes.info(byte)
        pc += 1 + (info.immediate_size if info else 0)
    return frozenset(dests)
