"""Static bytecode utilities: decoding and jump-destination analysis.

The MTPU fill unit (paper section 3.3.3) consumes *decoded bytecodes*;
this module is the shared decoder used by the interpreter, the fill unit,
the disassembler and the hotspot chunker.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from . import opcodes
from .opcodes import OpcodeInfo


@dataclass(frozen=True)
class Instruction:
    """One statically decoded instruction."""

    pc: int
    op: OpcodeInfo
    immediate: int | None = None  # PUSH payload

    @property
    def size(self) -> int:
        """Encoded size in bytes (1 + immediate bytes)."""
        return 1 + self.op.immediate_size

    @property
    def next_pc(self) -> int:
        """PC of the fall-through successor."""
        return self.pc + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        if self.immediate is not None:
            return f"{self.pc:#06x}: {self.op.name} {self.immediate:#x}"
        return f"{self.pc:#06x}: {self.op.name}"


def decode(code: bytes) -> list[Instruction]:
    """Linearly decode a code blob into instructions.

    Bytes that are not defined opcodes decode as INVALID; PUSH immediates
    that run past the end of code are zero-padded (EVM semantics).
    """
    instructions: list[Instruction] = []
    pc = 0
    invalid = opcodes.BY_NAME["INVALID"]
    while pc < len(code):
        info = opcodes.info(code[pc])
        if info is None:
            instructions.append(Instruction(pc, invalid))
            pc += 1
            continue
        immediate = None
        if info.immediate_size:
            raw = code[pc + 1 : pc + 1 + info.immediate_size]
            raw = raw + b"\x00" * (info.immediate_size - len(raw))
            immediate = int.from_bytes(raw, "big")
        instructions.append(Instruction(pc, info, immediate))
        pc += 1 + info.immediate_size
    return instructions


def instruction_at(code: bytes, pc: int) -> Instruction:
    """Decode the single instruction at *pc*."""
    invalid = opcodes.BY_NAME["INVALID"]
    if pc >= len(code):
        return Instruction(pc, opcodes.BY_NAME["STOP"])
    info = opcodes.info(code[pc])
    if info is None:
        return Instruction(pc, invalid)
    immediate = None
    if info.immediate_size:
        raw = code[pc + 1 : pc + 1 + info.immediate_size]
        raw = raw + b"\x00" * (info.immediate_size - len(raw))
        immediate = int.from_bytes(raw, "big")
    return Instruction(pc, info, immediate)


# Content-keyed jump-destination memo. Keyed strictly by the code bytes
# (dict hashing *is* content hashing), never by address, so redeploying
# different code at a reused address can never alias a stale analysis.
# LRU-bounded so long-running serve nodes don't grow without limit.
_JUMPDEST_CACHE: OrderedDict[bytes, frozenset[int]] = OrderedDict()
_JUMPDEST_CACHE_STATS = {"hits": 0, "misses": 0}
_jumpdest_cache_limit = 4096


def set_jumpdest_cache_limit(limit: int) -> None:
    """Rebound the memo (evicting oldest entries if shrinking)."""
    global _jumpdest_cache_limit
    if limit < 1:
        raise ValueError(f"jumpdest cache limit must be >= 1, got {limit}")
    _jumpdest_cache_limit = limit
    while len(_JUMPDEST_CACHE) > limit:
        _JUMPDEST_CACHE.popitem(last=False)


def clear_jumpdest_cache() -> None:
    """Drop every memoized analysis (tests / bench isolation)."""
    _JUMPDEST_CACHE.clear()
    _JUMPDEST_CACHE_STATS["hits"] = 0
    _JUMPDEST_CACHE_STATS["misses"] = 0


def jumpdest_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for the jump-destination memo."""
    stats = dict(_JUMPDEST_CACHE_STATS)
    stats["size"] = len(_JUMPDEST_CACHE)
    stats["limit"] = _jumpdest_cache_limit
    return stats


def valid_jumpdests(code: bytes) -> frozenset[int]:
    """Byte offsets that are legal JUMP/JUMPI targets.

    A target is valid only if it holds a JUMPDEST opcode *outside* any
    PUSH immediate. The analysis is memoized per code blob (LRU-bounded,
    see :func:`set_jumpdest_cache_limit`); callers on the execution hot
    path additionally cache the result per frame/program so repeated
    JUMPs don't even pay the memo lookup.
    """
    cache = _JUMPDEST_CACHE
    dests = cache.get(code)
    if dests is not None:
        cache.move_to_end(code)
        _JUMPDEST_CACHE_STATS["hits"] += 1
        return dests
    found: set[int] = set()
    pc = 0
    length = len(code)
    infos = opcodes.INFO_BY_BYTE
    while pc < length:
        byte = code[pc]
        if byte == 0x5B:
            found.add(pc)
        info = infos[byte]
        pc += 1 + (info.immediate_size if info is not None else 0)
    dests = frozenset(found)
    _JUMPDEST_CACHE_STATS["misses"] += 1
    cache[code] = dests
    while len(cache) > _jumpdest_cache_limit:
        cache.popitem(last=False)
    return dests
