"""Execution tracing with dataflow provenance.

The tracer is the bridge between the functional EVM and everything the
paper's accelerator does with *how* code executed:

* The MTPU timing model replays traces through the fill unit / DB cache /
  pipeline to count cycles.
* The hotspot optimizer backtracks operand provenance to find *constant
  instructions* (paper section 3.4.3) and prefetchable access keys
  (section 3.4.4).

Each executed instruction becomes a :class:`TraceStep` that records, for
every popped operand, the index of the trace step that *produced* it (via
a shadow stack maintained alongside the real operand stack). PUSH
immediates and fixed-access results are the provenance roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import OpcodeInfo

#: Producer id for operands that predate the trace (frame inputs).
EXTERNAL_PRODUCER = -1


@dataclass
class TraceStep:
    """One executed instruction with dataflow annotations."""

    index: int  # position in the flat trace
    pc: int
    op: OpcodeInfo
    immediate: int | None  # PUSH immediate value
    gas_cost: int
    depth: int  # call depth of the frame
    code_address: int  # contract whose bytecode is executing
    operands: tuple[int, ...] = ()  # popped values, stack-top first
    producers: tuple[int, ...] = ()  # trace index producing each operand
    results: tuple[int, ...] = ()  # pushed values
    #: Op-specific details: storage key/address for SLOAD/SSTORE, call
    #: target for CALL-family, memory ranges for copies, etc.
    extra: dict = field(default_factory=dict)

    @property
    def category(self):
        """Functional-unit category (paper Table 3)."""
        return self.op.category


@dataclass
class CallRecord:
    """Context-switch bookkeeping: one message call's span in the trace."""

    depth: int
    code_address: int
    kind: str
    start_index: int
    end_index: int = -1
    success: bool = True


class Tracer:
    """Collects a flat instruction trace across all call frames."""

    def __init__(self) -> None:
        self.steps: list[TraceStep] = []
        self.calls: list[CallRecord] = []
        self._open_calls: list[CallRecord] = []

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def next_index(self) -> int:
        """Index the next recorded step will get (used for shadow stacks)."""
        return len(self.steps)

    def record(self, step: TraceStep) -> None:
        self.steps.append(step)

    def enter_call(self, depth: int, code_address: int, kind: str) -> None:
        record = CallRecord(depth, code_address, kind, self.next_index)
        self._open_calls.append(record)
        self.calls.append(record)

    def exit_call(self, success: bool) -> None:
        record = self._open_calls.pop()
        record.end_index = self.next_index
        record.success = success

    # -- convenience queries --------------------------------------------------
    def instruction_count(self) -> int:
        """Number of executed instructions."""
        return len(self.steps)

    def gas_total(self) -> int:
        """Sum of per-instruction gas charges in the trace."""
        return sum(step.gas_cost for step in self.steps)

    def category_histogram(self) -> dict[str, int]:
        """Instruction count per functional-unit category (paper Table 6)."""
        histogram: dict[str, int] = {}
        for step in self.steps:
            key = step.op.category.value
            histogram[key] = histogram.get(key, 0) + 1
        return histogram


class NullTracer(Tracer):
    """A tracer that drops everything (zero-overhead-ish functional runs)."""

    def record(self, step: TraceStep) -> None:  # noqa: D102
        pass

    def enter_call(self, depth: int, code_address: int, kind: str) -> None:  # noqa: D102
        pass

    def exit_call(self, success: bool) -> None:  # noqa: D102
        pass
