"""Byte-addressed EVM memory (the in-core MEM of paper section 3.3.6).

Memory grows in 32-byte words; expansion is charged quadratically by
:mod:`repro.evm.gas`. This module only tracks contents and the
high-water mark.
"""

from __future__ import annotations


class Memory:
    """Transaction-frame scratch memory."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_words(self) -> int:
        """Current size in 32-byte words."""
        return (len(self._data) + 31) // 32

    def extend(self, offset: int, length: int) -> None:
        """Grow memory (zero-filled) to cover ``[offset, offset+length)``."""
        if length == 0:
            return
        new_size = ((offset + length + 31) // 32) * 32
        if new_size > len(self._data):
            self._data.extend(b"\x00" * (new_size - len(self._data)))

    def read(self, offset: int, length: int) -> bytes:
        """Read *length* bytes, implicitly extending memory first."""
        self.extend(offset, length)
        return bytes(self._data[offset : offset + length])

    def read_word(self, offset: int) -> int:
        """MLOAD: read a 256-bit big-endian word."""
        return int.from_bytes(self.read(offset, 32), "big")

    def write(self, offset: int, data: bytes) -> None:
        """Write raw bytes, implicitly extending memory first."""
        if not data:
            return
        self.extend(offset, len(data))
        self._data[offset : offset + len(data)] = data

    def write_word(self, offset: int, value: int) -> None:
        """MSTORE: write a 256-bit big-endian word."""
        self.write(offset, (value & ((1 << 256) - 1)).to_bytes(32, "big"))

    def write_byte(self, offset: int, value: int) -> None:
        """MSTORE8: write the low byte of *value*."""
        self.write(offset, bytes([value & 0xFF]))

    def snapshot(self) -> bytes:
        """A copy of the full memory contents (for tests/inspection)."""
        return bytes(self._data)
