"""Pure arithmetic/logic word operations shared by both execution paths.

These functions implement the value semantics of the Arithmetic and Logic
functional units (paper Table 3) with no interpreter state: every input
and output is an unsigned 256-bit word. The legacy traced interpreter
dispatches them by mnemonic (:data:`_ARITH_FN` / :data:`_LOGIC_FN`); the
decoded fast path (:mod:`repro.evm.decoded`) pre-binds them into program
entries at decode time — including constant-folding them entirely when
every operand is statically known.
"""

from __future__ import annotations

from .stack import WORD_MASK

SIGN_BIT = 1 << 255


def _to_signed(value: int) -> int:
    return value - (1 << 256) if value & SIGN_BIT else value


def _to_unsigned(value: int) -> int:
    return value & WORD_MASK


def _div(a: int, b: int) -> int:
    return 0 if b == 0 else a // b


def _sdiv(a: int, b: int) -> int:
    if b == 0:
        return 0
    sa, sb = _to_signed(a), _to_signed(b)
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return _to_unsigned(quotient)


def _mod(a: int, b: int) -> int:
    return 0 if b == 0 else a % b


def _smod(a: int, b: int) -> int:
    if b == 0:
        return 0
    sa, sb = _to_signed(a), _to_signed(b)
    remainder = abs(sa) % abs(sb)
    return _to_unsigned(-remainder if sa < 0 else remainder)


def _signextend(size_byte: int, value: int) -> int:
    if size_byte >= 31:
        return value
    bit = 8 * (size_byte + 1) - 1
    if value & (1 << bit):
        return value | (WORD_MASK ^ ((1 << (bit + 1)) - 1))
    return value & ((1 << (bit + 1)) - 1)


def _byte(position: int, value: int) -> int:
    if position >= 32:
        return 0
    return (value >> (8 * (31 - position))) & 0xFF


def _sar(shift: int, value: int) -> int:
    signed = _to_signed(value)
    if shift >= 256:
        return _to_unsigned(-1) if signed < 0 else 0
    return _to_unsigned(signed >> shift)


_ARITH_FN = {
    "ADD": lambda a, b: (a + b) & WORD_MASK,
    "MUL": lambda a, b: (a * b) & WORD_MASK,
    "SUB": lambda a, b: (a - b) & WORD_MASK,
    "DIV": _div,
    "SDIV": _sdiv,
    "MOD": _mod,
    "SMOD": _smod,
    "ADDMOD": lambda a, b, n: 0 if n == 0 else (a + b) % n,
    "MULMOD": lambda a, b, n: 0 if n == 0 else (a * b) % n,
    "EXP": lambda a, b: pow(a, b, 1 << 256),
    "SIGNEXTEND": _signextend,
}

_LOGIC_FN = {
    "LT": lambda a, b: 1 if a < b else 0,
    "GT": lambda a, b: 1 if a > b else 0,
    "SLT": lambda a, b: 1 if _to_signed(a) < _to_signed(b) else 0,
    "SGT": lambda a, b: 1 if _to_signed(a) > _to_signed(b) else 0,
    "EQ": lambda a, b: 1 if a == b else 0,
    "ISZERO": lambda a: 1 if a == 0 else 0,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "NOT": lambda a: a ^ WORD_MASK,
    "BYTE": _byte,
    "SHL": lambda shift, value: 0 if shift >= 256 else (value << shift) & WORD_MASK,
    "SHR": lambda shift, value: 0 if shift >= 256 else value >> shift,
    "SAR": _sar,
}
