"""Execution contexts: block environment, messages, call results.

These are the inputs/outputs the MTPU's execution-environment buffer holds
(paper section 3.3.6): "the input (initial state, block information, and
contract invocation information) and the output (updated state and
generated receipt information) of the transaction".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..chain.receipt import LogEntry


def _no_blockhash(height: int) -> int:
    """Default BLOCKHASH service: no ancestors known."""
    return 0


@dataclass(frozen=True)
class BlockContext:
    """Block-level attributes visible to fixed-access instructions."""

    height: int = 1
    timestamp: int = 1_600_000_000
    coinbase: int = 0xC0FFEE
    difficulty: int = 1
    gas_limit: int = 30_000_000
    #: BLOCKHASH service: maps height -> 256-bit hash value.
    blockhash_fn: Callable[[int], int] = _no_blockhash


class CallKind:
    """Message-call flavors (paper Table 3, context-switching unit)."""

    CALL = "CALL"
    CALLCODE = "CALLCODE"
    DELEGATECALL = "DELEGATECALL"
    STATICCALL = "STATICCALL"
    CREATE = "CREATE"
    CREATE2 = "CREATE2"


@dataclass
class Message:
    """One entry of the Call_Contract Stack: a single contract invocation."""

    caller: int
    to: int  # storage/context address of the frame
    value: int
    data: bytes
    gas: int
    code_address: int  # where the executed bytecode lives
    origin: int = 0
    gas_price: int = 1
    depth: int = 0
    is_static: bool = False
    kind: str = CallKind.CALL
    create_code: bytes = b""  # init code for CREATE/CREATE2


@dataclass
class CallResult:
    """Outcome of one message call frame."""

    success: bool
    output: bytes = b""
    gas_used: int = 0
    gas_left: int = 0
    logs: list[LogEntry] = field(default_factory=list)
    error: str = ""
    created_address: int | None = None
    refund: int = 0  # accumulated SSTORE-clear refund of the frame
