"""EVM substrate: the smart-contract instruction set and a reference
sequential interpreter with dataflow tracing."""

from . import abi, decoded, opcodes
from .code import (
    Instruction,
    clear_jumpdest_cache,
    decode,
    jumpdest_cache_stats,
    set_jumpdest_cache_limit,
    valid_jumpdests,
)
from .context import BlockContext, CallKind, CallResult, Message
from .decoded import (
    DECODE_CACHE,
    DecodeCache,
    DecodedProgram,
    build_program,
    warm_code,
    warm_state_codes,
)
from .errors import (
    EVMError,
    ExceptionalHalt,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from .gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from .interpreter import EVM
from .memory import Memory
from .opcodes import Category, OpcodeInfo
from .stack import Stack
from .tracer import CallRecord, NullTracer, Tracer, TraceStep

__all__ = [
    "abi",
    "decoded",
    "opcodes",
    "Instruction",
    "decode",
    "valid_jumpdests",
    "clear_jumpdest_cache",
    "jumpdest_cache_stats",
    "set_jumpdest_cache_limit",
    "DECODE_CACHE",
    "DecodeCache",
    "DecodedProgram",
    "build_program",
    "warm_code",
    "warm_state_codes",
    "BlockContext",
    "CallKind",
    "CallResult",
    "Message",
    "EVMError",
    "ExceptionalHalt",
    "InvalidJump",
    "InvalidOpcode",
    "OutOfGas",
    "Revert",
    "StackOverflow",
    "StackUnderflow",
    "DEFAULT_SCHEDULE",
    "GasMeter",
    "GasSchedule",
    "EVM",
    "Memory",
    "Category",
    "OpcodeInfo",
    "Stack",
    "CallRecord",
    "NullTracer",
    "Tracer",
    "TraceStep",
]
