"""EVM substrate: the smart-contract instruction set and a reference
sequential interpreter with dataflow tracing."""

from . import abi, opcodes
from .code import Instruction, decode, valid_jumpdests
from .context import BlockContext, CallKind, CallResult, Message
from .errors import (
    EVMError,
    ExceptionalHalt,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
)
from .gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from .interpreter import EVM
from .memory import Memory
from .opcodes import Category, OpcodeInfo
from .stack import Stack
from .tracer import CallRecord, NullTracer, Tracer, TraceStep

__all__ = [
    "abi",
    "opcodes",
    "Instruction",
    "decode",
    "valid_jumpdests",
    "BlockContext",
    "CallKind",
    "CallResult",
    "Message",
    "EVMError",
    "ExceptionalHalt",
    "InvalidJump",
    "InvalidOpcode",
    "OutOfGas",
    "Revert",
    "StackOverflow",
    "StackUnderflow",
    "DEFAULT_SCHEDULE",
    "GasMeter",
    "GasSchedule",
    "EVM",
    "Memory",
    "Category",
    "OpcodeInfo",
    "Stack",
    "CallRecord",
    "NullTracer",
    "Tracer",
    "TraceStep",
]
