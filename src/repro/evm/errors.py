"""Exceptions raised by the EVM substrate.

The hierarchy mirrors the two classes of failure the paper's gas model
distinguishes: *exceptional halts* (consume all remaining gas, revert all
state changes of the frame) and *revert halts* (refund remaining gas,
revert state changes, return data).
"""

from __future__ import annotations


class EVMError(Exception):
    """Base class for all EVM execution errors."""


class ExceptionalHalt(EVMError):
    """An error that consumes all remaining gas in the current frame."""


class OutOfGas(ExceptionalHalt):
    """Gas check failed before executing an instruction (paper section 2.1)."""


class StackUnderflow(ExceptionalHalt):
    """An instruction popped more operands than the stack holds."""


class StackOverflow(ExceptionalHalt):
    """The operand stack exceeded its maximum depth of 1024."""


class InvalidJump(ExceptionalHalt):
    """A JUMP/JUMPI targeted a byte offset that is not a JUMPDEST."""


class InvalidOpcode(ExceptionalHalt):
    """An undefined opcode byte was fetched."""


class CallDepthExceeded(ExceptionalHalt):
    """The message-call depth exceeded the EVM limit of 1024."""


class WriteInStaticContext(ExceptionalHalt):
    """A state-modifying instruction ran inside a STATICCALL frame."""


class InsufficientBalance(EVMError):
    """A value transfer exceeded the sender's balance."""


class Revert(EVMError):
    """Explicit REVERT: state changes are rolled back, remaining gas kept."""

    def __init__(self, data: bytes = b"") -> None:
        super().__init__("execution reverted")
        self.data = data
