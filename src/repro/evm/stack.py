"""The EVM operand stack.

Depth is capped at 1024 entries of 256-bit words (paper section 3.3.6: "The
maximum depth of the operand stack is 1024, and each element is 256 bits").
"""

from __future__ import annotations

from .errors import StackOverflow, StackUnderflow

MAX_DEPTH = 1024
WORD_MASK = (1 << 256) - 1


class Stack:
    """A bounded LIFO stack of 256-bit unsigned words."""

    __slots__ = ("_items",)

    def __init__(self, items: list[int] | None = None) -> None:
        self._items: list[int] = list(items or [])
        if len(self._items) > MAX_DEPTH:
            raise StackOverflow(f"initial depth {len(self._items)} > {MAX_DEPTH}")

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"Stack({self._items!r})"

    def push(self, value: int) -> None:
        """Push a word, masking to 256 bits."""
        if len(self._items) >= MAX_DEPTH:
            raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
        self._items.append(value & WORD_MASK)

    def pop(self) -> int:
        """Pop and return the top word."""
        if not self._items:
            raise StackUnderflow("pop from empty stack")
        return self._items.pop()

    def pop_n(self, n: int) -> list[int]:
        """Pop *n* words; index 0 of the result is the old stack top."""
        if n > len(self._items):
            raise StackUnderflow(f"pop {n} from stack of depth {len(self._items)}")
        if n == 0:
            return []
        popped = self._items[-n:][::-1]
        del self._items[-n:]
        return popped

    def peek(self, depth: int = 0) -> int:
        """Return the word *depth* positions below the top without popping."""
        if depth >= len(self._items):
            raise StackUnderflow(f"peek depth {depth} on stack of {len(self._items)}")
        return self._items[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: duplicate the n-th word from the top (1-based)."""
        if n > len(self._items):
            raise StackUnderflow(f"DUP{n} on stack of depth {len(self._items)}")
        self.push(self._items[-n])

    def swap(self, n: int) -> None:
        """SWAPn: swap the top word with the (n+1)-th word (1-based)."""
        if n + 1 > len(self._items):
            raise StackUnderflow(f"SWAP{n} on stack of depth {len(self._items)}")
        self._items[-1], self._items[-1 - n] = self._items[-1 - n], self._items[-1]

    def as_list(self) -> list[int]:
        """A copy of the stack contents, bottom first."""
        return list(self._items)
