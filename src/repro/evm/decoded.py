"""The software decoded-bytecode (DB) cache: AOT decode + superinstruction
fusion + a trace-free fast execution path.

The paper's ILP layer decodes raw bytecode once, caches the decoded lines,
and folds hot instruction patterns inside the fill unit (sections 3.3.3 and
3.3.4); :mod:`repro.core.mtpu` models that in *timing*. This module is the
*functional* analogue: it compiles a code blob, once per distinct content,
into a :class:`DecodedProgram` — a flat entry table indexed by pc where

* every PUSH immediate is pre-extracted,
* ``valid_jumpdests`` is precomputed (and statically resolved for fused
  ``PUSH+JUMP``/``PUSH+JUMPI``),
* hot patterns are fused into superinstruction entries mirroring
  :data:`repro.core.mtpu.folding.FOLDABLE_CONSUMERS` — ``PUSH+JUMP[I]``,
  ``PUSH+binop``, ``DUP+binop``, ``SWAP1+POP`` — and runs of
  constant-producing stack code are folded to a single constant push
  (the software form of the paper's §4 constant merging).

:func:`run_program` executes such a program without constructing a single
``TraceStep`` and without shadow-stack maintenance. It is selected by
``EVM._run`` only under a ``NullTracer``; the traced interpreter path is
byte-for-byte untouched, and the fast path preserves *bit-identical*
semantics — receipts, gas, logs, state digest, and crucially the exception
*class* of the first failure (receipts carry ``type(exc).__name__``), which
is why every fused handler stages its gas charges and stack-depth checks in
exactly the legacy per-instruction order.

Why fusing interior pcs is sound: jumps may only land on JUMPDEST, JUMPDEST
is never fused into a pattern's interior, and the fall-through into the
interior is consumed by the pattern itself — so interior pcs are
unreachable and need no entries.

Cache coherence: programs are keyed strictly by code *content* (bytes; a
content hash is attached for introspection), never by address. SELFDESTRUCT
followed by CREATE/CREATE2 redeploying different code at the same address
therefore cannot alias — different bytes are a different key — and
redeploying identical code is a (correct) cache hit.
"""

from __future__ import annotations

from collections import OrderedDict

from ..chain.receipt import LogEntry
from ..crypto import ADDRESS_MASK, keccak256, keccak256_int
from ..obs import get_registry
from . import opcodes
from .alu import _ARITH_FN, _LOGIC_FN
from .code import decode, valid_jumpdests
from .context import CallKind, Message
from .errors import (
    ExceptionalHalt,
    InvalidJump,
    InvalidOpcode,
    Revert,
    StackOverflow,
    StackUnderflow,
    WriteInStaticContext,
)
from .stack import MAX_DEPTH, WORD_MASK

#: Fusion depth of the base folding pass (instructions absorbed per
#: superinstruction). Hotspot-specialized programs fold deeper.
BASE_CHAIN_LIMIT = 4
#: Fusion depth for programs specialized from hotspot constant-elimination
#: profiles (see :meth:`DecodeCache.specialize`).
DEEP_CHAIN_LIMIT = 64
#: Default LRU bound of the process-wide program cache.
DEFAULT_CACHE_PROGRAMS = 4096


class _Halt(Exception):
    """Internal: normal frame termination inside the fast loop."""


# ---------------------------------------------------------------------------
# Handler functions
#
# Each entry is a tuple whose first element is one of these functions;
# ``handler(evm, frame, entry) -> next_pc``. Entries reference
# ``frame.stack._items`` directly: the explicit depth checks below replicate
# the exact legacy check order (pops-before-gas where the legacy handler
# pops first, gas-before-push where it charges first) so the first failing
# exception has the same class in both paths.
# ---------------------------------------------------------------------------


def _h_push(evm, frame, e):
    # (h, next_pc, value)
    frame.gas.consume(3)
    items = frame.stack._items
    if len(items) >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    items.append(e[2])
    return e[1]


def _h_pop(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    items.pop()
    frame.gas.consume(2)
    return e[1]


def _h_dup(evm, frame, e):
    # (h, next_pc, n)
    frame.gas.consume(3)
    items = frame.stack._items
    n = e[2]
    depth = len(items)
    if depth < n:
        raise StackUnderflow(f"DUP{n} on stack of depth {depth}")
    if depth >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    items.append(items[-n])
    return e[1]


def _h_swap(evm, frame, e):
    # (h, next_pc, n)
    frame.gas.consume(3)
    items = frame.stack._items
    n = e[2]
    if len(items) < n + 1:
        raise StackUnderflow(f"SWAP{n} on stack of depth {len(items)}")
    items[-1], items[-1 - n] = items[-1 - n], items[-1]
    return e[1]


def _h_bin(evm, frame, e):
    # (h, next_pc, fn, gas)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    a = items.pop()
    frame.gas.consume(e[3])
    items[-1] = e[2](a, items[-1]) & WORD_MASK
    return e[1]


def _h_un(evm, frame, e):
    # (h, next_pc, fn, gas)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    frame.gas.consume(e[3])
    items[-1] = e[2](items[-1]) & WORD_MASK
    return e[1]


def _h_tri(evm, frame, e):
    # (h, next_pc, fn, gas) — ADDMOD / MULMOD
    items = frame.stack._items
    if len(items) < 3:
        raise StackUnderflow(f"pop 3 from stack of depth {len(items)}")
    a = items.pop()
    b = items.pop()
    frame.gas.consume(e[3])
    items[-1] = e[2](a, b, items[-1]) & WORD_MASK
    return e[1]


def _h_exp(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    a = items.pop()
    b = items[-1]
    frame.gas.consume(
        _G_EXP + evm.schedule.exp_byte * ((b.bit_length() + 7) // 8)
    )
    items[-1] = pow(a, b, 1 << 256)
    return e[1]


def _h_sha3(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    offset = items.pop()
    length = items[-1]
    frame.gas.consume(
        _G_SHA3
        + evm.schedule.sha3_word * ((length + 31) // 32)
        + evm._charge_memory(frame, offset, length)
    )
    items[-1] = keccak256_int(frame.memory.read(offset, length))
    return e[1]


def _h_env0(evm, frame, e):
    # (h, next_pc, getter, gas) — 0-pop environment/context pushes
    frame.gas.consume(e[3])
    items = frame.stack._items
    if len(items) >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    items.append(e[2](evm, frame) & WORD_MASK)
    return e[1]


def _h_calldataload(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    offset = items.pop()
    frame.gas.consume(3)
    chunk = frame.msg.data[offset : offset + 32]
    if len(chunk) < 32:
        chunk = chunk + b"\x00" * (32 - len(chunk))
    items.append(int.from_bytes(chunk, "big"))
    return e[1]


def _h_copy(evm, frame, e):
    # (h, next_pc, opcode_byte, gas) — CALLDATACOPY / CODECOPY /
    # RETURNDATACOPY
    items = frame.stack._items
    if len(items) < 3:
        raise StackUnderflow(f"pop 3 from stack of depth {len(items)}")
    dest = items.pop()
    src = items.pop()
    length = items.pop()
    frame.gas.consume(
        e[3]
        + evm.schedule.copy_word * ((length + 31) // 32)
        + evm._charge_memory(frame, dest, length)
    )
    which = e[2]
    if which == 0x37:
        blob = frame.msg.data
    elif which == 0x39:
        blob = frame.code
    else:
        if src + length > len(frame.return_data):
            raise ExceptionalHalt("RETURNDATACOPY out of bounds")
        blob = frame.return_data
    chunk = blob[src : src + length]
    if len(chunk) < length:
        chunk = chunk + b"\x00" * (length - len(chunk))
    frame.memory.write(dest, chunk)
    return e[1]


def _h_blockhash(evm, frame, e):
    # (h, next_pc, gas)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    height = items.pop()
    frame.gas.consume(e[2])
    items.append(evm.block.blockhash_fn(height) & WORD_MASK)
    return e[1]


def _h_extq(evm, frame, e):
    # (h, next_pc, opcode_byte, gas) — BALANCE / EXTCODESIZE / EXTCODEHASH
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    address = items.pop() & ADDRESS_MASK
    frame.gas.consume(e[3])
    which = e[2]
    if which == 0x31:
        result = evm.state.get_balance(address)
    elif which == 0x3B:
        result = len(evm.state.get_code(address))
    else:
        code = evm.state.get_code(address)
        result = keccak256_int(code) if code else 0
    items.append(result & WORD_MASK)
    return e[1]


def _h_extcodecopy(evm, frame, e):
    # (h, next_pc, gas)
    items = frame.stack._items
    if len(items) < 4:
        raise StackUnderflow(f"pop 4 from stack of depth {len(items)}")
    address = items.pop() & ADDRESS_MASK
    dest = items.pop()
    src = items.pop()
    length = items.pop()
    frame.gas.consume(
        e[2]
        + evm.schedule.copy_word * ((length + 31) // 32)
        + evm._charge_memory(frame, dest, length)
    )
    blob = evm.state.get_code(address)
    chunk = blob[src : src + length]
    if len(chunk) < length:
        chunk = chunk + b"\x00" * (length - len(chunk))
    frame.memory.write(dest, chunk)
    return e[1]


def _h_mload(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    offset = items.pop()
    frame.gas.consume(3 + evm._charge_memory(frame, offset, 32))
    items.append(frame.memory.read_word(offset))
    return e[1]


def _h_mstore(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    offset = items.pop()
    value = items.pop()
    frame.gas.consume(3 + evm._charge_memory(frame, offset, 32))
    frame.memory.write_word(offset, value)
    return e[1]


def _h_mstore8(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    offset = items.pop()
    value = items.pop()
    frame.gas.consume(3 + evm._charge_memory(frame, offset, 1))
    frame.memory.write_byte(offset, value)
    return e[1]


def _h_log(evm, frame, e):
    # (h, next_pc, topic_count, gas)
    if frame.msg.is_static:
        raise WriteInStaticContext("LOG in static context")
    items = frame.stack._items
    topic_count = e[2]
    pops = 2 + topic_count
    if len(items) < pops:
        raise StackUnderflow(f"pop {pops} from stack of depth {len(items)}")
    offset = items.pop()
    length = items.pop()
    topics = tuple(items.pop() for _ in range(topic_count))
    schedule = evm.schedule
    frame.gas.consume(
        e[3]
        + schedule.log_topic * topic_count
        + schedule.log_data_byte * length
        + evm._charge_memory(frame, offset, length)
    )
    data = frame.memory.read(offset, length)
    frame.logs.append(LogEntry(frame.msg.to, topics, data))
    return e[1]


def _h_sload(evm, frame, e):
    # (h, next_pc, gas)
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    slot = items.pop()
    frame.gas.consume(e[2])
    items.append(evm.state.get_storage(frame.msg.to, slot) & WORD_MASK)
    return e[1]


def _h_sstore(evm, frame, e):
    # (h, next_pc)
    if frame.msg.is_static:
        raise WriteInStaticContext("SSTORE in static context")
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    slot = items.pop()
    value = items.pop()
    address = frame.msg.to
    old = evm.state.get_storage(address, slot)
    schedule = evm.schedule
    if old == 0 and value != 0:
        frame.gas.consume(schedule.sstore_set)
    else:
        frame.gas.consume(schedule.sstore_reset)
    if old != 0 and value == 0:
        frame.gas.add_refund(schedule.sstore_clear_refund)
    evm.state.set_storage(address, slot, value)
    return e[1]


def _h_jump(evm, frame, e):
    # (h,) — dynamic target, validated against the precomputed set
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    target = items.pop()
    frame.gas.consume(8)
    if target not in frame.jumpdests:
        raise InvalidJump(f"jump to {target:#x}")
    return target


def _h_jumpi(evm, frame, e):
    # (h, next_pc)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    target = items.pop()
    condition = items.pop()
    frame.gas.consume(10)
    if condition:
        if target not in frame.jumpdests:
            raise InvalidJump(f"jumpi to {target:#x}")
        return target
    return e[1]


def _h_jumpdest(evm, frame, e):
    # (h, next_pc)
    frame.gas.consume(1)
    return e[1]


def _h_stop(evm, frame, e):
    frame.output = b""
    raise _Halt


def _h_return(evm, frame, e):
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    offset = items.pop()
    length = items.pop()
    frame.gas.consume(evm._charge_memory(frame, offset, length))
    frame.output = frame.memory.read(offset, length)
    raise _Halt


def _h_revert(evm, frame, e):
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"pop 2 from stack of depth {len(items)}")
    offset = items.pop()
    length = items.pop()
    frame.gas.consume(evm._charge_memory(frame, offset, length))
    raise Revert(frame.memory.read(offset, length))


def _h_invalid(evm, frame, e):
    # (h, opcode_byte) — INVALID and undefined bytes
    raise InvalidOpcode(f"invalid opcode 0x{e[1]:02x}")


def _h_call(evm, frame, e):
    # (h, next_pc, opcode_byte, gas)
    items = frame.stack._items
    kind = e[2]
    with_value = kind in (0xF1, 0xF2)
    pops = 7 if with_value else 6
    if len(items) < pops:
        raise StackUnderflow(f"pop {pops} from stack of depth {len(items)}")
    gas_req = items.pop()
    to = items.pop() & ADDRESS_MASK
    value = items.pop() if with_value else 0
    in_off = items.pop()
    in_len = items.pop()
    out_off = items.pop()
    out_len = items.pop()
    msg = frame.msg

    if value and msg.is_static:
        raise WriteInStaticContext("value transfer in static context")

    schedule = evm.schedule
    gas_cost = e[3]
    if value:
        gas_cost += schedule.call_value_transfer
        if kind == 0xF1 and not evm.state.account_exists(to):
            gas_cost += schedule.call_new_account
    gas_cost += evm._charge_memory(frame, in_off, in_len)
    gas_cost += evm._charge_memory(frame, out_off, out_len)
    gas = frame.gas
    gas.consume(gas_cost)

    available = gas.remaining - gas.remaining // 64
    child_gas = gas_req if gas_req < available else available
    gas.consume(child_gas)
    if value:
        child_gas += schedule.call_stipend

    call_data = frame.memory.read(in_off, in_len)
    if kind == 0xF1:
        child = Message(
            caller=msg.to, to=to, value=value, data=call_data,
            gas=child_gas, code_address=to, origin=msg.origin,
            gas_price=msg.gas_price, depth=msg.depth + 1,
            is_static=msg.is_static, kind=CallKind.CALL,
        )
    elif kind == 0xF2:
        child = Message(
            caller=msg.to, to=msg.to, value=value, data=call_data,
            gas=child_gas, code_address=to, origin=msg.origin,
            gas_price=msg.gas_price, depth=msg.depth + 1,
            is_static=msg.is_static, kind=CallKind.CALLCODE,
        )
    elif kind == 0xF4:
        child = Message(
            caller=msg.caller, to=msg.to, value=msg.value, data=call_data,
            gas=child_gas, code_address=to, origin=msg.origin,
            gas_price=msg.gas_price, depth=msg.depth + 1,
            is_static=msg.is_static, kind=CallKind.DELEGATECALL,
        )
    else:
        child = Message(
            caller=msg.to, to=to, value=0, data=call_data,
            gas=child_gas, code_address=to, origin=msg.origin,
            gas_price=msg.gas_price, depth=msg.depth + 1,
            is_static=True, kind=CallKind.STATICCALL,
        )

    result = evm.call(child)
    gas.return_gas(result.gas_left)
    if result.success:
        gas.refund += result.refund
        frame.logs.extend(result.logs)
    frame.return_data = result.output
    if out_len and result.output:
        frame.memory.write(out_off, result.output[:out_len])
    items.append(1 if result.success else 0)
    return e[1]


def _h_create(evm, frame, e):
    # (h, next_pc, is_create2, gas)
    msg = frame.msg
    if msg.is_static:
        raise WriteInStaticContext("CREATE in static context")
    items = frame.stack._items
    is_create2 = e[2]
    pops = 4 if is_create2 else 3
    if len(items) < pops:
        raise StackUnderflow(f"pop {pops} from stack of depth {len(items)}")
    value = items.pop()
    offset = items.pop()
    length = items.pop()
    salt = items.pop() if is_create2 else 0
    gas = frame.gas
    gas.consume(e[3] + evm._charge_memory(frame, offset, length))
    init_code = frame.memory.read(offset, length)

    available = gas.remaining - gas.remaining // 64
    gas.consume(available)

    child = Message(
        caller=msg.to, to=0, value=value, data=b"",
        gas=available, code_address=0, origin=msg.origin,
        gas_price=msg.gas_price, depth=msg.depth + 1,
        kind=CallKind.CREATE2 if is_create2 else CallKind.CREATE,
        create_code=init_code,
    )
    if is_create2:
        child.value_salt = salt  # type: ignore[attr-defined]

    result = evm.call(child)
    gas.return_gas(result.gas_left)
    if result.success:
        gas.refund += result.refund
        frame.logs.extend(result.logs)
        items.append(result.created_address or 0)
    else:
        items.append(0)
    frame.return_data = result.output if not result.success else b""
    return e[1]


def _h_selfdestruct(evm, frame, e):
    # (h, gas)
    if frame.msg.is_static:
        raise WriteInStaticContext("SELFDESTRUCT in static context")
    items = frame.stack._items
    if not items:
        raise StackUnderflow("pop from empty stack")
    beneficiary = items.pop() & ADDRESS_MASK
    frame.gas.consume(e[1])
    state = evm.state
    me = frame.msg.to
    balance = state.get_balance(me)
    if balance:
        state.set_balance(beneficiary, state.get_balance(beneficiary) + balance)
    state.set_balance(me, 0)
    state.delete_account(me)
    frame.output = b""
    raise _Halt


# -- superinstruction handlers ----------------------------------------------
# Gas charges and depth checks are staged in legacy per-instruction order so
# the first failure raises the same exception class the unfused sequence
# would (receipts record the class name).


def _h_push_jump(evm, frame, e):
    # (h, target, target_is_valid)
    frame.gas.consume(3)
    if len(frame.stack._items) >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    frame.gas.consume(8)
    if not e[2]:
        raise InvalidJump(f"jump to {e[1]:#x}")
    return e[1]


def _h_push_jumpi(evm, frame, e):
    # (h, next_pc, target, target_is_valid)
    frame.gas.consume(3)
    items = frame.stack._items
    depth = len(items)
    if depth >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    if depth < 1:
        raise StackUnderflow("pop 2 from stack of depth 1")
    condition = items.pop()
    frame.gas.consume(10)
    if condition:
        if not e[3]:
            raise InvalidJump(f"jumpi to {e[2]:#x}")
        return e[2]
    return e[1]


def _h_push_bin(evm, frame, e):
    # (h, next_pc, immediate, fn, gas) — PUSH x; BINOP  ≡  top = fn(x, top)
    frame.gas.consume(3)
    items = frame.stack._items
    depth = len(items)
    if depth >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    if depth < 1:
        raise StackUnderflow("pop 2 from stack of depth 1")
    frame.gas.consume(e[4])
    items[-1] = e[3](e[2], items[-1]) & WORD_MASK
    return e[1]


def _h_dup_bin(evm, frame, e):
    # (h, next_pc, n, fn, gas) — DUPn; BINOP  ≡  top = fn(x_n, top)
    frame.gas.consume(3)
    items = frame.stack._items
    n = e[2]
    depth = len(items)
    if depth < n:
        raise StackUnderflow(f"DUP{n} on stack of depth {depth}")
    if depth >= MAX_DEPTH:
        raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    frame.gas.consume(e[4])
    items[-1] = e[3](items[-n], items[-1]) & WORD_MASK
    return e[1]


def _h_swap1_pop(evm, frame, e):
    # (h, next_pc) — SWAP1; POP  ≡  delete the second-from-top word
    frame.gas.consume(3)
    items = frame.stack._items
    if len(items) < 2:
        raise StackUnderflow(f"SWAP1 on stack of depth {len(items)}")
    frame.gas.consume(2)
    del items[-2]
    return e[1]


def _h_const(evm, frame, e):
    # (h, next_pc, stages, values) — a folded constant chain. ``stages``
    # replays the original gas/overflow schedule: each (gas, threshold)
    # consumes then — when threshold is non-zero — raises StackOverflow iff
    # the *real* depth is >= threshold (threshold = MAX_DEPTH minus the
    # chain's virtual depth at that original instruction).
    gas = frame.gas
    items = frame.stack._items
    for amount, threshold in e[2]:
        gas.consume(amount)
        if threshold and len(items) >= threshold:
            raise StackOverflow(f"stack depth would exceed {MAX_DEPTH}")
    items.extend(e[3])
    return e[1]


# ---------------------------------------------------------------------------
# Decode-time tables
# ---------------------------------------------------------------------------

_G_EXP = opcodes.BY_NAME["EXP"].gas
_G_SHA3 = opcodes.BY_NAME["SHA3"].gas

#: Two-pop pure binops fusable behind a PUSH/DUP (EXP excluded: its gas
#: depends on the runtime exponent). Mirrors the arithmetic/logic rows of
#: the MTPU folding catalogue.
_BIN_FN: dict[int, object] = {}
for _name, _fn in {**_ARITH_FN, **_LOGIC_FN}.items():
    _info = opcodes.BY_NAME[_name]
    if _info.pops == 2 and _name != "EXP":
        _BIN_FN[_info.value] = _fn

_UN_FN = {
    opcodes.BY_NAME[name].value: fn
    for name, fn in _LOGIC_FN.items()
    if opcodes.BY_NAME[name].pops == 1
}

#: Pure stack ops eligible inside a constant chain. EXP is excluded even
#: with a constant exponent: its dynamic gas reads the runtime
#: ``GasSchedule``, which a decoded (schedule-agnostic) program must not
#: bake in.
_CHAIN_FN: dict[int, object] = dict(_BIN_FN)
_CHAIN_FN.update(_UN_FN)
_CHAIN_FN[opcodes.BY_NAME["ADDMOD"].value] = _ARITH_FN["ADDMOD"]
_CHAIN_FN[opcodes.BY_NAME["MULMOD"].value] = _ARITH_FN["MULMOD"]

_ENV_GETTERS = {
    0x30: lambda evm, frame: frame.msg.to,
    0x32: lambda evm, frame: frame.msg.origin,
    0x33: lambda evm, frame: frame.msg.caller,
    0x34: lambda evm, frame: frame.msg.value,
    0x36: lambda evm, frame: len(frame.msg.data),
    0x38: lambda evm, frame: len(frame.code),
    0x3A: lambda evm, frame: frame.msg.gas_price,
    0x3D: lambda evm, frame: len(frame.return_data),
    0x41: lambda evm, frame: evm.block.coinbase,
    0x42: lambda evm, frame: evm.block.timestamp,
    0x43: lambda evm, frame: evm.block.height,
    0x44: lambda evm, frame: evm.block.difficulty,
    0x45: lambda evm, frame: evm.block.gas_limit,
    0x59: lambda evm, frame: frame.memory.size_words * 32,
    0x5A: lambda evm, frame: frame.gas.remaining,
}


# ---------------------------------------------------------------------------
# The decode pass
# ---------------------------------------------------------------------------


class DecodedProgram:
    """One code blob compiled to a pc-indexed entry table."""

    __slots__ = (
        "code", "code_hash", "code_len", "entries", "jumpdests",
        "instruction_count", "fused_count", "folded_instructions",
        "specialized", "hot_pcs",
    )

    def __init__(self, code, code_hash, entries, jumpdests,
                 instruction_count, fused_count, folded_instructions,
                 specialized, hot_pcs):
        self.code = code
        self.code_hash = code_hash
        self.code_len = len(code)
        self.entries = entries
        self.jumpdests = jumpdests
        self.instruction_count = instruction_count
        self.fused_count = fused_count
        self.folded_instructions = folded_instructions
        self.specialized = specialized
        self.hot_pcs = hot_pcs

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        tag = " specialized" if self.specialized else ""
        return (
            f"<DecodedProgram {self.code_hash.hex()[:12]}… "
            f"{self.instruction_count} instrs, {self.fused_count} fused"
            f"{tag}>"
        )


def _match_const_chain(instrs, start, limit, jumpdests):
    """Fold a maximal run of constant-producing stack code at *start*.

    Simulates PUSH/DUP/SWAP/POP and pure arithmetic/logic over a virtual
    constant stack; every operand must come from within the chain. Returns
    ``(stages, values, length, next_pc)`` or None. A chain must absorb at
    least two instructions including one non-PUSH computation (plain PUSH
    runs are left for branch/binop pair fusion).
    """
    vstack: list[int] = []
    # (gas accumulated since the previous check, overflow threshold or 0);
    # merged so uncheckpointed charges collapse into one consume() without
    # moving any charge across a depth check.
    stages: list[tuple[int, int]] = []
    pending_gas = 0
    pure_ops = 0
    length = 0
    j = start
    n = len(instrs)
    while j < n and length < limit:
        ins = instrs[j]
        value = ins.op.value
        if 0x60 <= value <= 0x7F:
            # Leave a PUSH that feeds a JUMP/JUMPI to branch fusion.
            if j + 1 < n and instrs[j + 1].op.value in (0x56, 0x57):
                break
            pending_gas += 3
            stages.append((pending_gas, MAX_DEPTH - len(vstack)))
            pending_gas = 0
            vstack.append((ins.immediate or 0) & WORD_MASK)
        elif 0x80 <= value <= 0x8F:
            k = value - 0x7F
            if k > len(vstack):
                break
            pending_gas += 3
            stages.append((pending_gas, MAX_DEPTH - len(vstack)))
            pending_gas = 0
            vstack.append(vstack[-k])
        elif 0x90 <= value <= 0x9F:
            k = value - 0x8F
            if k + 1 > len(vstack):
                break
            pending_gas += 3
            vstack[-1], vstack[-1 - k] = vstack[-1 - k], vstack[-1]
        elif value == 0x50:  # POP
            if not vstack:
                break
            pending_gas += 2
            vstack.pop()
        else:
            fn = _CHAIN_FN.get(value)
            if fn is None or ins.op.pops > len(vstack):
                break
            args = [vstack.pop() for _ in range(ins.op.pops)]
            pending_gas += ins.op.gas
            vstack.append(fn(*args) & WORD_MASK)
            pure_ops += 1
        length += 1
        j += 1
    if length < 2 or pure_ops == 0:
        return None
    if pending_gas:
        stages.append((pending_gas, 0))
    next_pc = instrs[j].pc if j < n else instrs[j - 1].next_pc
    return tuple(stages), tuple(vstack), length, next_pc


def _plain_entry(ins, evm_pc_getter_cache=None):
    """The unfused entry for one decoded instruction."""
    op = ins.op
    value = op.value
    npc = ins.next_pc
    if 0x60 <= value <= 0x7F:
        return (_h_push, npc, (ins.immediate or 0) & WORD_MASK)
    if 0x80 <= value <= 0x8F:
        return (_h_dup, npc, value - 0x7F)
    if 0x90 <= value <= 0x9F:
        return (_h_swap, npc, value - 0x8F)
    fn = _BIN_FN.get(value)
    if fn is not None:
        return (_h_bin, npc, fn, op.gas)
    fn = _UN_FN.get(value)
    if fn is not None:
        return (_h_un, npc, fn, op.gas)
    if value in (0x08, 0x09):
        return (_h_tri, npc, _ARITH_FN[op.name], op.gas)
    if value == 0x0A:
        return (_h_exp, npc)
    if value == 0x20:
        return (_h_sha3, npc)
    getter = _ENV_GETTERS.get(value)
    if getter is not None:
        return (_h_env0, npc, getter, op.gas)
    if value == 0x58:  # PC: the immediate *is* the value
        return (_h_env0, npc, (lambda evm, frame, _pc=ins.pc: _pc), op.gas)
    if value == 0x35:
        return (_h_calldataload, npc)
    if value in (0x37, 0x39, 0x3E):
        return (_h_copy, npc, value, op.gas)
    if value == 0x40:
        return (_h_blockhash, npc, op.gas)
    if value in (0x31, 0x3B, 0x3F):
        return (_h_extq, npc, value, op.gas)
    if value == 0x3C:
        return (_h_extcodecopy, npc, op.gas)
    if value == 0x50:
        return (_h_pop, npc)
    if value == 0x51:
        return (_h_mload, npc)
    if value == 0x52:
        return (_h_mstore, npc)
    if value == 0x53:
        return (_h_mstore8, npc)
    if value == 0x54:
        return (_h_sload, npc, op.gas)
    if value == 0x55:
        return (_h_sstore, npc)
    if value == 0x56:
        return (_h_jump,)
    if value == 0x57:
        return (_h_jumpi, npc)
    if value == 0x5B:
        return (_h_jumpdest, npc)
    if 0xA0 <= value <= 0xA4:
        return (_h_log, npc, value - 0xA0, op.gas)
    if value in (0xF1, 0xF2, 0xF4, 0xFA):
        return (_h_call, npc, value, op.gas)
    if value in (0xF0, 0xF5):
        return (_h_create, npc, value == 0xF5, op.gas)
    if value == 0x00:
        return (_h_stop,)
    if value == 0xF3:
        return (_h_return,)
    if value == 0xFD:
        return (_h_revert,)
    if value == 0xFF:
        return (_h_selfdestruct, op.gas)
    return (_h_invalid, value)  # INVALID and undefined bytes


def build_program(
    code: bytes,
    *,
    chain_limit: int = BASE_CHAIN_LIMIT,
    fuse: bool = True,
    specialized: bool = False,
    hot_pcs: frozenset[int] = frozenset(),
) -> DecodedProgram:
    """AOT-compile *code* into a :class:`DecodedProgram`."""
    instrs = decode(code)
    jumpdests = valid_jumpdests(code)
    entries: list[tuple | None] = [None] * len(code)
    fused = 0
    folded = 0
    i = 0
    n = len(instrs)
    while i < n:
        ins = instrs[i]
        value = ins.op.value
        if fuse:
            chain = _match_const_chain(instrs, i, chain_limit, jumpdests)
            if chain is not None:
                stages, values, length, next_pc = chain
                entries[ins.pc] = (_h_const, next_pc, stages, values)
                fused += 1
                folded += length - 1
                i += length
                continue
            nxt = instrs[i + 1] if i + 1 < n else None
            if nxt is not None:
                if 0x60 <= value <= 0x7F:
                    imm = (ins.immediate or 0) & WORD_MASK
                    nv = nxt.op.value
                    if nv == 0x56:
                        entries[ins.pc] = (
                            _h_push_jump, imm, imm in jumpdests
                        )
                        fused += 1
                        folded += 1
                        i += 2
                        continue
                    if nv == 0x57:
                        entries[ins.pc] = (
                            _h_push_jumpi, nxt.next_pc, imm,
                            imm in jumpdests,
                        )
                        fused += 1
                        folded += 1
                        i += 2
                        continue
                    fn = _BIN_FN.get(nv)
                    if fn is not None:
                        entries[ins.pc] = (
                            _h_push_bin, nxt.next_pc, imm, fn, nxt.op.gas
                        )
                        fused += 1
                        folded += 1
                        i += 2
                        continue
                elif 0x80 <= value <= 0x8F:
                    fn = _BIN_FN.get(nxt.op.value)
                    if fn is not None:
                        entries[ins.pc] = (
                            _h_dup_bin, nxt.next_pc, value - 0x7F, fn,
                            nxt.op.gas,
                        )
                        fused += 1
                        folded += 1
                        i += 2
                        continue
                elif value == 0x90 and nxt.op.value == 0x50:
                    entries[ins.pc] = (_h_swap1_pop, nxt.next_pc)
                    fused += 1
                    folded += 1
                    i += 2
                    continue
        entries[ins.pc] = _plain_entry(ins)
        i += 1
    return DecodedProgram(
        code=code,
        code_hash=keccak256(code),
        entries=entries,
        jumpdests=jumpdests,
        instruction_count=n,
        fused_count=fused,
        folded_instructions=folded,
        specialized=specialized,
        hot_pcs=hot_pcs,
    )


# ---------------------------------------------------------------------------
# The trace-free execution loop
# ---------------------------------------------------------------------------


def run_program(evm, frame, program: DecodedProgram) -> None:
    """Execute *frame* over a decoded program (NullTracer fast path)."""
    frame.jumpdests = program.jumpdests
    entries = program.entries
    code_len = program.code_len
    pc = frame.pc
    try:
        while pc < code_len:
            e = entries[pc]
            pc = e[0](evm, frame, e)
    except _Halt:
        pass
    frame.pc = pc
    frame.halted = True  # fell off the end: implicit STOP


# ---------------------------------------------------------------------------
# The process-wide program cache
# ---------------------------------------------------------------------------


class DecodeCache:
    """Content-keyed LRU of decoded programs (the software DB cache).

    Keys are the raw code bytes — content-addressed exactly like a code
    hash, never an address — so code mutation at a reused address
    (SELFDESTRUCT then CREATE/CREATE2) can never serve a stale program.
    One instance per process; pool workers each hold their own and decode
    a given contract once per worker, not once per transaction.
    """

    def __init__(self, max_programs: int = DEFAULT_CACHE_PROGRAMS) -> None:
        if max_programs < 1:
            raise ValueError(f"max_programs must be >= 1, got {max_programs}")
        self.max_programs = max_programs
        self._programs: OrderedDict[bytes, DecodedProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.specialized_count = 0

    def __len__(self) -> int:
        return len(self._programs)

    def get(self, code: bytes) -> DecodedProgram:
        """The decoded program for *code* (decoding on first touch)."""
        programs = self._programs
        program = programs.get(code)
        if program is not None:
            programs.move_to_end(code)
            self.hits += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter("evm.decode_cache_hits").inc()
            return program
        program = build_program(code)
        self.misses += 1
        self._insert(code, program)
        registry = get_registry()
        if registry.enabled:
            registry.counter("evm.decode_cache_misses").inc()
            if program.fused_count:
                registry.counter("evm.fused_instructions").inc(
                    program.fused_count
                )
        return program

    def specialize(
        self, code: bytes, hot_pcs: set[int] | frozenset[int]
    ) -> DecodedProgram | None:
        """Install a deeper-folded program for profiled *code*.

        Fed by the hotspot optimizer's constant-elimination results: a
        contract whose profile shows eliminable constant traffic gets a
        program rebuilt with :data:`DEEP_CHAIN_LIMIT` so long constant
        chains collapse into single entries. Semantics never depend on
        the profile (the fold is statically sound), so bit-identity holds
        even if the profile is stale.
        """
        if not code:
            return None
        program = build_program(
            code,
            chain_limit=DEEP_CHAIN_LIMIT,
            specialized=True,
            hot_pcs=frozenset(hot_pcs),
        )
        self._insert(code, program)
        self.specialized_count += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("evm.specialized_programs").inc()
            extra = program.fused_count
            if extra:
                registry.counter("evm.fused_instructions").inc(extra)
        return program

    def warm(self, code: bytes) -> bool:
        """Pre-decode *code* (deploy/commit/startup warming). Returns
        True when the cache now holds a program for it."""
        if not code:
            return False
        self.get(code)
        return True

    def _insert(self, code: bytes, program: DecodedProgram) -> None:
        programs = self._programs
        programs[code] = program
        programs.move_to_end(code)
        while len(programs) > self.max_programs:
            programs.popitem(last=False)

    def clear(self) -> None:
        self._programs.clear()
        self.hits = 0
        self.misses = 0
        self.specialized_count = 0

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "programs": len(self._programs),
            "specialized": self.specialized_count,
            "limit": self.max_programs,
        }


#: The per-process cache shared by every EVM instance (and, via fork/spawn
#: initializers, warmed per pool worker).
DECODE_CACHE = DecodeCache()


def warm_code(code: bytes) -> bool:
    """Warm the process cache for one code blob."""
    return DECODE_CACHE.warm(code)


def warm_state_codes(state) -> int:
    """Warm the cache for every code-bearing account in *state*.

    Reads the account table directly (no access tracking, no journal);
    used at serve-builder construction, replica snapshot install, and
    pool-worker init.
    """
    warmed = 0
    for account in state._accounts.values():
        if account.code:
            DECODE_CACHE.warm(account.code)
            warmed += 1
    return warmed
