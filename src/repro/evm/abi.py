"""Minimal ABI: calldata encoding for the contract suite.

Covers the static types our contracts use (``address``, ``uint256``,
``bool``, ``bytes32``) with the standard head-only layout: 4-byte selector
followed by 32-byte words. This is the *Input* field of the paper's
transaction format (Fig. 3a): function identifier + incoming parameters.
"""

from __future__ import annotations

from ..crypto import selector

WORD = 32


def encode_uint(value: int) -> bytes:
    """One 32-byte big-endian word."""
    if value < 0 or value >= 1 << 256:
        raise ValueError(f"uint256 out of range: {value}")
    return value.to_bytes(WORD, "big")


def encode_call(signature: str, *args: int) -> bytes:
    """Selector + word-encoded static arguments."""
    return selector(signature) + b"".join(encode_uint(arg) for arg in args)


def decode_words(data: bytes) -> list[int]:
    """Split return data into 32-byte words."""
    if len(data) % WORD:
        data = data + b"\x00" * (WORD - len(data) % WORD)
    return [
        int.from_bytes(data[i : i + WORD], "big")
        for i in range(0, len(data), WORD)
    ]


def decode_uint(data: bytes) -> int:
    """Interpret return data as a single uint256."""
    words = decode_words(data)
    return words[0] if words else 0
