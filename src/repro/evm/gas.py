"""Gas accounting.

The paper's central consistency constraint (section 3.3.3) is that *every
transaction has exactly one deterministic gas consumption*: the Gas unit
checks the margin before each instruction, and speculative execution that
could burn gas on a wrong path is forbidden. The interpreter charges gas
through a :class:`GasMeter` so that the total is deterministic and
out-of-gas aborts atomically.

Static per-opcode charges live in :mod:`repro.evm.opcodes`; this module
adds the dynamic components (memory expansion, per-word hashing/copying,
SSTORE set/reset, EXP byte cost, LOG data, call/create surcharges) behind a
configurable :class:`GasSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import OutOfGas


@dataclass(frozen=True)
class GasSchedule:
    """Dynamic gas-cost coefficients (yellow-paper-style defaults)."""

    memory_word: int = 3  # linear memory expansion cost per word
    memory_quad_divisor: int = 512  # quadratic expansion divisor
    sha3_word: int = 6  # per 32-byte word hashed
    copy_word: int = 3  # per 32-byte word copied (CALLDATACOPY etc.)
    exp_byte: int = 50  # per byte of exponent
    log_data_byte: int = 8  # per byte of LOG payload
    log_topic: int = 375  # per LOG topic
    sstore_set: int = 20000  # zero -> non-zero
    sstore_reset: int = 5000  # non-zero -> any
    sstore_clear_refund: int = 15000  # non-zero -> zero refund
    call_value_transfer: int = 9000  # CALL with value > 0
    call_new_account: int = 25000  # CALL creating a fresh account
    call_stipend: int = 2300  # stipend passed to value-receiving callee
    tx_base: int = 21000  # intrinsic transaction cost
    tx_data_zero_byte: int = 4
    tx_data_nonzero_byte: int = 16
    code_deposit_byte: int = 200  # per byte of deployed code

    def memory_cost(self, words: int) -> int:
        """Total cost of a memory of *words* 32-byte words."""
        return self.memory_word * words + (words * words) // self.memory_quad_divisor

    def memory_expansion_cost(self, current_words: int, new_words: int) -> int:
        """Marginal cost of growing memory from current to new size."""
        if new_words <= current_words:
            return 0
        return self.memory_cost(new_words) - self.memory_cost(current_words)

    def intrinsic_gas(self, data: bytes, is_create: bool = False) -> int:
        """Intrinsic cost charged before a transaction starts executing."""
        cost = self.tx_base + (32000 if is_create else 0)
        for byte in data:
            cost += self.tx_data_zero_byte if byte == 0 else self.tx_data_nonzero_byte
        return cost


DEFAULT_SCHEDULE = GasSchedule()


class GasMeter:
    """Tracks the remaining gas of one execution frame.

    ``consume`` mirrors the paper's Gas unit: the margin is checked before
    the instruction executes, and a shortfall raises :class:`OutOfGas`.
    """

    __slots__ = ("remaining", "refund", "consumed")

    def __init__(self, limit: int) -> None:
        self.remaining = limit
        self.refund = 0
        self.consumed = 0

    def consume(self, amount: int, reason: str = "") -> None:
        """Deduct *amount* gas, raising :class:`OutOfGas` on shortfall."""
        if amount < 0:
            raise ValueError(f"negative gas amount {amount}")
        if amount > self.remaining:
            raise OutOfGas(
                f"out of gas: need {amount}, have {self.remaining}"
                + (f" ({reason})" if reason else "")
            )
        self.remaining -= amount
        self.consumed += amount

    def add_refund(self, amount: int) -> None:
        """Accumulate an SSTORE-clear refund (applied at transaction end)."""
        self.refund += amount

    def return_gas(self, amount: int) -> None:
        """Return unused gas from a completed child call frame."""
        if amount < 0:
            raise ValueError(f"negative gas return {amount}")
        self.remaining += amount
        self.consumed -= amount
