"""The smart-contract instruction set (paper Table 3).

Every opcode carries the metadata the rest of the system needs:

* ``pops`` / ``pushes`` — stack arity, used by the interpreter, by the fill
  unit's symbolic-stack dependency analysis (RAW/WAR/WAW detection), and by
  the hotspot backtracker.
* ``gas`` — the static gas charge. Dynamic components (memory expansion,
  per-word SHA3 cost, SSTORE set/reset, ...) live in
  :mod:`repro.evm.gas`.
* ``category`` — the functional unit that executes the opcode in the MTPU
  (paper Table 3 groups the ISA into eleven functional units). A DB-cache
  line holds at most one instruction per functional-unit field.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Category(enum.Enum):
    """Functional-unit categories from paper Table 3."""

    ARITHMETIC = "Arithmetic"
    LOGIC = "Logic"
    SHA = "SHA"
    FIXED_ACCESS = "Fixed access"
    STATE_QUERY = "State query"
    MEMORY = "Memory"
    STORAGE = "Storage"
    BRANCH = "Branch"
    STACK = "Stack"
    CONTROL = "Control"
    CONTEXT = "Context switching"


#: Categories whose functional units the paper classifies as
#: *reconfigurable*: simple single-result logic that completes in half a
#: cycle, so one RAW dependency between two such units can be hidden by
#: data forwarding inside a DB-cache line (paper section 3.3.4).
RECONFIGURABLE_CATEGORIES = frozenset(
    {Category.ARITHMETIC, Category.LOGIC, Category.STACK}
)

#: Units that may *receive* a forwarded result. The branch unit is
#: included: the paper's dispatch example places the folded EQ and the
#: folded JUMPI in one line, "eliminating the RAW dependency between them
#: through forwarding technology" (section 3.3.4).
FORWARD_CONSUMER_CATEGORIES = RECONFIGURABLE_CATEGORIES | {Category.BRANCH}


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one opcode."""

    value: int
    name: str
    pops: int
    pushes: int
    gas: int
    category: Category
    immediate_size: int = 0  # bytes of inline immediate (PUSH1..PUSH32)
    is_terminator: bool = False  # ends the current execution frame

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{self.name} 0x{self.value:02x}>"


# Static gas charges, loosely following the Ethereum yellow-paper schedule.
# They are plain module constants (not per-instance config) because the ISA
# definition is fixed; the *dynamic* schedule is configurable in
# repro.evm.gas.GasSchedule.
G_ZERO = 0
G_BASE = 2
G_VERYLOW = 3
G_LOW = 5
G_MID = 8
G_HIGH = 10
G_JUMPDEST = 1
G_SHA3 = 30
G_SLOAD = 200
G_SSTORE_BASE = 5000
G_BALANCE = 400
G_EXTCODE = 700
G_EXTCODEHASH = 400
G_BLOCKHASH = 20
G_LOG = 375
G_CALL = 700
G_CREATE = 32000
G_SELFDESTRUCT = 5000
G_EXP = 10

_TABLE: dict[int, OpcodeInfo] = {}


def _op(
    value: int,
    name: str,
    pops: int,
    pushes: int,
    gas: int,
    category: Category,
    immediate_size: int = 0,
    is_terminator: bool = False,
) -> None:
    if value in _TABLE:
        raise ValueError(f"duplicate opcode 0x{value:02x}")
    _TABLE[value] = OpcodeInfo(
        value, name, pops, pushes, gas, category, immediate_size, is_terminator
    )


# --- Control (0x00, 0xf3, 0xfd) ------------------------------------------
_op(0x00, "STOP", 0, 0, G_ZERO, Category.CONTROL, is_terminator=True)

# --- Arithmetic (0x01-0x0b) ----------------------------------------------
_op(0x01, "ADD", 2, 1, G_VERYLOW, Category.ARITHMETIC)
_op(0x02, "MUL", 2, 1, G_LOW, Category.ARITHMETIC)
_op(0x03, "SUB", 2, 1, G_VERYLOW, Category.ARITHMETIC)
_op(0x04, "DIV", 2, 1, G_LOW, Category.ARITHMETIC)
_op(0x05, "SDIV", 2, 1, G_LOW, Category.ARITHMETIC)
_op(0x06, "MOD", 2, 1, G_LOW, Category.ARITHMETIC)
_op(0x07, "SMOD", 2, 1, G_LOW, Category.ARITHMETIC)
_op(0x08, "ADDMOD", 3, 1, G_MID, Category.ARITHMETIC)
_op(0x09, "MULMOD", 3, 1, G_MID, Category.ARITHMETIC)
_op(0x0A, "EXP", 2, 1, G_EXP, Category.ARITHMETIC)
_op(0x0B, "SIGNEXTEND", 2, 1, G_LOW, Category.ARITHMETIC)

# --- Logic (0x10-0x1d) ----------------------------------------------------
_op(0x10, "LT", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x11, "GT", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x12, "SLT", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x13, "SGT", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x14, "EQ", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x15, "ISZERO", 1, 1, G_VERYLOW, Category.LOGIC)
_op(0x16, "AND", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x17, "OR", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x18, "XOR", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x19, "NOT", 1, 1, G_VERYLOW, Category.LOGIC)
_op(0x1A, "BYTE", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x1B, "SHL", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x1C, "SHR", 2, 1, G_VERYLOW, Category.LOGIC)
_op(0x1D, "SAR", 2, 1, G_VERYLOW, Category.LOGIC)

# --- SHA (0x20) -----------------------------------------------------------
_op(0x20, "SHA3", 2, 1, G_SHA3, Category.SHA)

# --- Fixed access / state query (0x30-0x45, 0x58, 0x5a) --------------------
_op(0x30, "ADDRESS", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x31, "BALANCE", 1, 1, G_BALANCE, Category.STATE_QUERY)
_op(0x32, "ORIGIN", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x33, "CALLER", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x34, "CALLVALUE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x35, "CALLDATALOAD", 1, 1, G_VERYLOW, Category.FIXED_ACCESS)
_op(0x36, "CALLDATASIZE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x37, "CALLDATACOPY", 3, 0, G_VERYLOW, Category.FIXED_ACCESS)
_op(0x38, "CODESIZE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x39, "CODECOPY", 3, 0, G_VERYLOW, Category.FIXED_ACCESS)
_op(0x3A, "GASPRICE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x3B, "EXTCODESIZE", 1, 1, G_EXTCODE, Category.STATE_QUERY)
_op(0x3C, "EXTCODECOPY", 4, 0, G_EXTCODE, Category.STATE_QUERY)
_op(0x3D, "RETURNDATASIZE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x3E, "RETURNDATACOPY", 3, 0, G_VERYLOW, Category.FIXED_ACCESS)
_op(0x3F, "EXTCODEHASH", 1, 1, G_EXTCODEHASH, Category.STATE_QUERY)
_op(0x40, "BLOCKHASH", 1, 1, G_BLOCKHASH, Category.FIXED_ACCESS)
_op(0x41, "COINBASE", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x42, "TIMESTAMP", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x43, "NUMBER", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x44, "DIFFICULTY", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x45, "GASLIMIT", 0, 1, G_BASE, Category.FIXED_ACCESS)

# --- Stack / memory / storage / branch (0x50-0x5b) --------------------------
_op(0x50, "POP", 1, 0, G_BASE, Category.STACK)
_op(0x51, "MLOAD", 1, 1, G_VERYLOW, Category.MEMORY)
_op(0x52, "MSTORE", 2, 0, G_VERYLOW, Category.MEMORY)
_op(0x53, "MSTORE8", 2, 0, G_VERYLOW, Category.MEMORY)
_op(0x54, "SLOAD", 1, 1, G_SLOAD, Category.STORAGE)
_op(0x55, "SSTORE", 2, 0, G_SSTORE_BASE, Category.STORAGE)
_op(0x56, "JUMP", 1, 0, G_MID, Category.BRANCH)
_op(0x57, "JUMPI", 2, 0, G_HIGH, Category.BRANCH)
_op(0x58, "PC", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x59, "MSIZE", 0, 1, G_BASE, Category.MEMORY)
_op(0x5A, "GAS", 0, 1, G_BASE, Category.FIXED_ACCESS)
_op(0x5B, "JUMPDEST", 0, 0, G_JUMPDEST, Category.BRANCH)

# --- PUSH1..PUSH32 (0x60-0x7f) ---------------------------------------------
for _n in range(1, 33):
    _op(0x60 + _n - 1, f"PUSH{_n}", 0, 1, G_VERYLOW, Category.STACK,
        immediate_size=_n)

# --- DUP1..DUP16 (0x80-0x8f) -------------------------------------------------
for _n in range(1, 17):
    _op(0x80 + _n - 1, f"DUP{_n}", _n, _n + 1, G_VERYLOW, Category.STACK)

# --- SWAP1..SWAP16 (0x90-0x9f) -----------------------------------------------
for _n in range(1, 17):
    _op(0x90 + _n - 1, f"SWAP{_n}", _n + 1, _n + 1, G_VERYLOW, Category.STACK)

# --- LOG0..LOG4 (0xa0-0xa4) --------------------------------------------------
for _n in range(0, 5):
    _op(0xA0 + _n, f"LOG{_n}", 2 + _n, 0, G_LOG, Category.MEMORY)

# --- Context switching (0xf0-0xf5, 0xfa) -------------------------------------
_op(0xF0, "CREATE", 3, 1, G_CREATE, Category.CONTEXT)
_op(0xF1, "CALL", 7, 1, G_CALL, Category.CONTEXT)
_op(0xF2, "CALLCODE", 7, 1, G_CALL, Category.CONTEXT)
_op(0xF3, "RETURN", 2, 0, G_ZERO, Category.CONTROL, is_terminator=True)
_op(0xF4, "DELEGATECALL", 6, 1, G_CALL, Category.CONTEXT)
_op(0xF5, "CREATE2", 4, 1, G_CREATE, Category.CONTEXT)
_op(0xFA, "STATICCALL", 6, 1, G_CALL, Category.CONTEXT)
_op(0xFD, "REVERT", 2, 0, G_ZERO, Category.CONTROL, is_terminator=True)
_op(0xFE, "INVALID", 0, 0, G_ZERO, Category.CONTROL, is_terminator=True)
_op(0xFF, "SELFDESTRUCT", 1, 0, G_SELFDESTRUCT, Category.CONTEXT,
    is_terminator=True)

#: Opcode table indexed by byte value.
OPCODES: dict[int, OpcodeInfo] = dict(_TABLE)

#: Opcode table indexed by mnemonic.
BY_NAME: dict[str, OpcodeInfo] = {info.name: info for info in OPCODES.values()}

#: 256-entry dispatch table indexed directly by the opcode byte (``None``
#: for undefined bytes). The interpreter's per-step fetch indexes this
#: tuple instead of probing the :data:`OPCODES` dict — one C-level
#: ``tuple.__getitem__`` per instruction on the hottest path in the tree.
INFO_BY_BYTE: tuple[OpcodeInfo | None, ...] = tuple(
    _TABLE.get(value) for value in range(256)
)


def info(value: int) -> OpcodeInfo | None:
    """Return the :class:`OpcodeInfo` for a byte value, or None if undefined."""
    if 0 <= value < 256:
        return INFO_BY_BYTE[value]
    return None


def is_push(opcode: OpcodeInfo) -> bool:
    """True for PUSH1..PUSH32."""
    return 0x60 <= opcode.value <= 0x7F


def is_dup(opcode: OpcodeInfo) -> bool:
    """True for DUP1..DUP16."""
    return 0x80 <= opcode.value <= 0x8F


def is_swap(opcode: OpcodeInfo) -> bool:
    """True for SWAP1..SWAP16."""
    return 0x90 <= opcode.value <= 0x9F


def is_branch(opcode: OpcodeInfo) -> bool:
    """True for instructions that redirect control flow (JUMP/JUMPI)."""
    return opcode.value in (0x56, 0x57)
