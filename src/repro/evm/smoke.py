"""Decoded-bytecode cache smoke test + microbenchmark.

``python -m repro.evm.smoke`` deploys the contract suite, drives hot
ERC-20 traffic through the interpreter, and asserts the acceptance gates
of the software DB cache:

* the first transaction against a contract *decodes* (cache miss), the
  second *hits* — decode happens once per code blob, not per tx;
* every untraced transaction engages the trace-free fast path;
* the folding pass actually fused superinstructions;
* fast-path receipts and the post-state digest are bit-identical to the
  legacy byte-at-a-time loop;
* the decoded path beats the legacy loop by ``--min-speedup`` on a
  best-of-N interleaved microbench.

The CI ``evm-smoke`` job runs exactly this; ``benchmarks/emit_bench.py``
measures the same ratio with tighter methodology for ``baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..contracts.registry import build_deployment
from ..obs import use_registry
from ..serve.loadgen import make_transactions
from ..storage.codec import state_digest_bytes
from .code import clear_jumpdest_cache, jumpdest_cache_stats
from .context import BlockContext
from .decoded import DECODE_CACHE
from .interpreter import EVM


def _execute(deployment, transactions, fast_path):
    """Run *transactions* sequentially on a fresh state copy."""
    state = deployment.state.copy()
    evm = EVM(state, block=BlockContext(), fast_path=fast_path)
    receipts = [evm.execute_transaction(tx) for tx in transactions]
    return receipts, state


def run_smoke(transactions: int, seed: int, repeats: int,
              min_speedup: float) -> dict:
    deployment = build_deployment()
    txs = make_transactions(
        deployment, transactions, workload="erc20", seed=seed
    )

    # -- functional gates: cache behaviour + fast-path engagement -------
    DECODE_CACHE.clear()
    clear_jumpdest_cache()
    with use_registry() as registry:
        receipts, state = _execute(deployment, txs, fast_path=None)
    counters = registry.counters_flat()
    misses = counters.get("evm.decode_cache_misses", 0)
    hits = counters.get("evm.decode_cache_hits", 0)
    fast_txs = counters.get("evm.fast_path_txs", 0)
    fused = counters.get("evm.fused_instructions", 0)

    failures = [r for r in receipts if not r.success]
    assert not failures, f"{len(failures)} transactions failed"
    assert misses >= 1, "first call must decode (cache miss)"
    assert hits >= 1, (
        "second transaction against the same contract must hit the "
        f"decoded-program cache (hits={hits}, misses={misses})"
    )
    assert misses <= len(DECODE_CACHE) + 1, (
        f"decode ran {misses} times for {len(DECODE_CACHE)} distinct "
        "code blobs — programs are being re-decoded"
    )
    assert fast_txs == len(txs), (
        f"only {fast_txs}/{len(txs)} transactions took the fast path"
    )
    assert fused > 0, "folding pass fused no superinstructions"

    # -- bit-identity: fast path vs legacy loop -------------------------
    legacy_receipts, legacy_state = _execute(deployment, txs, fast_path=False)
    assert receipts == legacy_receipts, "fast-path receipts diverge"
    assert state_digest_bytes(state) == state_digest_bytes(legacy_state), (
        "fast-path state digest diverges"
    )

    # -- microbench: best-of-N interleaved pairs ------------------------
    legacy_best = fast_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _execute(deployment, txs, fast_path=False)
        legacy_best = min(legacy_best, time.perf_counter() - start)
        start = time.perf_counter()
        _execute(deployment, txs, fast_path=None)
        fast_best = min(fast_best, time.perf_counter() - start)
    speedup = legacy_best / fast_best

    out = {
        "transactions": len(txs),
        "decode_cache": DECODE_CACHE.stats(),
        "jumpdest_cache": jumpdest_cache_stats(),
        "fast_path_txs": fast_txs,
        "fused_instructions": fused,
        "legacy_seconds": round(legacy_best, 6),
        "fast_seconds": round(fast_best, 6),
        "fast_tps": round(len(txs) / fast_best, 1),
        "speedup": round(speedup, 3),
        "min_speedup": min_speedup,
    }
    assert speedup >= min_speedup, (
        f"decoded path {speedup:.2f}x vs legacy — below the "
        f"{min_speedup:.2f}x smoke floor"
    )
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=4,
                        help="interleaved legacy/fast timing pairs")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="fail below this decoded-vs-legacy ratio")
    args = parser.parse_args(argv)

    out = run_smoke(
        args.transactions, args.seed, args.repeats, args.min_speedup
    )
    print(json.dumps(out, indent=2))
    print(
        f"evm smoke OK: {out['transactions']} txs, "
        f"{out['speedup']}x decoded-vs-legacy, "
        f"{out['fused_instructions']} fused", file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
