"""Workload generation: blocks with controlled redundancy, dependency
ratio and ERC20 proportion.

Three block shapes cover every experiment in the paper:

* :func:`generate_block` — realistic mixed traffic: Zipf-skewed contract
  popularity over the TOP8 suite (plus optional plain transfers), the
  shape used for cache studies (Fig. 13) and instruction mixes (Table 6).
* :func:`generate_dependency_block` — sweeps the *dependency ratio* axis
  of Figs. 14–16 / Table 9: a target fraction of transactions is
  constructed to conflict with an earlier transaction (balance-slot RAW),
  the rest touch disjoint accounts.
* :func:`generate_erc20_block` — sweeps the *ERC20 proportion* axis of
  Table 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..chain.dag import (
    build_dag_edges,
    dependency_ratio,
    discover_access_sets,
    transitive_reduction,
)
from ..chain.state import AccessSet
from ..chain.transaction import Transaction
from ..contracts.registry import TOP8_NAMES, Deployment, build_deployment
from .actions import (
    ActionLibrary,
    PlannedCall,
    planned_call_to_transaction,
)
from .zipf import ZipfSampler

#: Contracts whose transfer paths touch only per-account slots — used to
#: construct conflict-free transactions for dependency sweeps. (Tether is
#: excluded: its owner-fee write makes every transfer conflict.)
INDEPENDENT_TOKENS = ["Dai", "TokenA", "TokenB", "LinkToken",
                      "FiatTokenProxy", "WETH9"]


@dataclass
class GeneratedBlock:
    """A generated batch plus everything the scheduler needs to run it."""

    deployment: Deployment
    transactions: list[Transaction]
    access_sets: list[AccessSet] = field(default_factory=list)
    dag_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def measured_dependency_ratio(self) -> float:
        """Fraction of transactions with at least one dependency."""
        return dependency_ratio(len(self.transactions), self.dag_edges)

    @property
    def erc20_fraction(self) -> float:
        """Fraction of ERC20 transactions (paper Table 8 axis)."""
        if not self.transactions:
            return 0.0
        count = sum(
            1 for tx in self.transactions if tx.tags.get("is_erc20")
        )
        return count / len(self.transactions)

    def redundancy_histogram(self) -> dict[str, int]:
        """Transactions per contract — the composite-DAG node values."""
        histogram: dict[str, int] = {}
        for tx in self.transactions:
            name = tx.tags.get("contract", "transfer")
            histogram[name] = histogram.get(name, 0) + 1
        return histogram

    def top_k_share(self, k: int = 5) -> float:
        """Share of transactions invoking the k most popular contracts."""
        if not self.transactions:
            return 0.0
        counts = sorted(self.redundancy_histogram().values(), reverse=True)
        return sum(counts[:k]) / len(self.transactions)


def _finalize(
    deployment: Deployment, transactions: list[Transaction]
) -> GeneratedBlock:
    """Discover access sets and the dependency DAG for a batch."""
    access_sets = discover_access_sets(transactions, deployment.state)
    edges = transitive_reduction(
        len(transactions), build_dag_edges(transactions, access_sets)
    )
    return GeneratedBlock(
        deployment=deployment,
        transactions=transactions,
        access_sets=access_sets,
        dag_edges=edges,
    )


def generate_block(
    deployment: Deployment | None = None,
    num_transactions: int = 100,
    seed: int = 0,
    contract_names: list[str] | None = None,
    zipf_exponent: float = 1.0,
    sct_fraction: float = 1.0,
) -> GeneratedBlock:
    """Realistic mixed-traffic block with Zipf contract popularity."""
    rng = random.Random(seed)
    if deployment is None:
        deployment = build_deployment()
    library = ActionLibrary(deployment, rng)
    names = contract_names or list(TOP8_NAMES)
    sampler = ZipfSampler(len(names), zipf_exponent)

    transactions: list[Transaction] = []
    for _ in range(num_transactions):
        if rng.random() >= sct_fraction:
            # Plain native-token transfer (non-SCT traffic, paper Table 1).
            sender = rng.choice(deployment.accounts)
            recipient = rng.choice(deployment.accounts)
            tx = Transaction(
                sender=sender, to=recipient,
                value=rng.randint(1, 10**6), gas_limit=100_000,
                tags={"contract": None, "is_erc20": False},
            )
        else:
            contract = names[sampler.sample(rng)]
            tx = library.to_transaction(library.plan(contract))
        transactions.append(tx)
    return _finalize(deployment, transactions)


def generate_dependency_block(
    deployment: Deployment | None = None,
    num_transactions: int = 64,
    target_ratio: float = 0.5,
    seed: int = 0,
    token_names: list[str] | None = None,
    num_conflict_chains: int = 1,
    token_cycle: bool = False,
) -> GeneratedBlock:
    """Block with a controlled fraction of dependent transactions.

    Independent transactions draw pairwise-disjoint (sender, recipient)
    account pairs on fee-less tokens. Dependent transactions extend one of
    ``num_conflict_chains`` conflict *chains*: each reuses the chain's last
    recipient as its sender (a balance-slot read-after-write), so a
    dependency ratio of r yields a critical path of ≈ r·n/chains
    transactions — the "dependent transactions executed in strict order
    ... are the critical path of parallelism" structure the paper's
    Figs. 14–16 sweep.
    """
    rng = random.Random(seed)
    if deployment is None:
        deployment = build_deployment(
            num_accounts=max(64, 2 * num_transactions + 8)
        )
    if 2 * num_transactions > len(deployment.accounts):
        raise ValueError(
            "need at least 2 accounts per transaction for disjointness; "
            f"have {len(deployment.accounts)} for {num_transactions} txs"
        )
    tokens = token_names or list(INDEPENDENT_TOKENS)
    sampler = ZipfSampler(len(tokens), 1.0)

    fresh_accounts = list(deployment.accounts)
    rng.shuffle(fresh_accounts)
    account_iter = iter(fresh_accounts)

    transactions: list[Transaction] = []
    #: Per-chain (last recipient, token); dependents extend a chain.
    chains: list[tuple[int, str]] = []
    for i in range(num_transactions):
        # token_cycle fixes the token composition deterministically
        # (round-robin), decoupling e.g. the block's ERC20 share from the
        # dependency ratio; the default Zipf draw models hotspot skew.
        if token_cycle:
            token = tokens[i % len(tokens)]
        else:
            token = tokens[sampler.sample(rng)]
        # The first few transactions seed the conflict chains; after that
        # a coin flip at the target ratio decides dependence.
        make_dependent = (
            len(chains) >= num_conflict_chains
            and rng.random() < target_ratio
        )
        if make_dependent:
            chain_index = rng.randrange(len(chains))
            parent_recipient, parent_token = chains[chain_index]
            sender = parent_recipient
            token = parent_token
            recipient = next(account_iter)
            chains[chain_index] = (recipient, token)
        else:
            sender = next(account_iter)
            recipient = next(account_iter)
            if len(chains) < num_conflict_chains:
                chains.append((recipient, token))
        call = PlannedCall(
            token, sender, "transfer(address,uint256)",
            (recipient, rng.randint(1, 10**4)),
        )
        transactions.append(planned_call_to_transaction(deployment, call))
    return _finalize(deployment, transactions)


def generate_dynamic_block(
    deployment: Deployment | None = None,
    num_transactions: int = 64,
    seed: int = 0,
    swap_fraction: float = 0.15,
    proxy_fraction: float = 0.10,
    declare: bool = False,
) -> GeneratedBlock:
    """Block of dynamic-storage-key traffic with *no declared access sets*.

    Every transaction's hot slots are calldata-derived (multi-hop path
    swaps, delegatecall proxy swaps, batch airdrops to computed
    recipient runs — see :mod:`repro.contracts.dynamic`), so the
    declared-set pipeline sees them as opaque. By default the returned
    block carries **empty** ``access_sets``/``dag_edges`` — the shape
    the speculative (OCC) executor consumes; ``declare=True`` runs the
    usual discovery pass instead, for head-to-head comparisons against
    the declared-DAG pipeline.

    Senders are assigned round-robin over distinct accounts, and
    airdrops dominate the default mix, so the workload's *actual*
    conflict graph is sparse — the parallelism is real, just invisible
    to any admission-time declaration.
    """
    rng = random.Random(seed)
    if deployment is None:
        deployment = build_deployment(
            num_accounts=max(64, num_transactions + 8)
        )
    library = ActionLibrary(deployment, rng)
    senders = list(deployment.accounts)
    rng.shuffle(senders)

    transactions: list[Transaction] = []
    for i in range(num_transactions):
        sender = senders[i % len(senders)]
        roll = rng.random()
        if roll < swap_fraction:
            contract = "PathRouter"
        elif roll < swap_fraction + proxy_fraction:
            contract = "RouterProxy"
        else:
            contract = "AirdropDistributor"
        call = library.plan(contract, sender=sender)
        transactions.append(planned_call_to_transaction(deployment, call))
    if declare:
        return _finalize(deployment, transactions)
    return GeneratedBlock(deployment=deployment, transactions=transactions)


def generate_erc20_block(
    deployment: Deployment | None = None,
    num_transactions: int = 64,
    erc20_fraction: float = 0.5,
    seed: int = 0,
) -> GeneratedBlock:
    """Block sweeping the ERC20 share (paper Table 8's axis).

    ERC20 transactions are token transfers/approvals on the ERC20-class
    contracts; the remainder are router swaps, marketplace, collectible,
    gateway and ballot traffic.
    """
    rng = random.Random(seed)
    if deployment is None:
        deployment = build_deployment()
    library = ActionLibrary(deployment, rng)
    erc20_names = ["TetherToken", "Dai", "LinkToken", "FiatTokenProxy"]
    other_names = ["UniswapV2Router02", "SwapRouter", "OpenSea",
                   "CryptoCat", "MainchainGatewayProxy", "Ballot"]

    transactions: list[Transaction] = []
    erc20_quota = round(num_transactions * erc20_fraction)
    kinds = [True] * erc20_quota + [False] * (num_transactions - erc20_quota)
    rng.shuffle(kinds)
    for is_erc20 in kinds:
        pool = erc20_names if is_erc20 else other_names
        contract = rng.choice(pool)
        transactions.append(library.to_transaction(library.plan(contract)))
    return _finalize(deployment, transactions)


def all_entry_function_calls(
    deployment: Deployment, contract_name: str, seed: int = 0,
    per_function: int = 1,
) -> list[Transaction]:
    """Transactions covering every entry function of one contract.

    This is the Fig. 12 methodology: "we build transactions that call
    different entry functions and run through all the execution paths of
    that smart contract as much as possible".
    """
    rng = random.Random(seed)
    library = ActionLibrary(deployment, rng)
    deployed = deployment.contracts[contract_name]
    # Proxies dispatch the implementation's functions.
    dispatch = deployed.storage_artifact
    transactions: list[Transaction] = []
    for fn in dispatch.functions:
        for _ in range(per_function):
            call = library.plan_signature(contract_name, fn.signature)
            transactions.append(library.to_transaction(call))
    return transactions
