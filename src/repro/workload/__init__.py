"""Workload substrate: block generation with controlled redundancy,
dependency ratio and ERC20 proportion, plus Ethereum statistics models."""

from .actions import ActionLibrary, PlannedCall, planned_call_to_transaction
from .generator import (
    GeneratedBlock,
    all_entry_function_calls,
    generate_block,
    generate_dependency_block,
    generate_dynamic_block,
    generate_erc20_block,
)
from .zipf import ZipfSampler

__all__ = [
    "ActionLibrary",
    "PlannedCall",
    "planned_call_to_transaction",
    "GeneratedBlock",
    "all_entry_function_calls",
    "generate_block",
    "generate_dependency_block",
    "generate_dynamic_block",
    "generate_erc20_block",
    "ZipfSampler",
]
