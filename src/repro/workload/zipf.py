"""Zipf-distributed contract popularity.

The paper's motivation rests on hotspot skew: 37% of sampled transactions
invoke the TOP5 contracts, and CryptoCat alone peaked at 14%. A Zipf
distribution over the contract registry reproduces that head weight.
"""

from __future__ import annotations

import random


class ZipfSampler:
    """Samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("need at least one item")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against float drift

    def probability(self, rank: int) -> float:
        """P(rank)."""
        prev = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - prev

    def head_mass(self, k: int) -> float:
        """Total probability of the top-k ranks."""
        return self._cumulative[min(k, self.n) - 1]

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        u = rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo
