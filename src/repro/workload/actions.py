"""Stateful action builders: realistic calls into the contract suite.

An :class:`ActionLibrary` tracks enough world knowledge (minted NFT ids,
open orders, live auctions, unvoted voters, withdrawal counters) to emit
transactions that *succeed* when executed in block order — matching the
paper's real-block workloads, where the overwhelming majority of
transactions commit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..chain.transaction import Transaction
from ..contracts.registry import Deployment
from ..evm import abi


@dataclass
class PlannedCall:
    """A contract invocation before it becomes a Transaction."""

    contract: str
    sender: int
    signature: str
    args: tuple[int, ...]
    value: int = 0


class ActionLibrary:
    """Generates plausible, success-biased calls per contract."""

    def __init__(self, deployment: Deployment, rng: random.Random) -> None:
        self.deployment = deployment
        self.rng = rng
        accounts = deployment.accounts
        self.accounts = accounts

        # OpenSea/CryptoCat bookkeeping mirrors the registry's genesis
        # inventory (seeded once in build_deployment — the library must
        # never mutate a state that other components may already have
        # copied).
        from ..contracts.registry import (
            cryptocat_genesis,
            marketplace_genesis,
        )

        tokens, orders, self._next_nft = marketplace_genesis(accounts)
        self._owned_tokens: list[tuple[int, int]] = list(tokens)
        self._open_orders: list[tuple[int, int, int]] = [
            (order_id, seller, price)
            for order_id, seller, price, _token in orders
        ]

        cats, auctions, self._next_cat = cryptocat_genesis(accounts)
        self._owned_cats: list[tuple[int, int]] = [
            (owner, cat_id) for owner, cat_id, _genes in cats
        ]
        self._open_auctions: list[tuple[int, int]] = [
            (cat_id, start_price)
            for cat_id, _seller, start_price, _end in auctions
        ]

        # Ballot: each account votes at most once.
        self._unvoted = list(accounts)
        rng.shuffle(self._unvoted)

        # Gateway withdrawal ids must be fresh.
        self._next_withdrawal = 0

    # ------------------------------------------------------------------
    # Per-contract action pickers
    # ------------------------------------------------------------------
    def plan(self, contract: str, sender: int | None = None) -> PlannedCall:
        """Plan one realistic call to *contract*."""
        maker = getattr(self, f"_plan_{contract.lower()}", None)
        if maker is None:
            raise KeyError(f"no actions registered for {contract!r}")
        return maker(sender)

    def _pick_sender(self, sender: int | None) -> int:
        return sender if sender is not None else self.rng.choice(self.accounts)

    def _pick_other(self, not_this: int) -> int:
        other = self.rng.choice(self.accounts)
        while other == not_this and len(self.accounts) > 1:
            other = self.rng.choice(self.accounts)
        return other

    def _plan_token_transfer(
        self, contract: str, sender: int | None
    ) -> PlannedCall:
        sender = self._pick_sender(sender)
        recipient = self._pick_other(sender)
        amount = self.rng.randint(1, 10**6)
        return PlannedCall(
            contract, sender, "transfer(address,uint256)",
            (recipient, amount),
        )

    def _erc20_mix(
        self, contract: str, sender: int | None,
        extra: list[tuple[float, str]] | None = None,
    ) -> PlannedCall:
        """Weighted mix of standard ERC20 actions."""
        sender = self._pick_sender(sender)
        roll = self.rng.random()
        if roll < 0.70:
            return self._plan_token_transfer(contract, sender)
        if roll < 0.80:
            spender = self._pick_other(sender)
            return PlannedCall(
                contract, sender, "approve(address,uint256)",
                (spender, 10**9),
            )
        if roll < 0.90:
            # transferFrom relies on the ring allowance set in genesis:
            # account[i] may spend from account[i-1].
            idx = self.accounts.index(sender)
            owner = self.accounts[(idx - 1) % len(self.accounts)]
            recipient = self._pick_other(sender)
            return PlannedCall(
                contract, sender,
                "transferFrom(address,address,uint256)",
                (owner, recipient, self.rng.randint(1, 10**4)),
            )
        return PlannedCall(
            contract, sender, "balanceOf(address)",
            (self._pick_other(sender),),
        )

    def _plan_tethertoken(self, sender: int | None) -> PlannedCall:
        return self._erc20_mix("TetherToken", sender)

    def _plan_dai(self, sender: int | None) -> PlannedCall:
        roll = self.rng.random()
        if roll < 0.85:
            return self._erc20_mix("Dai", sender)
        if roll < 0.93:
            target = self.rng.choice(self.accounts)
            return PlannedCall(
                "Dai", self.deployment.admin, "mint(address,uint256)",
                (target, self.rng.randint(1, 10**6)),
            )
        burner = self._pick_sender(sender)
        return PlannedCall(
            "Dai", burner, "burn(address,uint256)",
            (burner, self.rng.randint(1, 10**3)),
        )

    def _plan_linktoken(self, sender: int | None) -> PlannedCall:
        roll = self.rng.random()
        if roll < 0.75:
            return self._erc20_mix("LinkToken", sender)
        sender = self._pick_sender(sender)
        receiver = self.deployment.address_of("OracleReceiver")
        return PlannedCall(
            "LinkToken", sender,
            "transferAndCall(address,uint256,uint256)",
            (receiver, self.rng.randint(1, 10**4),
             self.rng.randint(0, 2**64)),
        )

    def _plan_fiattokenproxy(self, sender: int | None) -> PlannedCall:
        return self._erc20_mix("FiatTokenProxy", sender)

    def _plan_weth9(self, sender: int | None) -> PlannedCall:
        sender = self._pick_sender(sender)
        roll = self.rng.random()
        if roll < 0.4:
            amount = self.rng.randint(1, 10**6)
            return PlannedCall("WETH9", sender, "deposit()", (), value=amount)
        if roll < 0.8:
            return PlannedCall(
                "WETH9", sender, "withdraw(uint256)",
                (self.rng.randint(1, 10**4),),
            )
        return self._plan_token_transfer("WETH9", sender)

    def _plan_router(self, name: str, swap_sig: str,
                     sender: int | None) -> PlannedCall:
        from ..contracts import registry

        sender = self._pick_sender(sender)
        pairs = [
            (registry.TOKEN_A, registry.TOKEN_B),
            (registry.TETHER, registry.DAI),
            (registry.TOKEN_A, registry.TETHER),
            (registry.TOKEN_B, registry.DAI),
        ]
        token_in, token_out = self.rng.choice(pairs)
        if self.rng.random() < 0.5:
            token_in, token_out = token_out, token_in
        amount_in = self.rng.randint(10**3, 10**6)
        roll = self.rng.random()
        if roll < 0.8:
            return PlannedCall(
                name, sender, swap_sig,
                (amount_in, 0, token_in, token_out),
            )
        return PlannedCall(
            name, sender, "addLiquidity(address,address,uint256,uint256)",
            (token_in, token_out, amount_in, amount_in),
        )

    def _plan_uniswapv2router02(self, sender: int | None) -> PlannedCall:
        return self._plan_router(
            "UniswapV2Router02",
            "swapExactTokensForTokens(uint256,uint256,address,address)",
            sender,
        )

    def _plan_swaprouter(self, sender: int | None) -> PlannedCall:
        return self._plan_router(
            "SwapRouter",
            "exactInputSingle(uint256,uint256,address,address)",
            sender,
        )

    def _plan_opensea(self, sender: int | None) -> PlannedCall:
        roll = self.rng.random()
        if roll < 0.30 and self._open_orders:
            order_id, seller, price = self._open_orders.pop(
                self.rng.randrange(len(self._open_orders))
            )
            buyer = self._pick_other(seller)
            return PlannedCall(
                "OpenSea", buyer, "atomicMatch(uint256)",
                (order_id,), value=price,
            )
        if roll < 0.55 and self._owned_tokens:
            owner, token_id = self._owned_tokens.pop(
                self.rng.randrange(len(self._owned_tokens))
            )
            price = 10**9 * self.rng.randint(1, 10)
            # The new order id is next_order_id at execution time; we track
            # it optimistically for later matches.
            return PlannedCall(
                "OpenSea", owner, "createOrder(uint256,uint256)",
                (token_id, price),
            )
        if roll < 0.75:
            sender = self._pick_sender(sender)
            token_id = self._next_nft
            self._next_nft += 1
            self._owned_tokens.append((sender, token_id))
            return PlannedCall(
                "OpenSea", sender, "mintToken(uint256)", (token_id,)
            )
        return PlannedCall(
            "OpenSea", self._pick_sender(sender), "ownerOf(uint256)",
            (self.rng.randrange(10_000, self._next_nft),),
        )

    def _plan_cryptocat(self, sender: int | None) -> PlannedCall:
        roll = self.rng.random()
        if roll < 0.35 and self._open_auctions:
            cat_id, start_price = self._open_auctions.pop(
                self.rng.randrange(len(self._open_auctions))
            )
            bidder = self._pick_sender(sender)
            return PlannedCall(
                "CryptoCat", bidder, "bid(uint256)",
                (cat_id,), value=start_price,
            )
        if roll < 0.60 and self._owned_cats:
            owner, cat_id = self._owned_cats.pop(
                self.rng.randrange(len(self._owned_cats))
            )
            return PlannedCall(
                "CryptoCat", owner,
                "createSaleAuction(uint256,uint256,uint256)",
                (cat_id, 10**10, 10**8),
            )
        if roll < 0.85:
            sender = self._pick_sender(sender)
            genes = self.rng.getrandbits(256)
            cat_id = self._next_cat  # optimistic id for bookkeeping only
            self._next_cat += 1
            return PlannedCall(
                "CryptoCat", sender, "createCat(uint256)", (genes,)
            )
        return PlannedCall(
            "CryptoCat", self._pick_sender(sender), "getGenes(uint256)",
            (self.rng.randrange(0, 64),),
        )

    def _plan_mainchaingatewayproxy(self, sender: int | None) -> PlannedCall:
        from ..contracts import registry

        sender = self._pick_sender(sender)
        token = self.rng.choice(
            [registry.TETHER, registry.DAI, registry.TOKEN_A]
        )
        if self.rng.random() < 0.6:
            return PlannedCall(
                "MainchainGatewayProxy", sender,
                "depositERC20(address,uint256)",
                (token, self.rng.randint(1, 10**5)),
            )
        withdrawal_id = self._next_withdrawal
        self._next_withdrawal += 1
        return PlannedCall(
            "MainchainGatewayProxy", sender,
            "withdrawERC20(uint256,address,uint256)",
            (withdrawal_id, token, self.rng.randint(1, 10**5)),
        )

    # -- dynamic-storage-key archetypes (repro.contracts.dynamic) ------
    def _plan_path_swap(self, contract: str,
                        sender: int | None) -> PlannedCall:
        """Two-hop path swap: the route (and so every reserve slot) is
        picked at plan time — undeclarable at admission time."""
        from ..contracts import registry

        sender = self._pick_sender(sender)
        route_tokens = [registry.TETHER, registry.DAI,
                        registry.TOKEN_A, registry.TOKEN_B]
        path = self.rng.sample(route_tokens, 3)
        amount_in = self.rng.randint(10**3, 10**6)
        if self.rng.random() < 0.85:
            return PlannedCall(
                contract, sender,
                "swapExactPath(uint256,uint256,address,address,address)",
                (amount_in, 0, *path),
            )
        return PlannedCall(
            contract, sender,
            "quotePath(uint256,address,address,address)",
            (amount_in, *path),
        )

    def _plan_pathrouter(self, sender: int | None) -> PlannedCall:
        return self._plan_path_swap("PathRouter", sender)

    def _plan_routerproxy(self, sender: int | None) -> PlannedCall:
        # Same call shape, but through the DELEGATECALL fallback — the
        # touched storage belongs to the proxy, keyed by the
        # implementation's layout.
        return self._plan_path_swap("RouterProxy", sender)

    def _plan_airdropdistributor(self, sender: int | None) -> PlannedCall:
        """Batch airdrop to a run of fresh recipients: the write-set size
        and members come from calldata (count, firstRecipient + i)."""
        from ..contracts import registry

        sender = self._pick_sender(sender)
        # Fee-less tokens only: a Tether airdrop would write the owner's
        # fee slot on every leg, serializing all airdrops on one key.
        token = self.rng.choice(
            [registry.DAI, registry.TOKEN_A, registry.TOKEN_B]
        )
        first = 0xA0_0000 + self.rng.randrange(1 << 20) * 16
        count = self.rng.randint(3, 8)
        return PlannedCall(
            "AirdropDistributor", sender,
            "airdrop(address,address,uint256,uint256)",
            (token, first, count, self.rng.randint(1, 10**4)),
        )

    def _plan_ballot(self, sender: int | None) -> PlannedCall:
        if self._unvoted and self.rng.random() < 0.8:
            voter = self._unvoted.pop()
            return PlannedCall(
                "Ballot", voter, "vote(uint256)",
                (self.rng.randrange(10),),
            )
        return PlannedCall(
            "Ballot", self._pick_sender(sender), "winningProposal()", ()
        )

    # ------------------------------------------------------------------
    # Deterministic per-signature exemplars (Fig. 12 methodology: cover
    # every entry function of a contract)
    # ------------------------------------------------------------------
    def plan_signature(self, contract: str, signature: str) -> PlannedCall:
        """A call guaranteed to exercise *signature* successfully."""
        rng = self.rng
        d = self.deployment
        sender = rng.choice(self.accounts)
        other = self._pick_other(sender)
        idx = self.accounts.index(sender)
        approved_owner = self.accounts[(idx - 1) % len(self.accounts)]

        def plain(sig: str, *args: int, value: int = 0,
                  use_sender: int | None = None) -> PlannedCall:
            return PlannedCall(
                contract, use_sender if use_sender is not None else sender,
                sig, tuple(args), value=value,
            )

        name = signature.split("(", 1)[0]
        if name == "transfer" and contract == "CryptoCat":
            owner, cat_id = self._owned_cats.pop()
            self._owned_cats.append((other, cat_id))
            return plain(signature, other, cat_id, use_sender=owner)
        if name in ("transfer",):
            return plain(signature, other, rng.randint(1, 10**4))
        if name == "approve":
            return plain(signature, other, 10**9)
        if name == "transferFrom":
            return plain(signature, approved_owner, other,
                         rng.randint(1, 10**3))
        if name == "balanceOf":
            return plain(signature, other)
        if name == "allowance":
            return plain(signature, approved_owner, sender)
        if name in ("totalSupply", "implementation", "depositCount",
                    "winningProposal", "getOwner"):
            return plain(signature)
        if name == "redeem":
            return plain(signature, rng.randint(1, 100), use_sender=d.admin)
        if name in ("addBlackList", "removeBlackList"):
            victim = 0x800000 + rng.getrandbits(16)
            return plain(signature, victim, use_sender=d.admin)
        if name == "destroyBlackFunds":
            # Genesis blacklists a sacrificial account for this exemplar.
            return plain(signature, 0xBADD1E, use_sender=d.admin)
        if name == "isBlackListed":
            return plain(signature, other)
        if name == "transferOwnership":
            # Hand ownership back to the admin (a self-transfer), keeping
            # later owner-gated exemplars working.
            return plain(signature, d.admin, use_sender=d.admin)
        if name in ("pause", "unpause"):
            return plain(signature, use_sender=d.admin)
        if name == "issue":
            return plain(signature, rng.randint(1, 10**6),
                         use_sender=d.admin)
        if name == "setParams":
            return plain(signature, rng.randint(0, 19), use_sender=d.admin)
        if name == "mint":
            return plain(signature, other, rng.randint(1, 10**6),
                         use_sender=d.admin)
        if name == "burn":
            return plain(signature, sender, rng.randint(1, 10**3))
        if name == "transferAndCall":
            return plain(signature, d.address_of("OracleReceiver"),
                         rng.randint(1, 10**4), rng.getrandbits(64))
        if name in ("swapExactTokensForTokens", "exactInputSingle"):
            from ..contracts import registry

            return plain(signature, rng.randint(10**3, 10**6), 0,
                         registry.TOKEN_A, registry.TOKEN_B)
        if name == "exactOutputSingle":
            from ..contracts import registry

            return plain(signature, rng.randint(10**3, 10**6), 10**30,
                         registry.TOKEN_A, registry.TOKEN_B)
        if name == "swapExactPath":
            from ..contracts import registry

            return plain(signature, rng.randint(10**3, 10**6), 0,
                         registry.TOKEN_A, registry.TETHER,
                         registry.TOKEN_B)
        if name == "quotePath":
            from ..contracts import registry

            return plain(signature, rng.randint(10**3, 10**6),
                         registry.TOKEN_A, registry.DAI,
                         registry.TOKEN_B)
        if name == "airdrop":
            from ..contracts import registry

            first = 0xA0_0000 + rng.randrange(1 << 20) * 16
            return plain(signature, registry.TETHER, first,
                         rng.randint(3, 8), rng.randint(1, 10**4))
        if name == "dropsOf":
            return plain(signature, other)
        if name == "getAmountOut":
            from ..contracts import registry

            return plain(signature, rng.randint(10**3, 10**6),
                         registry.TOKEN_A, registry.TOKEN_B)
        if name == "addLiquidity":
            from ..contracts import registry

            amount = rng.randint(10**3, 10**6)
            return plain(signature, registry.TOKEN_A, registry.TOKEN_B,
                         amount, amount)
        if name == "mintToken":
            token_id = self._next_nft
            self._next_nft += 1
            self._owned_tokens.append((sender, token_id))
            return plain(signature, token_id)
        if name == "createOrder":
            owner, token_id = self._owned_tokens.pop()
            return plain(signature, token_id, 10**9, use_sender=owner)
        if name == "cancelOrder":
            order_id, seller, _price = self._open_orders.pop()
            return plain(signature, order_id, use_sender=seller)
        if name == "atomicMatch":
            order_id, seller, price = self._open_orders.pop()
            return plain(signature, order_id, value=price,
                         use_sender=self._pick_other(seller))
        if name == "ownerOf":
            return plain(signature, rng.randrange(10_000, self._next_nft)
                         if contract == "OpenSea" else rng.randrange(64))
        if name == "orderPrice":
            return plain(signature, rng.randrange(32))
        if name == "createCat":
            self._next_cat += 1
            return plain(signature, rng.getrandbits(256))
        if name == "cancelAuction":
            cat_id, _price = self._open_auctions.pop()
            seller_slot = self.deployment.contracts[
                "CryptoCat"
            ].artifact.mapping_value_slot("auction_seller", cat_id)
            seller = self.deployment.state.get_storage(
                self.deployment.address_of("CryptoCat"), seller_slot
            )
            return plain(signature, cat_id, use_sender=seller)
        if name == "getAuction":
            cat_id, _price = self._open_auctions[-1]
            return plain(signature, cat_id)
        if name == "delegate":
            voter = self._unvoted.pop()
            delegate_to = self._unvoted[0] if self._unvoted else other
            return plain(signature, delegate_to, use_sender=voter)
        if name == "giveBirth":
            # Find two cats with a common owner in the genesis pool.
            by_owner: dict[int, list[int]] = {}
            for owner_value, cat in self._owned_cats:
                by_owner.setdefault(owner_value, []).append(cat)
            for owner_value, cats in by_owner.items():
                if len(cats) >= 2:
                    return plain(signature, cats[0], cats[1],
                                 use_sender=owner_value)
            raise KeyError("no owner holds two cats for giveBirth")
        if name == "createSaleAuction":
            owner, cat_id = self._owned_cats.pop()
            return plain(signature, cat_id, 10**10, 10**8,
                         use_sender=owner)
        if name == "bid":
            cat_id, start_price = self._open_auctions.pop()
            return plain(signature, cat_id, value=start_price)
        if name == "getGenes":
            return plain(signature, rng.randrange(64))
        if name == "depositERC20":
            from ..contracts import registry

            return plain(signature, registry.TETHER,
                         rng.randint(1, 10**5))
        if name == "withdrawERC20":
            from ..contracts import registry

            withdrawal_id = self._next_withdrawal
            self._next_withdrawal += 1
            return plain(signature, withdrawal_id, registry.DAI,
                         rng.randint(1, 10**5))
        if name == "giveRightToVote":
            # A brand-new voter address keeps the call idempotent-safe.
            fresh = 0x900000 + rng.getrandbits(16)
            return plain(signature, fresh, use_sender=d.admin)
        if name == "vote":
            voter = self._unvoted.pop()
            return plain(signature, rng.randrange(10), use_sender=voter)
        if name == "deposit":
            return plain(signature, value=rng.randint(1, 10**6))
        if name == "withdraw":
            return plain(signature, rng.randint(1, 10**4))
        if name == "upgradeTo":
            current = d.state.get_storage(
                d.address_of(contract),
                d.contract(contract).artifact.scalar_slots["implementation"],
            )
            return plain(signature, current, use_sender=d.admin)
        if name == "onTokenTransfer":
            return plain(signature, sender, rng.randint(1, 10**4),
                         rng.getrandbits(64))
        raise KeyError(
            f"no exemplar for {contract}.{signature}"
        )

    # ------------------------------------------------------------------
    # Transaction materialization
    # ------------------------------------------------------------------
    def to_transaction(
        self, call: PlannedCall, gas_limit: int = 5_000_000
    ) -> Transaction:
        """Turn a planned call into a concrete transaction."""
        return planned_call_to_transaction(
            self.deployment, call, gas_limit=gas_limit
        )


def planned_call_to_transaction(
    deployment: Deployment, call: PlannedCall, gas_limit: int = 5_000_000
) -> Transaction:
    """Materialize a planned call as a concrete transaction."""
    address = deployment.address_of(call.contract)
    data = abi.encode_call(call.signature, *call.args)
    return Transaction(
        sender=call.sender,
        to=address,
        value=call.value,
        data=data,
        gas_limit=gas_limit,
        tags={
            "contract": call.contract,
            "signature": call.signature,
            "is_erc20": deployment.contracts[call.contract].is_erc20,
        },
    )
