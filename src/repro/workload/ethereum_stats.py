"""Ethereum statistics models (paper Table 1 and Fig. 2).

Table 1's first two rows (daily transactions, SCT proportion) are
observations from Etherscan; we treat them as workload inputs. The third
row — "execution overhead of SCTs" — is *derivable*: given the per-class
execution cost measured on our substrate, the SCT share of total
execution work is ``p·C_sct / (p·C_sct + (1-p)·C_transfer)``. The
benchmark compares that derived column against the paper's.

Fig. 2(a) (stable block interval) is reproduced by a difficulty-retarget
simulation; Fig. 2(b) (consensus-algorithm throughput) is survey data
from the paper's references [18, 20], kept as constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Paper Table 1 (Etherscan): year -> (daily txs, SCT proportion, SCT
#: execution-overhead share).
PAPER_TABLE1 = {
    2017: (282_000, 0.3723, 0.7244),
    2018: (688_000, 0.5057, 0.8183),
    2019: (665_000, 0.6352, 0.8797),
    2020: (932_000, 0.6794, 0.9043),
    2021: (1_265_000, 0.6840, 0.9081),
}

#: Fig. 2(b): representative throughput (TPS) per consensus algorithm,
#: from the surveys the paper cites [18, 20].
CONSENSUS_THROUGHPUT_TPS = {
    "PoW (Bitcoin)": 7,
    "PoW (Ethereum)": 30,
    "PoS": 100,
    "DPoS (EOS)": 3_000,
    "PBFT (Hyperledger)": 3_500,
    "HotStuff": 6_000,
    "Raft (permissioned)": 10_000,
}


def sct_execution_overhead(
    sct_fraction: float, sct_cost: float, transfer_cost: float
) -> float:
    """Share of execution work spent on smart-contract transactions."""
    sct_work = sct_fraction * sct_cost
    transfer_work = (1.0 - sct_fraction) * transfer_cost
    total = sct_work + transfer_work
    return sct_work / total if total else 0.0


def derive_table1(
    sct_cost: float, transfer_cost: float
) -> dict[int, tuple[int, float, float]]:
    """Table 1 with the overhead column derived from measured costs."""
    derived = {}
    for year, (daily, sct_fraction, _paper) in PAPER_TABLE1.items():
        overhead = sct_execution_overhead(
            sct_fraction, sct_cost, transfer_cost
        )
        derived[year] = (daily, sct_fraction, overhead)
    return derived


@dataclass
class BlockIntervalModel:
    """Difficulty-retargeted block production (paper Fig. 2a).

    Block arrival is exponential with rate hashrate/difficulty; the
    protocol retargets difficulty toward ``target_interval``, so the
    realized interval stays flat even as hashrate drifts — the paper's
    point that the interval is a protocol constant, leaving transaction
    execution as the only throughput lever.
    """

    target_interval: float = 13.0
    retarget_gain: float = 0.1
    hashrate_drift: float = 0.002  # per-block multiplicative drift

    def simulate(
        self, blocks: int, seed: int = 0
    ) -> list[float]:
        """Per-block realized intervals."""
        rng = random.Random(seed)
        hashrate = 1.0
        difficulty = self.target_interval  # so interval starts on target
        ema_interval = self.target_interval
        intervals = []
        for _ in range(blocks):
            expected = difficulty / hashrate
            interval = rng.expovariate(1.0 / expected)
            intervals.append(interval)
            # Retarget toward the constant protocol interval, smoothing
            # the heavy-tailed per-block noise with an EMA, and bounding
            # each step (real retarget rules clamp adjustments too).
            ema_interval += 0.2 * (interval - ema_interval)
            error_ratio = ema_interval / self.target_interval
            adjust = 1.0 - self.retarget_gain * (error_ratio - 1.0)
            difficulty *= min(2.0, max(0.5, adjust))
            # Exogenous hashrate drift (miners joining/leaving).
            hashrate *= 1.0 + rng.uniform(
                -self.hashrate_drift, self.hashrate_drift
            )
        return intervals

    def mean_interval(self, blocks: int = 2000, seed: int = 0) -> float:
        intervals = self.simulate(blocks, seed)
        return sum(intervals) / len(intervals)
