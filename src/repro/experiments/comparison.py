"""Comparator experiments: Tables 5, 8, 9 and the headline speedup."""

from __future__ import annotations

from ..baselines.bpu import BPUModel, measure_gsc_costs
from ..core.hotspot import HotspotOptimizer
from ..core.mtpu import MTPUExecutor, PUConfig
from ..core.mtpu.area import bpu_equivalents, estimate_area
from ..core.scheduler import run_sequential, run_spatial_temporal
from ..workload import (
    all_entry_function_calls,
    generate_dependency_block,
    generate_erc20_block,
)
from ..workload.generator import INDEPENDENT_TOKENS
from .common import ExperimentResult, shared_deployment

#: Paper Table 8 (single core, vs one GSC engine).
PAPER_TABLE8 = {
    1.0: (12.82, 2.79), 0.8: (3.40, 2.14), 0.6: (2.23, 2.16),
    0.4: (1.63, 2.05), 0.2: (1.33, 2.00), 0.0: (1.0, 1.71),
}

#: Paper Table 9 (quad core, dependency-ratio sweep).
PAPER_TABLE9 = {
    1.0: (3.51, 8.68), 0.8: (3.80, 9.36), 0.6: (4.69, 9.87),
    0.4: (4.95, 12.01), 0.2: (5.76, 12.08), 0.0: (7.4, 15.25),
}


def table5_area() -> ExperimentResult:
    """Table 5: MTPU area breakdown and power (analytical model)."""
    report = estimate_area()
    rows = [[name, f"{area:.3f}"] for name, area in report.rows()]
    rows.append(["Power @300MHz", f"{report.power_watts:.3f} W"])
    bpu_area, bpu_power = bpu_equivalents(report)
    rows.append(["BPU-equivalent area (paper: +17% overhead)",
                 f"{bpu_area:.3f}"])
    rows.append(["BPU-equivalent power (paper: +10% overhead)",
                 f"{bpu_power:.3f} W"])
    return ExperimentResult(
        experiment_id="Table 5",
        title="Key design parameters and area breakdown (mm^2, "
              "45nm-calibrated analytical model)",
        headers=["Component", "Area"],
        rows=rows,
        notes="paper: total 79.623 mm^2, 8.648 W at 300 MHz",
        paper_reference={"total_mm2": 79.623, "power_w": 8.648},
    )


def _hotspot_for_erc20(deployment, seed: int) -> HotspotOptimizer:
    optimizer = HotspotOptimizer(deployment.state)
    for name in ("TetherToken", "Dai", "LinkToken", "FiatTokenProxy"):
        samples = all_entry_function_calls(deployment, name, seed=seed)
        optimizer.optimize_contract(deployment.address_of(name), samples)
    return optimizer


def table8_bpu_erc20(
    num_transactions: int = 40, seed: int = 200,
    fractions: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2, 0.0),
) -> ExperimentResult:
    """Table 8: BPU vs MTPU single-core, swept over the ERC20 share.

    Both are normalized to the same single-GSC-engine baseline (our
    baseline PU without reuse). The MTPU runs with its full single-core
    feature set (ILP + redundancy reuse + hotspot optimization).
    """
    deployment = shared_deployment()
    bpu = BPUModel()
    optimizer = _hotspot_for_erc20(deployment, seed)
    headers = ["ERC20 share", "BPU (ours)", "BPU (paper)",
               "MTPU (ours)", "MTPU (paper)"]
    rows = []
    for i, fraction in enumerate(fractions):
        block = generate_erc20_block(
            deployment, num_transactions=num_transactions,
            erc20_fraction=fraction, seed=seed + i,
        )
        gsc_costs = measure_gsc_costs(
            deployment.state, block.transactions
        )
        gsc_total = sum(gsc_costs)
        bpu_total = bpu.run_single_core(block.transactions, gsc_costs)

        mtpu_executor = MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        mtpu = run_sequential(mtpu_executor, block.transactions)

        paper_bpu, paper_mtpu = PAPER_TABLE8[round(fraction, 1)]
        rows.append([
            f"{100 * fraction:.0f}%",
            f"{gsc_total / bpu_total:.2f}x", f"{paper_bpu:.2f}x",
            f"{gsc_total / mtpu.makespan_cycles:.2f}x",
            f"{paper_mtpu:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="Table 8",
        title="BPU vs MTPU single-core speedup by ERC20 proportion "
              "(baseline: one GSC engine)",
        headers=headers,
        rows=rows,
        notes="paper shape: BPU collapses as the ERC20 share falls; "
              "MTPU stays stable (its acceleration is general)",
        paper_reference={"table": PAPER_TABLE8},
    )


def table9_bpu_parallel(
    num_transactions: int = 48, seed: int = 220, cores: int = 4,
    ratios: tuple[float, ...] = (1.0, 0.8, 0.6, 0.4, 0.2, 0.0),
) -> ExperimentResult:
    """Table 9: BPU vs MTPU quad-core, swept over the dependency ratio.

    Both normalized to one GSC engine. BPU composes its engines with
    barrier rounds; the MTPU uses spatio-temporal scheduling plus its
    full single-PU feature set.
    """
    bpu = BPUModel()
    headers = ["dep ratio", "BPU (ours)", "BPU (paper)",
               "MTPU (ours)", "MTPU (paper)"]
    rows = []
    for i, ratio in enumerate(ratios):
        # Fixed 50% ERC20 composition (Dai vs the generic TokenA),
        # decoupled from the dependency ratio: the paper's blocks mix
        # App-engine-eligible and general contracts at every ratio.
        block = generate_dependency_block(
            num_transactions=num_transactions, target_ratio=ratio,
            seed=seed + i, token_names=["Dai", "TokenA"],
            num_conflict_chains=2, token_cycle=True,
        )
        deployment = block.deployment
        gsc_costs = measure_gsc_costs(
            deployment.state, block.transactions
        )
        gsc_total = sum(gsc_costs)
        bpu_total = bpu.run_parallel(
            block.transactions, gsc_costs, block.dag_edges, cores=cores
        )

        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            samples = all_entry_function_calls(
                deployment, name, seed=seed
            )
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )
        mtpu_executor = MTPUExecutor(
            deployment.state.copy(), num_pus=cores,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        mtpu = run_spatial_temporal(
            mtpu_executor, block.transactions, block.dag_edges
        )
        paper_bpu, paper_mtpu = PAPER_TABLE9[round(ratio, 1)]
        rows.append([
            f"{100 * ratio:.0f}%",
            f"{gsc_total / bpu_total:.2f}x", f"{paper_bpu:.2f}x",
            f"{gsc_total / mtpu.makespan_cycles:.2f}x",
            f"{paper_mtpu:.2f}x",
        ])
    return ExperimentResult(
        experiment_id="Table 9",
        title="BPU vs MTPU quad-core speedup by dependency proportion "
              "(baseline: one GSC engine)",
        headers=headers,
        rows=rows,
        notes="paper shape: MTPU wins everywhere; dependencies hurt "
              "both, BPU relatively more at low ratios",
        paper_reference={"table": PAPER_TABLE9},
    )


def headline_speedup(
    num_transactions: int = 64, seed: int = 240,
    ratios: tuple[float, ...] = (0.0, 0.5, 1.0),
    pu_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> ExperimentResult:
    """Abstract: 3.53x-16.19x over existing schemes across configurations.

    Sweeps both the dependency ratio and the PU count of the full
    co-design (ILP + spatio-temporal scheduling + redundancy reuse +
    hotspot optimization), all normalized to a plain sequential core.
    """
    headers = ["dep ratio"] + [f"{k} PUs" for k in pu_counts]
    rows = []
    speedups = []
    for i, ratio in enumerate(ratios):
        block = generate_dependency_block(
            num_transactions=num_transactions, target_ratio=ratio,
            seed=seed + i,
        )
        deployment = block.deployment
        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            samples = all_entry_function_calls(
                deployment, name, seed=seed
            )
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )
        baseline = run_sequential(
            MTPUExecutor(
                deployment.state.copy(), num_pus=1,
                pu_config=PUConfig(enable_db_cache=False,
                                   redundancy_reuse=False),
            ),
            block.transactions,
        )
        row = [f"{block.measured_dependency_ratio:.2f}"]
        for pu_count in pu_counts:
            full = run_spatial_temporal(
                MTPUExecutor(
                    deployment.state.copy(), num_pus=pu_count,
                    pu_config=PUConfig(), hotspot_optimizer=optimizer,
                ),
                block.transactions, block.dag_edges,
            )
            speedup = full.speedup_over(baseline)
            speedups.append(speedup)
            row.append(f"{speedup:.2f}x")
        rows.append(row)
    rows.append(["range", f"{min(speedups):.2f}x",
                 f"{max(speedups):.2f}x", "", ""])
    return ExperimentResult(
        experiment_id="Headline",
        title="Full co-design speedup over a plain single core",
        headers=headers,
        rows=rows,
        notes="paper abstract: 3.53x-16.19x",
        paper_reference={"range": (3.53, 16.19)},
    )
