"""Transaction-parallelism experiments: Figs. 14, 15, 16."""

from __future__ import annotations

from ..core.hotspot import HotspotOptimizer
from ..core.mtpu import MTPUExecutor, PUConfig
from ..core.scheduler import (
    run_sequential,
    run_spatial_temporal,
    run_synchronous,
)
from ..workload import all_entry_function_calls, generate_dependency_block
from ..workload.generator import INDEPENDENT_TOKENS
from .common import ExperimentResult

#: Dependency ratios swept on the x-axis of Figs. 14-16.
RATIO_SWEEP = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def _sequential_baseline(block, **pu_kwargs) -> int:
    executor = MTPUExecutor(
        block.deployment.state.copy(), num_pus=1,
        pu_config=PUConfig(**pu_kwargs),
    )
    return run_sequential(executor, block.transactions).makespan_cycles


def _parallel(block, runner, num_pus, hotspot=None, **pu_kwargs):
    executor = MTPUExecutor(
        block.deployment.state.copy(), num_pus=num_pus,
        pu_config=PUConfig(**pu_kwargs),
        hotspot_optimizer=hotspot,
    )
    return runner(executor, block.transactions, block.dag_edges)


def _blocks_for_sweep(num_transactions, seed, ratios):
    return [
        generate_dependency_block(
            num_transactions=num_transactions, target_ratio=ratio,
            seed=seed + i,
        )
        for i, ratio in enumerate(ratios)
    ]


def fig14_scheduling_speedup(
    num_transactions: int = 48, seed: int = 100,
    pu_counts: tuple[int, ...] = (2, 4),
    ratios: list[float] | None = None,
) -> ExperimentResult:
    """Fig. 14: synchronous vs spatio-temporal speedup over a single PU.

    Both configurations run *without* redundancy reuse (that is Fig. 16's
    addition), against the same no-reuse sequential baseline.
    """
    ratios = ratios or RATIO_SWEEP
    blocks = _blocks_for_sweep(num_transactions, seed, ratios)
    headers = ["dep ratio"] + [
        f"sync x{k}" for k in pu_counts
    ] + [f"ST x{k}" for k in pu_counts]
    rows = []
    for block in blocks:
        base = _sequential_baseline(block, redundancy_reuse=False)
        row = [f"{block.measured_dependency_ratio:.2f}"]
        for k in pu_counts:
            sync = _parallel(block, run_synchronous, k,
                             redundancy_reuse=False)
            row.append(base / sync.makespan_cycles)
        for k in pu_counts:
            st = _parallel(block, run_spatial_temporal, k,
                           redundancy_reuse=False)
            row.append(base / st.makespan_cycles)
        rows.append(row)
    # The paper overlays fitted curves on the scatter; report linear-fit
    # slopes per configuration (speedup lost per unit dependency ratio).
    import numpy as np

    xs = np.array([float(row[0]) for row in rows])
    fit_notes = []
    for column in range(1, len(headers)):
        ys = np.array([float(row[column]) for row in rows])
        slope, intercept = np.polyfit(xs, ys, 1)
        fit_notes.append(
            f"{headers[column]}: fit {intercept:.2f} {slope:+.2f}*ratio"
        )
    return ExperimentResult(
        experiment_id="Fig. 14",
        title="Speedup vs dependency ratio: (a) synchronous execution, "
              "(b) spatio-temporal scheduling",
        headers=headers,
        rows=rows,
        notes="paper shape: both fall as the dependency ratio rises; "
              "spatio-temporal dominates synchronous at every point\n"
              "fitted curves: " + "; ".join(fit_notes),
    )


def fig15_utilization(
    num_transactions: int = 48, seed: int = 120, num_pus: int = 4,
    ratios: list[float] | None = None,
) -> ExperimentResult:
    """Fig. 15: PU resource utilization vs dependency ratio."""
    ratios = ratios or RATIO_SWEEP
    blocks = _blocks_for_sweep(num_transactions, seed, ratios)
    headers = ["dep ratio", f"sync x{num_pus}", f"ST x{num_pus}"]
    rows = []
    for block in blocks:
        sync = _parallel(block, run_synchronous, num_pus,
                         redundancy_reuse=False)
        st = _parallel(block, run_spatial_temporal, num_pus,
                       redundancy_reuse=False)
        rows.append([
            f"{block.measured_dependency_ratio:.2f}",
            f"{100 * sync.utilization:.1f}%",
            f"{100 * st.utilization:.1f}%",
        ])
    return ExperimentResult(
        experiment_id="Fig. 15",
        title="Resource utilization vs dependency ratio",
        headers=headers,
        rows=rows,
        notes="paper shape: utilization falls with dependencies; "
              "asynchronous scheduling keeps PUs busier",
    )


def _workload_optimizer(deployment, seed: int) -> HotspotOptimizer:
    """Hotspot-optimize the token contracts the dependency sweep uses."""
    optimizer = HotspotOptimizer(deployment.state)
    for name in INDEPENDENT_TOKENS:
        samples = all_entry_function_calls(deployment, name, seed=seed)
        optimizer.optimize_contract(deployment.address_of(name), samples)
    return optimizer


def fig16_redundancy_hotspot(
    num_transactions: int = 48, seed: int = 140,
    pu_counts: tuple[int, ...] = (1, 4),
    ratios: list[float] | None = None,
) -> ExperimentResult:
    """Fig. 16: spatio-temporal scheduling + redundancy optimization (a),
    plus hotspot optimization (b)."""
    ratios = ratios or RATIO_SWEEP
    blocks = _blocks_for_sweep(num_transactions, seed, ratios)
    headers = ["dep ratio"]
    for k in pu_counts:
        headers += [f"ST+Re x{k}", f"ST+Re+Hot x{k}"]
    rows = []
    for block in blocks:
        base = _sequential_baseline(block, redundancy_reuse=False)
        optimizer = _workload_optimizer(block.deployment, seed)
        row = [f"{block.measured_dependency_ratio:.2f}"]
        for k in pu_counts:
            redundancy = _parallel(
                block, run_spatial_temporal, k, redundancy_reuse=True
            )
            hotspot = _parallel(
                block, run_spatial_temporal, k, hotspot=optimizer,
                redundancy_reuse=True,
            )
            row.append(base / redundancy.makespan_cycles)
            row.append(base / hotspot.makespan_cycles)
        rows.append(row)
    return ExperimentResult(
        experiment_id="Fig. 16",
        title="Speedup with redundancy optimization (a) and + hotspot "
              "optimization (b)",
        headers=headers,
        rows=rows,
        notes="paper: reuse helps even on a single PU (16a); hotspot "
              "optimization adds further continuous acceleration (16b)",
    )
