"""Instrumented block runs: the plumbing behind ``repro obs-report``.

:func:`measure_block` is the one place that wires a workload, the full
co-design MTPU and the observability layer together: it generates a
dependency block, runs it spatio-temporally under a scoped
:func:`~repro.obs.use_registry`/:func:`~repro.obs.use_tracing` pair, runs
the paper's plain-core baseline for the headline speedup, and folds
everything into a :class:`~repro.obs.BlockPerfReport`. Both the CLI
subcommand and ``benchmarks/emit_bench.py`` call it, so the benchmark
JSON and the interactive report always measure the same thing.
"""

from __future__ import annotations

import time

from ..chain.dag import build_dag_edges, discover_access_sets
from ..core.hotspot import HotspotOptimizer
from ..core.mtpu import MTPUExecutor, PUConfig
from ..core.scheduler import run_sequential, run_spatial_temporal
from ..evm.interpreter import EVM
from ..obs import (
    BlockPerfReport,
    LogicalClock,
    SpanTracer,
    use_registry,
    use_tracing,
)
from ..parallel import ParallelBlockExecutor
from ..workload import all_entry_function_calls
from ..workload.generator import INDEPENDENT_TOKENS, generate_dependency_block


def measure_block(
    num_transactions: int = 32,
    num_pus: int = 4,
    ratio: float = 0.5,
    seed: int = 7,
    label: str | None = None,
    optimize_hotspots: bool = True,
    deterministic_trace: bool = True,
) -> BlockPerfReport:
    """Run one generated block through the full co-design, instrumented.

    The returned report's ``headline_speedup`` compares the co-design's
    makespan against the paper's reference configuration: the same block
    executed sequentially on one plain core (no DB cache, no redundancy
    reuse), so ``sequential_cycles`` is a *measured* baseline rather than
    the parallel run's own sequentialized sum.
    """
    # Block generation runs the EVM for access discovery; keep it (and
    # the offline hotspot profiling) outside the registry scope so the
    # report only counts the block's own execution.
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=ratio, seed=seed,
    )
    deployment = block.deployment

    optimizer = None
    if optimize_hotspots:
        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            samples = all_entry_function_calls(deployment, name, seed=seed)
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )

    baseline = run_sequential(
        MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(
                enable_db_cache=False, redundancy_reuse=False
            ),
        ),
        block.transactions,
    )

    clock = LogicalClock() if deterministic_trace else None
    tracer = SpanTracer(clock=clock) if clock is not None else SpanTracer()
    with use_registry() as registry, use_tracing(tracer):
        counters_before = registry.counters_flat()
        executor = MTPUExecutor(
            deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
        )
        report = BlockPerfReport.from_execution(
            label=label or (
                f"dep-block n={num_transactions} pus={num_pus} "
                f"ratio={ratio:.2f} seed={seed}"
            ),
            schedule=schedule,
            executor=executor,
            counters_before=counters_before,
        )
    # Replace the self-relative sequentialized sum with the measured
    # plain-core baseline, making headline_speedup the paper's metric.
    report.sequential_cycles = baseline.makespan_cycles
    return report


def measure_wall_clock(
    num_transactions: int = 64,
    num_workers: int = 4,
    ratio: float = 0.0,
    seed: int = 7,
    backend: str = "process",
    repeats: int = 3,
) -> dict:
    """Wall-clock throughput: seed sequential path vs execute-once pipeline.

    The *sequential* lane reproduces the seed pipeline's real cost: one
    speculative pass for access discovery, DAG construction, then a
    second, full functional execution of every transaction. The
    *pipeline* lane keeps the discovery pass's artifacts and hands them
    to :class:`~repro.parallel.ParallelBlockExecutor`, which replays
    fresh write journals (and runs stale ones on workers), so each
    transaction executes once. Both lanes must land on bit-identical
    receipts and ``state_digest()`` — asserted, not assumed.

    Times are best-of-*repeats* to damp scheduler noise; the reported
    ``pipeline_speedup`` is a ratio of two runs on the same machine, so
    it is comparable across machines.
    """
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=ratio, seed=seed,
    )
    transactions = block.transactions
    base_state = block.deployment.state

    def run_sequential_lane() -> tuple[float, list, tuple]:
        state = base_state.copy()
        start = time.perf_counter()
        access = discover_access_sets(transactions, state)
        build_dag_edges(transactions, access)
        evm = EVM(state)
        receipts = [evm.execute_transaction(tx) for tx in transactions]
        elapsed = time.perf_counter() - start
        return elapsed, receipts, state.state_digest()

    def run_pipeline_lane() -> tuple[float, object, tuple]:
        state = base_state.copy()
        with ParallelBlockExecutor(
            state, num_workers=num_workers, backend=backend,
        ) as executor:
            start = time.perf_counter()
            artifacts = discover_access_sets(transactions, state)
            edges = build_dag_edges(transactions, artifacts)
            result = executor.execute_block(
                transactions, edges, artifacts, artifacts=artifacts,
            )
            elapsed = time.perf_counter() - start
        return elapsed, result, state.state_digest()

    seq_seconds, seq_receipts, seq_digest = min(
        (run_sequential_lane() for _ in range(repeats)),
        key=lambda item: item[0],
    )
    pipe_seconds, pipe_result, pipe_digest = min(
        (run_pipeline_lane() for _ in range(repeats)),
        key=lambda item: item[0],
    )
    if pipe_digest != seq_digest:
        raise AssertionError(
            "pipeline state digest diverged from sequential execution"
        )
    if pipe_result.receipts != seq_receipts:
        raise AssertionError(
            "pipeline receipts diverged from sequential execution"
        )

    seq_tps = num_transactions / seq_seconds if seq_seconds > 0 else 0.0
    pipe_tps = num_transactions / pipe_seconds if pipe_seconds > 0 else 0.0
    return {
        "num_transactions": num_transactions,
        "num_workers": num_workers,
        "backend": pipe_result.backend,
        "ratio": ratio,
        "seed": seed,
        "sequential": {
            "seconds": seq_seconds,
            "tx_per_second": seq_tps,
        },
        "pipeline": {
            "seconds": pipe_seconds,
            "tx_per_second": pipe_tps,
            "replayed": pipe_result.replayed,
            "dispatched": pipe_result.dispatched,
            "executed_inline": pipe_result.executed_inline,
            "stale_artifacts": pipe_result.stale_artifacts,
            "fell_back": pipe_result.fell_back,
        },
        "pipeline_speedup": (
            pipe_tps / seq_tps if seq_tps > 0 else 0.0
        ),
        "digest_match": True,
    }
