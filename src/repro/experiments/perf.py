"""Instrumented block runs: the plumbing behind ``repro obs-report``.

:func:`measure_block` is the one place that wires a workload, the full
co-design MTPU and the observability layer together: it generates a
dependency block, runs it spatio-temporally under a scoped
:func:`~repro.obs.use_registry`/:func:`~repro.obs.use_tracing` pair, runs
the paper's plain-core baseline for the headline speedup, and folds
everything into a :class:`~repro.obs.BlockPerfReport`. Both the CLI
subcommand and ``benchmarks/emit_bench.py`` call it, so the benchmark
JSON and the interactive report always measure the same thing.
"""

from __future__ import annotations

import time

from ..chain.dag import build_dag_edges, discover_access_sets
from ..core.hotspot import HotspotOptimizer
from ..core.mtpu import MTPUExecutor, PUConfig
from ..core.scheduler import run_sequential, run_spatial_temporal
from ..evm.interpreter import EVM
from ..obs import (
    BlockPerfReport,
    LogicalClock,
    SpanTracer,
    use_registry,
    use_tracing,
)
from ..parallel import ParallelBlockExecutor
from ..workload import all_entry_function_calls
from ..workload.generator import INDEPENDENT_TOKENS, generate_dependency_block


def measure_block(
    num_transactions: int = 32,
    num_pus: int = 4,
    ratio: float = 0.5,
    seed: int = 7,
    label: str | None = None,
    optimize_hotspots: bool = True,
    deterministic_trace: bool = True,
) -> BlockPerfReport:
    """Run one generated block through the full co-design, instrumented.

    The returned report's ``headline_speedup`` compares the co-design's
    makespan against the paper's reference configuration: the same block
    executed sequentially on one plain core (no DB cache, no redundancy
    reuse), so ``sequential_cycles`` is a *measured* baseline rather than
    the parallel run's own sequentialized sum.
    """
    # Block generation runs the EVM for access discovery; keep it (and
    # the offline hotspot profiling) outside the registry scope so the
    # report only counts the block's own execution.
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=ratio, seed=seed,
    )
    deployment = block.deployment

    optimizer = None
    if optimize_hotspots:
        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            samples = all_entry_function_calls(deployment, name, seed=seed)
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )

    baseline = run_sequential(
        MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(
                enable_db_cache=False, redundancy_reuse=False
            ),
        ),
        block.transactions,
    )

    clock = LogicalClock() if deterministic_trace else None
    tracer = SpanTracer(clock=clock) if clock is not None else SpanTracer()
    with use_registry() as registry, use_tracing(tracer):
        counters_before = registry.counters_flat()
        executor = MTPUExecutor(
            deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
        )
        report = BlockPerfReport.from_execution(
            label=label or (
                f"dep-block n={num_transactions} pus={num_pus} "
                f"ratio={ratio:.2f} seed={seed}"
            ),
            schedule=schedule,
            executor=executor,
            counters_before=counters_before,
        )
    # Replace the self-relative sequentialized sum with the measured
    # plain-core baseline, making headline_speedup the paper's metric.
    report.sequential_cycles = baseline.makespan_cycles
    return report


def measure_wall_clock(
    num_transactions: int = 64,
    num_workers: int = 4,
    ratio: float = 0.0,
    seed: int = 7,
    backend: str = "process",
    repeats: int = 3,
) -> dict:
    """Wall-clock throughput: seed sequential path vs execute-once pipeline.

    The *sequential* lane reproduces the seed pipeline's real cost: one
    speculative pass for access discovery, DAG construction, then a
    second, full functional execution of every transaction. The
    *pipeline* lane keeps the discovery pass's artifacts and hands them
    to :class:`~repro.parallel.ParallelBlockExecutor`, which replays
    fresh write journals (and runs stale ones on workers), so each
    transaction executes once. Both lanes must land on bit-identical
    receipts and ``state_digest()`` — asserted, not assumed.

    Times are best-of-*repeats* to damp scheduler noise; the reported
    ``pipeline_speedup`` is a ratio of two runs on the same machine, so
    it is comparable across machines.
    """
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=ratio, seed=seed,
    )
    transactions = block.transactions
    base_state = block.deployment.state

    def run_sequential_lane() -> tuple[float, list, tuple]:
        state = base_state.copy()
        start = time.perf_counter()
        access = discover_access_sets(transactions, state)
        build_dag_edges(transactions, access)
        evm = EVM(state)
        receipts = [evm.execute_transaction(tx) for tx in transactions]
        elapsed = time.perf_counter() - start
        return elapsed, receipts, state.state_digest()

    def run_pipeline_lane() -> tuple[float, object, tuple]:
        state = base_state.copy()
        with ParallelBlockExecutor(
            state, num_workers=num_workers, backend=backend,
        ) as executor:
            start = time.perf_counter()
            artifacts = discover_access_sets(transactions, state)
            edges = build_dag_edges(transactions, artifacts)
            result = executor.execute_block(
                transactions, edges, artifacts, artifacts=artifacts,
            )
            elapsed = time.perf_counter() - start
        return elapsed, result, state.state_digest()

    seq_seconds, seq_receipts, seq_digest = min(
        (run_sequential_lane() for _ in range(repeats)),
        key=lambda item: item[0],
    )
    pipe_seconds, pipe_result, pipe_digest = min(
        (run_pipeline_lane() for _ in range(repeats)),
        key=lambda item: item[0],
    )
    if pipe_digest != seq_digest:
        raise AssertionError(
            "pipeline state digest diverged from sequential execution"
        )
    if pipe_result.receipts != seq_receipts:
        raise AssertionError(
            "pipeline receipts diverged from sequential execution"
        )

    seq_tps = num_transactions / seq_seconds if seq_seconds > 0 else 0.0
    pipe_tps = num_transactions / pipe_seconds if pipe_seconds > 0 else 0.0
    return {
        "num_transactions": num_transactions,
        "num_workers": num_workers,
        "backend": pipe_result.backend,
        "ratio": ratio,
        "seed": seed,
        "sequential": {
            "seconds": seq_seconds,
            "tx_per_second": seq_tps,
        },
        "pipeline": {
            "seconds": pipe_seconds,
            "tx_per_second": pipe_tps,
            "replayed": pipe_result.replayed,
            "dispatched": pipe_result.dispatched,
            "executed_inline": pipe_result.executed_inline,
            "stale_artifacts": pipe_result.stale_artifacts,
            "fell_back": pipe_result.fell_back,
        },
        "pipeline_speedup": (
            pipe_tps / seq_tps if seq_tps > 0 else 0.0
        ),
        "digest_match": True,
    }


def default_occ_backend() -> str:
    """Pool speculation needs real cores; degrade to serial on one."""
    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity masks
        cores = os.cpu_count() or 1
    return "process" if cores >= 2 else "serial"


def measure_occ_wall_clock(
    num_transactions: int = 192,
    num_workers: int = 4,
    seed: int = 11,
    backend: str | None = None,
    repeats: int = 4,
) -> dict:
    """Dynamic-storage-key wall clock: sequential vs declared-DAG vs OCC.

    The workload is the one declared access sets cannot describe —
    path-router swaps, batch airdrops and proxy hot paths whose storage
    keys derive from calldata. Three lanes execute the same block:

    * **sequential** — the seed pipeline's real cost (one speculative
      pass for access discovery, DAG construction, then the full
      in-order execution), exactly as in :func:`measure_wall_clock`;
    * **dag** — discovery plus the execute-once
      :class:`~repro.parallel.ParallelBlockExecutor` replay;
    * **occ** — :class:`~repro.parallel.SpeculativeBlockExecutor` with
      *no access sets anywhere*: speculate, validate, commit in order.

    Lanes run interleaved per repeat so adjacent timings share the
    machine's momentary load, and each lane reports its best-of-repeats;
    the quoted speedups are same-machine ratios. Receipts and
    ``state_digest()`` parity across all three lanes is asserted, never
    assumed. *backend* defaults to :func:`default_occ_backend`.
    """
    from ..workload.generator import generate_dynamic_block

    backend = backend or default_occ_backend()
    block = generate_dynamic_block(
        num_transactions=num_transactions, seed=seed,
    )
    transactions = block.transactions
    base_state = block.deployment.state

    def run_sequential_lane():
        state = base_state.copy()
        start = time.perf_counter()
        artifacts = discover_access_sets(transactions, state)
        build_dag_edges(transactions, artifacts)
        evm = EVM(state)
        receipts = [evm.execute_transaction(tx) for tx in transactions]
        return time.perf_counter() - start, receipts, state.state_digest()

    def run_dag_lane():
        state = base_state.copy()
        with ParallelBlockExecutor(
            state, num_workers=num_workers, backend=backend,
        ) as executor:
            start = time.perf_counter()
            artifacts = discover_access_sets(transactions, state)
            edges = build_dag_edges(transactions, artifacts)
            result = executor.execute_block(
                transactions, edges, artifacts, artifacts=artifacts,
            )
            elapsed = time.perf_counter() - start
        return elapsed, result.receipts, state.state_digest()

    def run_occ_lane():
        from ..parallel import SpeculativeBlockExecutor

        state = base_state.copy()
        with SpeculativeBlockExecutor(
            state, num_workers=num_workers, backend=backend,
        ) as executor:
            executor.warm()  # pool spawn outside the timed region
            start = time.perf_counter()
            result = executor.execute_block(transactions)
            elapsed = time.perf_counter() - start
        return elapsed, result, state.state_digest()

    lanes: dict[str, list] = {"sequential": [], "dag": [], "occ": []}
    for _ in range(repeats):
        lanes["sequential"].append(run_sequential_lane())
        lanes["dag"].append(run_dag_lane())
        lanes["occ"].append(run_occ_lane())

    seq_seconds, seq_receipts, seq_digest = min(
        lanes["sequential"], key=lambda item: item[0]
    )
    dag_seconds, dag_receipts, dag_digest = min(
        lanes["dag"], key=lambda item: item[0]
    )
    occ_seconds, occ_result, occ_digest = min(
        lanes["occ"], key=lambda item: item[0]
    )
    if not (seq_digest == dag_digest == occ_digest):
        raise AssertionError(
            "occ/dag state digest diverged from sequential execution"
        )
    if [r.to_rlp() for r in occ_result.receipts] != [
        r.to_rlp() for r in seq_receipts
    ] or [r.to_rlp() for r in dag_receipts] != [
        r.to_rlp() for r in seq_receipts
    ]:
        raise AssertionError(
            "occ/dag receipts diverged from sequential execution"
        )

    def lane(seconds: float) -> dict:
        return {
            "seconds": seconds,
            "tx_per_second": (
                num_transactions / seconds if seconds > 0 else 0.0
            ),
        }

    seq_tps = lane(seq_seconds)["tx_per_second"]
    occ_tps = lane(occ_seconds)["tx_per_second"]
    dag_tps = lane(dag_seconds)["tx_per_second"]
    return {
        "num_transactions": num_transactions,
        "num_workers": num_workers,
        "seed": seed,
        "backend": occ_result.backend,
        "repeats": repeats,
        "sequential": lane(seq_seconds),
        "dag": lane(dag_seconds),
        "occ": {
            **lane(occ_seconds),
            "executions": occ_result.executions,
            "aborts": occ_result.aborts,
            "validations": occ_result.validations,
            "retries": occ_result.retries,
            "rounds": occ_result.rounds,
            "fell_back": occ_result.fell_back,
        },
        "occ_speedup": occ_tps / seq_tps if seq_tps > 0 else 0.0,
        "dag_speedup": dag_tps / seq_tps if seq_tps > 0 else 0.0,
        "digest_match": True,
    }
