"""Instrumented block runs: the plumbing behind ``repro obs-report``.

:func:`measure_block` is the one place that wires a workload, the full
co-design MTPU and the observability layer together: it generates a
dependency block, runs it spatio-temporally under a scoped
:func:`~repro.obs.use_registry`/:func:`~repro.obs.use_tracing` pair, runs
the paper's plain-core baseline for the headline speedup, and folds
everything into a :class:`~repro.obs.BlockPerfReport`. Both the CLI
subcommand and ``benchmarks/emit_bench.py`` call it, so the benchmark
JSON and the interactive report always measure the same thing.
"""

from __future__ import annotations

from ..core.hotspot import HotspotOptimizer
from ..core.mtpu import MTPUExecutor, PUConfig
from ..core.scheduler import run_sequential, run_spatial_temporal
from ..obs import (
    BlockPerfReport,
    LogicalClock,
    SpanTracer,
    use_registry,
    use_tracing,
)
from ..workload import all_entry_function_calls
from ..workload.generator import INDEPENDENT_TOKENS, generate_dependency_block


def measure_block(
    num_transactions: int = 32,
    num_pus: int = 4,
    ratio: float = 0.5,
    seed: int = 7,
    label: str | None = None,
    optimize_hotspots: bool = True,
    deterministic_trace: bool = True,
) -> BlockPerfReport:
    """Run one generated block through the full co-design, instrumented.

    The returned report's ``headline_speedup`` compares the co-design's
    makespan against the paper's reference configuration: the same block
    executed sequentially on one plain core (no DB cache, no redundancy
    reuse), so ``sequential_cycles`` is a *measured* baseline rather than
    the parallel run's own sequentialized sum.
    """
    # Block generation runs the EVM for access discovery; keep it (and
    # the offline hotspot profiling) outside the registry scope so the
    # report only counts the block's own execution.
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=ratio, seed=seed,
    )
    deployment = block.deployment

    optimizer = None
    if optimize_hotspots:
        optimizer = HotspotOptimizer(deployment.state)
        for name in INDEPENDENT_TOKENS:
            samples = all_entry_function_calls(deployment, name, seed=seed)
            optimizer.optimize_contract(
                deployment.address_of(name), samples
            )

    baseline = run_sequential(
        MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(
                enable_db_cache=False, redundancy_reuse=False
            ),
        ),
        block.transactions,
    )

    clock = LogicalClock() if deterministic_trace else None
    tracer = SpanTracer(clock=clock) if clock is not None else SpanTracer()
    with use_registry() as registry, use_tracing(tracer):
        counters_before = registry.counters_flat()
        executor = MTPUExecutor(
            deployment.state.copy(), num_pus=num_pus,
            pu_config=PUConfig(), hotspot_optimizer=optimizer,
        )
        schedule = run_spatial_temporal(
            executor, block.transactions, block.dag_edges,
        )
        report = BlockPerfReport.from_execution(
            label=label or (
                f"dep-block n={num_transactions} pus={num_pus} "
                f"ratio={ratio:.2f} seed={seed}"
            ),
            schedule=schedule,
            executor=executor,
            counters_before=counters_before,
        )
    # Replace the self-relative sequentialized sum with the measured
    # plain-core baseline, making headline_speedup the paper's metric.
    report.sequential_cycles = baseline.makespan_cycles
    return report
