"""Design-choice ablations beyond the paper's own figures.

The paper fixes several microarchitectural parameters (candidate-window
size, state-buffer capacity, per-unit line fields, scheduling overhead,
PU count). These sweeps quantify each choice's contribution on our model —
the sensitivity studies DESIGN.md calls out.
"""

from __future__ import annotations

from ..core.mtpu import MTPUExecutor, PUConfig, TimingConfig
from ..core.scheduler import run_sequential, run_spatial_temporal
from ..evm.opcodes import Category
from ..workload import all_entry_function_calls, generate_dependency_block
from .common import (
    ExperimentResult,
    run_transactions,
    shared_deployment,
    single_pu_executor,
)


def ablation_window_size(
    num_transactions: int = 48, seed: int = 400,
    windows: tuple[int, ...] = (2, 4, 8, 16, 32),
) -> ExperimentResult:
    """Candidate-window (m) sensitivity of the spatio-temporal scheduler.

    A tiny window starves the PUs' selection (①/② in Fig. 6 see too few
    candidates); past ~2x the PU count, returns diminish — which is why
    the hardware tables can stay small.
    """
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=0.3, seed=seed
    )
    deployment = block.deployment
    baseline = run_sequential(
        MTPUExecutor(deployment.state.copy(), num_pus=1,
                     pu_config=PUConfig()),
        block.transactions,
    )
    rows = []
    for window in windows:
        result = run_spatial_temporal(
            MTPUExecutor(deployment.state.copy(), num_pus=4,
                         pu_config=PUConfig()),
            block.transactions, block.dag_edges,
            window_size=window,
        )
        rows.append([window, baseline.makespan_cycles
                     / result.makespan_cycles,
                     f"{result.utilization:.0%}"])
    return ExperimentResult(
        experiment_id="Ablation W",
        title="Spatio-temporal speedup vs candidate-window size (4 PUs)",
        headers=["window m", "speedup", "utilization"],
        rows=rows,
    )


def ablation_state_buffer(
    seed: int = 410,
    capacities: tuple[int, ...] = (16, 64, 256, 1024, 4096),
) -> ExperimentResult:
    """State-buffer capacity vs warm-state hit behaviour (Table 5 sizes
    the buffer at 2MB; this shows why it need not be larger)."""
    deployment = shared_deployment()
    txs = []
    for name in ("TetherToken", "Dai", "FiatTokenProxy"):
        txs.extend(all_entry_function_calls(
            deployment, name, seed=seed, per_function=6
        ))
    rows = []
    for entries in capacities:
        timing = TimingConfig(state_buffer_entries=entries)
        executor = single_pu_executor(deployment, timing=timing)
        cycles, _ = run_transactions(executor, txs)
        buffer = executor.state_buffer
        hit = buffer.hits / max(1, buffer.hits + buffer.misses)
        rows.append([entries, cycles, f"{hit:.0%}"])
    return ExperimentResult(
        experiment_id="Ablation SB",
        title="Cycles and warm-state hit rate vs state-buffer entries",
        headers=["entries", "cycles", "warm hits"],
        rows=rows,
    )


def ablation_unit_capacity(
    seed: int = 420, per_function: int = 4
) -> ExperimentResult:
    """Per-functional-unit line fields: how much line packing buys.

    The paper's fixed-length fields mean one instruction per unit per
    line; our default gives the stack/memory/ALU units extra ports (see
    fill_unit.DEFAULT_UNIT_CAPACITY). This sweep quantifies that choice.
    """
    deployment = shared_deployment()
    txs = all_entry_function_calls(
        deployment, "TetherToken", seed=seed, per_function=per_function
    )
    base_executor = single_pu_executor(deployment, enable_db_cache=False)
    base_cycles, _ = run_transactions(base_executor, txs)

    configs = [
        ("1 field/unit (paper literal)", {}),
        ("stack x2", {Category.STACK: 2}),
        ("stack x2, mem x2", {Category.STACK: 2, Category.MEMORY: 2}),
        ("default (stack x3, mem/alu/logic x2)", None),
    ]
    rows = []
    for label, capacity in configs:
        executor = MTPUExecutor(
            deployment.state.copy(), num_pus=1,
            pu_config=PUConfig(perfect_cache=True,
                               unit_capacity=capacity),
        )
        cycles, _ = run_transactions(executor, txs)
        rows.append([label, base_cycles / cycles])
    return ExperimentResult(
        experiment_id="Ablation UC",
        title="ILP upper bound vs per-unit line capacity (TetherToken)",
        headers=["line fields", "speedup"],
        rows=rows,
    )


def ablation_selection_overhead(
    num_transactions: int = 48, seed: int = 430,
    overheads: tuple[int, ...] = (0, 2, 8, 32, 128),
) -> ExperimentResult:
    """Scheduling-cost sensitivity: the paper argues selection is O(n)
    bit logic off the critical path; this shows when that stops being
    negligible."""
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=0.2, seed=seed
    )
    deployment = block.deployment
    baseline = run_sequential(
        MTPUExecutor(deployment.state.copy(), num_pus=1,
                     pu_config=PUConfig()),
        block.transactions,
    )
    rows = []
    for overhead in overheads:
        result = run_spatial_temporal(
            MTPUExecutor(deployment.state.copy(), num_pus=4,
                         pu_config=PUConfig()),
            block.transactions, block.dag_edges,
            selection_overhead=overhead,
        )
        rows.append([overhead,
                     baseline.makespan_cycles / result.makespan_cycles])
    return ExperimentResult(
        experiment_id="Ablation SO",
        title="Speedup vs per-selection overhead cycles (4 PUs)",
        headers=["selection cycles", "speedup"],
        rows=rows,
    )


def ablation_pu_scaling(
    num_transactions: int = 64, seed: int = 440,
    pu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> ExperimentResult:
    """PU-count scaling on a low-dependency block: where the DAG and the
    shared state buffer stop scaling with area (Table 5 picked 4 PUs)."""
    block = generate_dependency_block(
        num_transactions=num_transactions, target_ratio=0.1, seed=seed
    )
    deployment = block.deployment
    baseline = run_sequential(
        MTPUExecutor(deployment.state.copy(), num_pus=1,
                     pu_config=PUConfig()),
        block.transactions,
    )
    rows = []
    for count in pu_counts:
        result = run_spatial_temporal(
            MTPUExecutor(deployment.state.copy(), num_pus=count,
                         pu_config=PUConfig()),
            block.transactions, block.dag_edges,
        )
        rows.append([count,
                     baseline.makespan_cycles / result.makespan_cycles,
                     f"{result.utilization:.0%}"])
    return ExperimentResult(
        experiment_id="Ablation PU",
        title="Speedup vs PU count (10% dependency block)",
        headers=["PUs", "speedup", "utilization"],
        rows=rows,
    )
