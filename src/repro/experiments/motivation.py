"""Motivation/background experiments: Tables 1, 2, 6 and Fig. 2."""

from __future__ import annotations

from ..analysis.bytecode_share import measure_bytecode_share
from ..analysis.instruction_mix import CATEGORY_ORDER, instruction_mix
from ..workload import all_entry_function_calls, generate_block
from ..workload.ethereum_stats import (
    CONSENSUS_THROUGHPUT_TPS,
    PAPER_TABLE1,
    BlockIntervalModel,
    sct_execution_overhead,
)
from .common import (
    CONTRACT_ABBREVIATIONS,
    ExperimentResult,
    shared_deployment,
    single_pu_executor,
)


def table1_ethereum_stats(seed: int = 0) -> ExperimentResult:
    """Table 1: SCT execution-overhead column derived from measured costs.

    The daily-transaction and SCT-proportion rows are Etherscan
    observations (inputs); the overhead row is re-derived from the
    SCT:transfer cost ratio measured on our substrate (per-transaction
    cycles including context construction).
    """
    deployment = shared_deployment()
    # Measure average SCT work vs plain-transfer work in *gas* — the
    # protocol's own execution-work measure (a plain transfer performs
    # real work the cycle model attributes to fixed logic: signature
    # checks, nonce/balance updates, trie writes — all priced into its
    # 21000-gas intrinsic cost).
    sct_block = generate_block(
        deployment, num_transactions=40, seed=seed, sct_fraction=1.0
    )
    transfer_block = generate_block(
        deployment, num_transactions=40, seed=seed + 1, sct_fraction=0.0
    )

    def average_gas(block) -> float:
        executor = single_pu_executor(
            deployment, enable_db_cache=False, redundancy_reuse=False
        )
        pu = executor.pus[0]
        gas = [
            executor.execute_on(pu, tx).receipt.gas_used
            for tx in block.transactions
        ]
        return sum(gas) / len(gas)

    sct_cost = average_gas(sct_block)
    transfer_cost = average_gas(transfer_block)

    headers = ["Year", "Daily Transactions", "SCT share",
               "Overhead (ours)", "Overhead (paper)"]
    rows = []
    for year, (daily, share, paper_overhead) in sorted(
        PAPER_TABLE1.items()
    ):
        ours = sct_execution_overhead(share, sct_cost, transfer_cost)
        rows.append([year, daily, f"{100 * share:.2f}%",
                     f"{100 * ours:.2f}%", f"{100 * paper_overhead:.2f}%"])
    return ExperimentResult(
        experiment_id="Table 1",
        title="Ethereum statistics 2017-2021 (overhead column derived)",
        headers=headers,
        rows=rows,
        notes=(
            f"measured SCT cost {sct_cost:.0f} gas vs transfer "
            f"{transfer_cost:.0f} gas (ratio {sct_cost/transfer_cost:.1f}x)"
        ),
        paper_reference={"overhead": {y: v[2] for y, v in
                                      PAPER_TABLE1.items()}},
    )


def fig2_consensus(blocks: int = 3000, seed: int = 0) -> ExperimentResult:
    """Fig. 2: (a) block-interval stability, (b) consensus throughput."""
    model = BlockIntervalModel(target_interval=13.0)
    intervals = model.simulate(blocks, seed=seed)
    quarter = blocks // 4
    quarters = [
        sum(intervals[i * quarter : (i + 1) * quarter]) / quarter
        for i in range(4)
    ]
    rows = [
        [f"interval (quarter {i + 1})", f"{q:.2f}s"]
        for i, q in enumerate(quarters)
    ]
    rows.append(["interval (target)", "13.00s"])
    rows.append(["---", "---"])
    for algorithm, tps in CONSENSUS_THROUGHPUT_TPS.items():
        rows.append([algorithm, f"{tps} TPS"])
    return ExperimentResult(
        experiment_id="Fig. 2",
        title="(a) block generation interval stays constant; "
              "(b) consensus-algorithm throughput",
        headers=["quantity", "value"],
        rows=rows,
        notes="(b) is survey data from the paper's references [18, 20]",
    )


def table2_bytecode_share(seed: int = 0) -> ExperimentResult:
    """Table 2: bytecode share of loaded context data."""
    deployment = shared_deployment()
    # The paper's four rows: Tether.transfer, WETH9.withdraw,
    # CryptoCat.createSaleAuction, Ballot.vote.
    picks = [
        ("TetherToken", "transfer"),
        ("WETH9", "withdraw"),
        ("CryptoCat", "createSaleAuction"),
        ("Ballot", "vote"),
    ]
    paper = {
        ("TetherToken", "transfer"): 0.9272,
        ("WETH9", "withdraw"): 0.9074,
        ("CryptoCat", "createSaleAuction"): 0.9533,
        ("Ballot", "vote"): 0.8599,
    }
    headers = ["Contract", "Function", "Bytecode B", "Other B",
               "Bytecode % (ours)", "Bytecode % (paper)"]
    rows = []
    for contract, function in picks:
        txs = all_entry_function_calls(deployment, contract, seed=seed)
        tx = next(
            t for t in txs if t.tags["signature"].startswith(function)
        )
        share = measure_bytecode_share(deployment, tx)
        rows.append([
            contract, function, share.bytecode_bytes, share.other_bytes,
            f"{100 * share.bytecode_fraction:.2f}%",
            f"{100 * paper[(contract, function)]:.2f}%",
        ])
    return ExperimentResult(
        experiment_id="Table 2",
        title="Bytecode share of loaded context data",
        headers=headers,
        rows=rows,
        paper_reference={"share": paper},
    )


#: Paper Table 6 averages per category (for the comparison column).
PAPER_TABLE6_AVG = {
    "Arithmetic": 0.0888, "Logic": 0.0886, "SHA": 0.0056,
    "Fixed access": 0.0328, "State query": 0.0012, "Memory": 0.0682,
    "Storage": 0.0120, "Branch": 0.0581, "Stack": 0.6224,
    "Control": 0.0206, "Context switching": 0.0016,
}


def table6_instruction_mix(
    per_function: int = 2, seed: int = 0, workload: str = "coverage"
) -> ExperimentResult:
    """Table 6: dynamic instruction-category mix of the TOP8 contracts.

    ``workload="coverage"`` exercises every entry function uniformly;
    ``workload="traffic"`` samples the realistic action mix (transfer-
    dominated, like the paper's real blocks).
    """
    import random as _random

    from ..workload import ActionLibrary

    deployment = shared_deployment()
    library = ActionLibrary(deployment, _random.Random(seed))
    headers = ["Smart Contract"] + [c.value for c in CATEGORY_ORDER]
    rows = []
    sums = {c: 0.0 for c in CATEGORY_ORDER}
    for name, label in CONTRACT_ABBREVIATIONS.items():
        if workload == "traffic":
            txs = [
                library.to_transaction(library.plan(name))
                for _ in range(12 * per_function)
            ]
        else:
            txs = all_entry_function_calls(
                deployment, name, seed=seed, per_function=per_function
            )
        mix = instruction_mix(deployment, txs)
        rows.append(
            [label] + [f"{100 * mix[c]:.2f}%" for c in CATEGORY_ORDER]
        )
        for category in CATEGORY_ORDER:
            sums[category] += mix[category]
    count = len(CONTRACT_ABBREVIATIONS)
    rows.append(
        ["Avg (ours)"]
        + [f"{100 * sums[c] / count:.2f}%" for c in CATEGORY_ORDER]
    )
    rows.append(
        ["Avg (paper)"]
        + [f"{100 * PAPER_TABLE6_AVG[c.value]:.2f}%"
           for c in CATEGORY_ORDER]
    )
    return ExperimentResult(
        experiment_id="Table 6",
        title="Instruction breakdown of the TOP8 smart contracts "
              f"({workload} workload)",
        headers=headers,
        rows=rows,
        notes="known delta vs paper: our compiler keeps locals in MEM "
              "(MLOAD/MSTORE) where solc keeps them on the stack "
              "(DUP/SWAP), shifting ~10pp from Stack to Memory; "
              "overflow checks appear as Logic instead of solc's "
              "Arithmetic-heavy SafeMath",
        paper_reference={"avg": PAPER_TABLE6_AVG},
    )
