"""Instruction-level experiments: Fig. 12, Fig. 13, Table 7."""

from __future__ import annotations

from ..workload import all_entry_function_calls
from .common import (
    CONTRACT_ABBREVIATIONS,
    TABLE7_ORDER,
    ExperimentResult,
    run_transactions,
    shared_deployment,
    single_pu_executor,
)

#: Paper Table 7: contract -> (upper IPC, upper speedup, 2K IPC,
#: 2K speedup).
PAPER_TABLE7 = {
    "TetherToken": (3.53, 1.88, 2.73, 1.67),
    "FiatTokenProxy": (4.06, 1.85, 3.50, 1.69),
    "UniswapV2Router02": (3.94, 2.02, 3.57, 1.96),
    "OpenSea": (3.70, 2.40, 3.23, 2.23),
    "LinkToken": (3.47, 1.98, 2.91, 1.80),
    "SwapRouter": (3.94, 2.00, 2.68, 1.69),
    "Dai": (3.91, 2.11, 2.90, 1.82),
    "MainchainGatewayProxy": (3.53, 1.64, 2.87, 1.53),
}


def _ablation_cycles(deployment, txs, **config_kwargs) -> tuple[int, int]:
    executor = single_pu_executor(deployment, **config_kwargs)
    return run_transactions(executor, txs)


def fig12_ilp_ablation(
    per_function: int = 2, seed: int = 0
) -> ExperimentResult:
    """Fig. 12: upper-bound speedups from F&D, DF and IF (100% hit)."""
    deployment = shared_deployment()
    headers = ["Smart Contract", "F&D", "F&D+DF", "F&D+DF+IF"]
    rows = []
    for name, label in CONTRACT_ABBREVIATIONS.items():
        txs = all_entry_function_calls(
            deployment, name, seed=seed, per_function=per_function
        )
        base, _ = _ablation_cycles(
            deployment, txs, enable_db_cache=False
        )
        fd, _ = _ablation_cycles(
            deployment, txs, perfect_cache=True,
            enable_forwarding=False, enable_folding=False,
        )
        df, _ = _ablation_cycles(
            deployment, txs, perfect_cache=True, enable_folding=False
        )
        all_on, _ = _ablation_cycles(
            deployment, txs, perfect_cache=True
        )
        rows.append([label, base / fd, base / df, base / all_on])
    averages = [
        sum(row[i] for row in rows) / len(rows) for i in (1, 2, 3)
    ]
    rows.append(["Avg", *averages])
    return ExperimentResult(
        experiment_id="Fig. 12",
        title="ILP upper-bound speedup per optimization "
              "(fill unit + DB cache, + data forwarding, "
              "+ instruction folding)",
        headers=headers,
        rows=rows,
        notes="paper: IF averages 1.99x across the TOP8 "
              "(per-contract 1.64x-2.40x)",
        paper_reference={
            "avg_speedup_if": 1.99,
            "per_contract_upper": {
                k: v[1] for k, v in PAPER_TABLE7.items()
            },
        },
    )


#: Cache sizes swept in Fig. 13 (entries). Our synthetic contracts are
#: a few times smaller than the paper's mainnet bytecode, so their
#: working sets saturate at proportionally smaller caches; the sweep
#: starts lower to expose the ramp.
FIG13_SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048]


def fig13_cache_hit_ratio(
    per_function: int = 12, seed: int = 0,
    sizes: list[int] | None = None,
) -> ExperimentResult:
    """Fig. 13: DB-cache hit ratio vs cache size for redundant batches.

    Per-contract rows use batches of transactions invoking that contract
    (the paper's setup); the final row interleaves all eight contracts on
    one PU — the regime where capacity misses dominate until the cache
    holds the combined working set.
    """
    deployment = shared_deployment()
    sizes = sizes or FIG13_SIZES
    headers = ["Smart Contract"] + [str(s) for s in sizes]
    rows = []
    mixed_txs = []
    for name, label in CONTRACT_ABBREVIATIONS.items():
        txs = all_entry_function_calls(
            deployment, name, seed=seed, per_function=per_function
        )
        mixed_txs.extend(txs)
        ratios = []
        for entries in sizes:
            executor = single_pu_executor(
                deployment, cache_entries=entries
            )
            run_transactions(executor, txs)
            ratios.append(executor.pus[0].db_cache.stats.hit_ratio)
        rows.append([label] + [f"{100 * r:.1f}%" for r in ratios])

    # Interleave contracts round-robin for the mixed row.
    import random as _random

    _random.Random(seed).shuffle(mixed_txs)
    mixed_ratios = []
    for entries in sizes:
        executor = single_pu_executor(deployment, cache_entries=entries)
        run_transactions(executor, mixed_txs)
        mixed_ratios.append(executor.pus[0].db_cache.stats.hit_ratio)
    rows.append(
        ["Mixed TOP8"] + [f"{100 * r:.1f}%" for r in mixed_ratios]
    )
    return ExperimentResult(
        experiment_id="Fig. 13",
        title="DB-cache hit ratio vs size "
              "(batch of transactions per contract)",
        headers=headers,
        rows=rows,
        notes="paper: hit rate rises with size and stabilizes around "
              "85% at 2K entries; residual misses are cold misses",
        paper_reference={"hit_at_2k": 0.85},
    )


def table7_ipc(
    per_function: int = 12, seed: int = 0
) -> ExperimentResult:
    """Table 7: IPC and speedup at 2K entries vs the upper limit.

    IPC here is original trace instructions per cycle (folded PUSHes
    count as executed instructions, matching the paper's accounting of
    the synthesized instructions). Note the paper's absolute IPC values
    imply a baseline normalization we cannot reconstruct exactly
    (see EXPERIMENTS.md); the speedup columns are directly comparable.
    """
    deployment = shared_deployment()
    headers = [
        "Smart Contract",
        "Upper IPC", "Upper speedup", "2K IPC", "2K speedup",
        "IPC loss", "speedup loss",
    ]
    rows = []
    losses = []
    for name in TABLE7_ORDER:
        label = CONTRACT_ABBREVIATIONS[name]
        txs = all_entry_function_calls(
            deployment, name, seed=seed, per_function=per_function
        )
        base_cycles, _ = _ablation_cycles(
            deployment, txs, enable_db_cache=False
        )
        upper_cycles, instructions = _ablation_cycles(
            deployment, txs, perfect_cache=True
        )
        real_cycles, _ = _ablation_cycles(
            deployment, txs, cache_entries=2048
        )
        upper_ipc = instructions / upper_cycles
        real_ipc = instructions / real_cycles
        upper_speedup = base_cycles / upper_cycles
        real_speedup = base_cycles / real_cycles
        ipc_loss = (real_ipc - upper_ipc) / upper_ipc
        speedup_loss = (real_speedup - upper_speedup) / upper_speedup
        losses.append((ipc_loss, speedup_loss))
        rows.append([
            label, upper_ipc, upper_speedup, real_ipc, real_speedup,
            f"{100 * ipc_loss:.2f}%", f"{100 * speedup_loss:.2f}%",
        ])
    avg_ipc_loss = sum(l[0] for l in losses) / len(losses)
    avg_speedup_loss = sum(l[1] for l in losses) / len(losses)
    rows.append([
        "Avg", "-", "-", "-", "-",
        f"{100 * avg_ipc_loss:.2f}%", f"{100 * avg_speedup_loss:.2f}%",
    ])
    return ExperimentResult(
        experiment_id="Table 7",
        title="Single-PU performance at 2K cache entries vs upper limit",
        headers=headers,
        rows=rows,
        notes="paper: avg losses -18.99% (IPC) / -9.36% (speedup); "
              "avg 2K speedup 1.80x",
        paper_reference={"table": PAPER_TABLE7,
                         "avg_speedup_2k": 1.80,
                         "avg_speedup_loss": -0.0936},
    )
