"""Paper-experiment harness: one module per table/figure.

Each function returns an :class:`~repro.experiments.common.ExperimentResult`
carrying the regenerated rows, a rendered text table and, where the paper
published numbers, the reference values for side-by-side comparison.

>>> from repro.experiments import fig12_ilp_ablation
>>> result = fig12_ilp_ablation()
>>> print(result.render())  # doctest: +SKIP
"""

from .common import ExperimentResult
from .motivation import (
    fig2_consensus,
    table1_ethereum_stats,
    table2_bytecode_share,
    table6_instruction_mix,
)
from .ilp import fig12_ilp_ablation, fig13_cache_hit_ratio, table7_ipc
from .scheduling import (
    fig14_scheduling_speedup,
    fig15_utilization,
    fig16_redundancy_hotspot,
)
from .comparison import (
    headline_speedup,
    table5_area,
    table8_bpu_erc20,
    table9_bpu_parallel,
)
from .ablations import (
    ablation_pu_scaling,
    ablation_selection_overhead,
    ablation_state_buffer,
    ablation_unit_capacity,
    ablation_window_size,
)
from .perf import (
    measure_block,
    measure_occ_wall_clock,
    measure_wall_clock,
)

__all__ = [
    "ExperimentResult",
    "fig2_consensus",
    "table1_ethereum_stats",
    "table2_bytecode_share",
    "table6_instruction_mix",
    "fig12_ilp_ablation",
    "fig13_cache_hit_ratio",
    "table7_ipc",
    "fig14_scheduling_speedup",
    "fig15_utilization",
    "fig16_redundancy_hotspot",
    "headline_speedup",
    "table5_area",
    "table8_bpu_erc20",
    "table9_bpu_parallel",
    "ablation_pu_scaling",
    "ablation_selection_overhead",
    "ablation_state_buffer",
    "ablation_unit_capacity",
    "ablation_window_size",
    "measure_block",
    "measure_occ_wall_clock",
    "measure_wall_clock",
]
