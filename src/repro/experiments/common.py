"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.reporting import format_table
from ..contracts.registry import Deployment, build_deployment
from ..core.mtpu import MTPUExecutor, PUConfig
from ..workload import all_entry_function_calls

#: Contracts evaluated per-contract in the paper's section 4.2 (Table 6,
#: Fig. 12, Fig. 13, Table 7). Table abbreviations follow the paper
#: (FTP = FiatTokenProxy, UV2R02 = UniswapV2Router02,
#: MGP = MainchainGatewayProxy).
CONTRACT_ABBREVIATIONS = {
    "TetherToken": "Tether USD",
    "FiatTokenProxy": "FTP",
    "UniswapV2Router02": "UV2R02",
    "OpenSea": "OpenSea",
    "LinkToken": "LinkToken",
    "SwapRouter": "SwapRouter",
    "Dai": "Dai",
    "MainchainGatewayProxy": "MGP",
}

#: Table 7 order (differs slightly from Table 6 order).
TABLE7_ORDER = [
    "TetherToken", "FiatTokenProxy", "UniswapV2Router02", "OpenSea",
    "LinkToken", "SwapRouter", "Dai", "MainchainGatewayProxy",
]


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    experiment_id: str  # e.g. "Table 7", "Fig. 13"
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    #: Paper-reported values for the same cells, where published
    #: (free-form structure, used by EXPERIMENTS.md and tests).
    paper_reference: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready representation (for downstream plotting)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def render(self) -> str:
        table = format_table(
            self.headers, self.rows,
            title=f"{self.experiment_id}: {self.title}",
        )
        if self.notes:
            table += "\n" + self.notes
        return table

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by_label(self, label) -> list:
        """Extract the row whose first cell equals *label*."""
        for row in self.rows:
            if row[0] == label:
                return row
        raise KeyError(label)


_SHARED_DEPLOYMENT: Deployment | None = None


def shared_deployment() -> Deployment:
    """A process-wide genesis deployment (read-only; copy its state)."""
    global _SHARED_DEPLOYMENT
    if _SHARED_DEPLOYMENT is None:
        _SHARED_DEPLOYMENT = build_deployment()
    return _SHARED_DEPLOYMENT


def single_pu_executor(
    deployment: Deployment, **config_kwargs
) -> MTPUExecutor:
    """A fresh 1-PU executor over a copy of the genesis state."""
    return MTPUExecutor(
        deployment.state.copy(), num_pus=1,
        pu_config=PUConfig(**config_kwargs),
    )


def run_transactions(executor: MTPUExecutor, transactions) -> tuple[int, int]:
    """Run all transactions on PU0; returns (cycles, instructions)."""
    pu = executor.pus[0]
    cycles = 0
    instructions = 0
    for tx in transactions:
        execution = executor.execute_on(pu, tx)
        cycles += execution.timing.cycles
        instructions += execution.instructions
    return cycles, instructions


def per_contract_transactions(
    deployment: Deployment, per_function: int = 2, seed: int = 0
) -> dict[str, list]:
    """Entry-function-covering transaction sets for the TOP8 contracts."""
    return {
        name: all_entry_function_calls(
            deployment, name, seed=seed, per_function=per_function
        )
        for name in CONTRACT_ABBREVIATIONS
    }
