"""Typed storage-layer errors.

Every durability failure the layer can *detect* gets its own type so
callers (recovery, ``repro verify-store``, the serve loop) can react
distinctly: tail corruption is truncated and survived, mid-log
corruption is fatal for the suffix, and a replay divergence means the
store and the execution engine disagree — never something to paper over.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for all durable-store failures."""


class CorruptSnapshotError(StorageError):
    """A snapshot file failed its CRC or structural decode."""


class CorruptWalError(StorageError):
    """The WAL is damaged beyond tail truncation (mid-log corruption)."""


class RecoveryError(StorageError):
    """Replaying the WAL diverged from the digests stamped in it."""


class StoreLockedError(StorageError):
    """Another live ChainStore already owns this data directory."""
