"""Durable chain storage: WAL, snapshots, and crash recovery.

The durability contract, end to end:

* every committed block is appended to an append-only, CRC-framed
  write-ahead log together with the post-state digest it produced
  (:mod:`repro.storage.wal`, :mod:`repro.storage.codec`);
* every ``snapshot_interval_blocks`` the full world state is written
  atomically as a recovery anchor (:mod:`repro.storage.snapshot`);
* :func:`recover` rebuilds a live node by replaying the WAL suffix from
  the newest usable anchor through the real execution pipeline,
  asserting bit-identical state digests block by block;
* torn tails are truncated and counted, mid-log corruption is a typed
  refusal, and ``repro verify-store`` audits a directory offline.
"""

from .config import (
    FSYNC_ALWAYS,
    FSYNC_INTERVAL,
    FSYNC_NEVER,
    FSYNC_POLICIES,
    StorageConfig,
)
from .errors import (
    CorruptSnapshotError,
    CorruptWalError,
    RecoveryError,
    StorageError,
    StoreLockedError,
)
from .recovery import (
    RecoveryResult,
    StoreReport,
    attach,
    has_store,
    recover,
    verify_store,
)
from .store import ChainStore
from .tail import WalTailReader

__all__ = [
    "FSYNC_ALWAYS",
    "FSYNC_INTERVAL",
    "FSYNC_NEVER",
    "FSYNC_POLICIES",
    "ChainStore",
    "CorruptSnapshotError",
    "CorruptWalError",
    "RecoveryError",
    "RecoveryResult",
    "StorageConfig",
    "StorageError",
    "StoreLockedError",
    "StoreReport",
    "WalTailReader",
    "attach",
    "has_store",
    "recover",
    "verify_store",
]
