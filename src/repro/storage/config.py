"""Storage configuration: durability/latency trade-off knobs."""

from __future__ import annotations

from dataclasses import dataclass

#: ``fsync`` policies, in decreasing durability order.
FSYNC_ALWAYS = "always"
FSYNC_INTERVAL = "interval"
FSYNC_NEVER = "never"

FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_INTERVAL, FSYNC_NEVER)


@dataclass
class StorageConfig:
    """Everything a :class:`~repro.storage.store.ChainStore` needs.

    The fsync policy decides what a crash can lose:

    * ``always`` — fsync after every WAL append; a client future never
      resolves before its block is on stable storage. Slowest.
    * ``interval`` — fsync every ``fsync_interval_blocks`` appends (and
      on close); a crash loses at most that many committed blocks.
    * ``never`` — rely on the OS page cache; a process crash loses
      nothing (the file is written), a machine crash can lose anything
      since the last kernel writeback. Fastest.
    """

    #: ``always`` / ``interval`` / ``never``.
    fsync: str = FSYNC_ALWAYS
    #: Under ``interval``: fsync the WAL every this many block appends.
    fsync_interval_blocks: int = 16
    #: Write a world-state snapshot every this many blocks, so recovery
    #: replays a bounded WAL suffix instead of the whole chain.
    snapshot_interval_blocks: int = 64
    #: Keep this many most-recent snapshots (plus the genesis snapshot,
    #: which is never pruned).
    retain_snapshots: int = 2

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {self.fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if self.fsync_interval_blocks <= 0:
            raise ValueError("fsync_interval_blocks must be positive")
        if self.snapshot_interval_blocks <= 0:
            raise ValueError("snapshot_interval_blocks must be positive")
        if self.retain_snapshots <= 0:
            raise ValueError("retain_snapshots must be positive")
