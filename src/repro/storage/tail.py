"""Tail-follow reading of a live WAL: the replication feed.

A :class:`WalTailReader` opens a WAL file that another process (or
thread) is still appending to and yields complete, CRC-verified records
as they land. The reader never trusts a partially written tail: a record
whose header, payload, or CRC is incomplete at poll time is simply *not
there yet* — the reader stays parked at its offset and retries on the
next poll, because an append in progress looks exactly like a torn
crash-write until the remaining bytes arrive.

The one situation that is fatal is the same one recovery refuses:
damage with valid records *beyond* it. If the file keeps growing past a
record that still fails its CRC, no amount of waiting will repair it —
that is mid-log corruption and the reader raises
:class:`~repro.storage.errors.CorruptWalError` instead of silently
skipping committed blocks.
"""

from __future__ import annotations

import os

from .errors import CorruptWalError
from .wal import MAX_RECORD_BYTES, RECORD_HEADER, _try_record

#: A stuck record whose claimed extent is exceeded by this many bytes of
#: newer data is mid-log corruption, not an append in progress (appends
#: are sequential: bytes beyond a record only exist once it is complete).
_STUCK_SLACK_BYTES = RECORD_HEADER.size


class WalTailReader:
    """Incremental reader over a WAL another writer is appending to.

    ``start_record`` skips that many records from the front before the
    first poll — how a replication stream resumes from a known height
    without re-reading history it already applied.
    """

    def __init__(self, path: str, start_record: int = 0) -> None:
        self.path = path
        self._offset = 0
        #: Records handed out so far (across the whole file).
        self.records_read = 0
        #: Complete records silently skipped to honour ``start_record``.
        self._skip = max(0, start_record)

    @property
    def offset(self) -> int:
        """Byte offset of the next unread record."""
        return self._offset

    def _file_size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def poll(self) -> list[bytes]:
        """Every complete new record since the last poll.

        Returns an empty list when nothing new (or only a partial tail)
        has been appended. Raises :class:`CorruptWalError` when the file
        has grown beyond a record that still fails to frame — waiting
        cannot fix bytes that were already written wrong.
        """
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as fh:
            fh.seek(self._offset)
            data = fh.read()
        fresh: list[bytes] = []
        pos = 0
        while pos < len(data):
            payload, pos, reason = _try_record(data, pos)
            if payload is None:
                self._check_stuck(data, pos, reason)
                break
            if self._skip > 0:
                self._skip -= 1
            else:
                fresh.append(payload)
                self.records_read += 1
        self._offset += pos
        return fresh

    def _check_stuck(self, data: bytes, pos: int, reason: str) -> None:
        """Distinguish an append in progress from mid-log damage.

        An in-progress append ends exactly at the file's tail. If bytes
        exist *beyond* the failing record's claimed extent, the writer
        has already moved on and the record will never become valid.
        """
        if pos + RECORD_HEADER.size > len(data):
            return  # torn header: the header itself is still landing
        length, _crc = RECORD_HEADER.unpack_from(data, pos)
        if length > MAX_RECORD_BYTES:
            raise CorruptWalError(
                f"{self.path}: offset {self._offset + pos}: "
                f"implausible record length {length}"
            )
        claimed_end = pos + RECORD_HEADER.size + length
        if len(data) > claimed_end + _STUCK_SLACK_BYTES:
            raise CorruptWalError(
                f"{self.path}: offset {self._offset + pos}: {reason} "
                f"with {len(data) - claimed_end} bytes beyond it — "
                f"mid-log corruption, refusing to skip records"
            )
