"""The durable chain store: WAL + snapshots + mempool spill in one dir.

A data directory owned by one live :class:`ChainStore` (an advisory pid
lockfile guards against two writers interleaving appends)::

    data_dir/
        LOCK                     advisory lock (pid of the owner)
        wal.log                  append-only block log (wal.py framing)
        snapshot-000000000000.rlp   genesis anchor (never pruned)
        snapshot-000000000064.rlp   periodic anchors (pruned to N)
        mempool.rlp              transactions spilled on drain

The store is deliberately passive: it persists what the node commits and
answers scans; *recovery* (rebuilding a live node from these files) lives
in :mod:`repro.storage.recovery` so the write path stays small enough to
reason about crash windows.
"""

from __future__ import annotations

import os
import time

from ..chain.block import Block
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..obs import get_registry
from . import codec, snapshot
from .config import FSYNC_ALWAYS, FSYNC_INTERVAL, StorageConfig
from .errors import StoreLockedError
from .wal import WalWriter, frame_record, unframe_record

WAL_NAME = "wal.log"
MEMPOOL_NAME = "mempool.rlp"
LOCK_NAME = "LOCK"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True


class ChainStore:
    """Durable writer for one chain's data directory."""

    def __init__(
        self,
        data_dir: str,
        config: StorageConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.data_dir = str(data_dir)
        self.config = config or StorageConfig()
        #: Optional :class:`repro.faults.FaultInjector`; its
        #: ``crash_point`` hook fires between the WAL append and the
        #: snapshot write (the crash-fault drills' kill window).
        self.fault_injector = fault_injector
        os.makedirs(self.data_dir, exist_ok=True)
        self._lock_path = os.path.join(self.data_dir, LOCK_NAME)
        self._acquire_lock()
        self._writer = WalWriter(os.path.join(self.data_dir, WAL_NAME))
        self._appends_since_fsync = 0
        self._closed = False
        # -- cumulative counters (mirrored into repro.obs when enabled) --
        self.wal_records = 0
        self.wal_bytes = 0
        self.snapshots_written = 0
        self.mempool_spilled = 0

    # -- locking -----------------------------------------------------------
    def _acquire_lock(self) -> None:
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    with open(self._lock_path) as fh:
                        owner = int(fh.read().strip() or "0")
                except (OSError, ValueError):
                    owner = 0
                if owner and owner != os.getpid() and _pid_alive(owner):
                    raise StoreLockedError(
                        f"{self.data_dir!r} is owned by live pid {owner}"
                    ) from None
                # Stale lock (SIGKILLed owner): take it over.
                os.unlink(self._lock_path)
                continue
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return

    # -- paths -------------------------------------------------------------
    @property
    def wal_path(self) -> str:
        return os.path.join(self.data_dir, WAL_NAME)

    @property
    def mempool_path(self) -> str:
        return os.path.join(self.data_dir, MEMPOOL_NAME)

    # -- genesis -----------------------------------------------------------
    def init_genesis(
        self, state: WorldState, state_root: bytes = b""
    ) -> bool:
        """Write the height-0 snapshot anchor if this is a fresh store."""
        path = os.path.join(self.data_dir, snapshot.snapshot_name(0))
        if os.path.exists(path):
            return False
        snapshot.write_snapshot(self.data_dir, 0, state, state_root)
        snapshot.sync_dir(self.data_dir)
        return True

    # -- the commit path ---------------------------------------------------
    def append_block(
        self, block: Block, state: WorldState, witness: bytes | None = None
    ) -> None:
        """Durably record a committed block and its post-state digest.

        Runs on the execution thread *before* client futures resolve:
        under ``fsync=always`` the record is on stable storage by the
        time anyone is told the transaction committed. Every
        ``snapshot_interval_blocks`` a state snapshot follows the
        append, so recovery replays a bounded suffix.

        A Merkleizing node's header carries its sealed ``state_root``;
        the record echoes it (and the block *witness*, when emitted) so
        replicas and recovery can validate roots without re-deriving.
        """
        registry = get_registry()
        started = time.perf_counter()
        payload = codec.encode_wal_payload(
            block,
            codec.state_digest_bytes(state),
            state_root=block.header.state_root,
            witness=witness or b"",
        )
        written = self._writer.append(payload)
        self.wal_records += 1
        self.wal_bytes += written

        policy = self.config.fsync
        self._appends_since_fsync += 1
        if policy == FSYNC_ALWAYS or (
            policy == FSYNC_INTERVAL
            and self._appends_since_fsync
            >= self.config.fsync_interval_blocks
        ):
            fsync_started = time.perf_counter()
            self._writer.sync()
            self._appends_since_fsync = 0
            if registry.enabled:
                registry.histogram("storage.fsync_latency_ms").observe(
                    (time.perf_counter() - fsync_started) * 1000.0
                )

        height = block.header.height
        if height % self.config.snapshot_interval_blocks == 0:
            if self.fault_injector is not None:
                # The drill window: the block is durable in the WAL but
                # its snapshot is not — recovery must come from the
                # previous anchor plus a longer replay.
                self.fault_injector.crash_point("between_wal_and_snapshot")
            snap_started = time.perf_counter()
            snapshot.write_snapshot(
                self.data_dir, height, state, block.header.state_root
            )
            snapshot.prune_snapshots(
                self.data_dir, self.config.retain_snapshots
            )
            snapshot.sync_dir(self.data_dir)
            self.snapshots_written += 1
            if registry.enabled:
                registry.counter("storage.snapshots_written").inc()
                registry.histogram(
                    "storage.snapshot_duration_ms"
                ).observe(
                    (time.perf_counter() - snap_started) * 1000.0
                )

        if registry.enabled:
            registry.counter("storage.wal_records").inc()
            registry.counter("storage.wal_bytes").inc(written)
            registry.histogram("storage.commit_latency_ms").observe(
                (time.perf_counter() - started) * 1000.0
            )

    def sync(self) -> None:
        """Force the WAL to stable storage regardless of policy."""
        self._writer.sync()
        self._appends_since_fsync = 0

    # -- mempool spill -----------------------------------------------------
    def spill_mempool(self, entries) -> int:
        """Persist still-pending transactions on drain (atomic write).

        *entries*: bare transactions or ``(transaction, bloom_bytes)``
        pairs (:meth:`Mempool.spill_entries` — carries the admission-time
        access blooms across the restart).
        """
        if not entries:
            return 0
        blob = codec.mempool_to_rlp(entries)
        snapshot.atomic_write(self.mempool_path, frame_record(blob))
        snapshot.sync_dir(self.data_dir)
        self.mempool_spilled += len(entries)
        registry = get_registry()
        if registry.enabled:
            registry.counter("storage.mempool_spilled").inc(len(entries))
        return len(entries)

    def load_mempool(
        self, delete: bool = True
    ) -> list[tuple[Transaction, bytes | None]]:
        """Read (and by default consume) the spilled mempool.

        Returns ``(transaction, bloom_bytes)`` pairs, ``bloom_bytes``
        ``None`` for legacy bare-transaction spill files. The file is
        deleted after a successful read: once the transactions are back
        in a live pool they either commit (and must never be re-admitted
        by a later restart — they would execute twice) or get spilled
        again on the next drain.
        """
        if not os.path.exists(self.mempool_path):
            return []
        with open(self.mempool_path, "rb") as fh:
            blob = fh.read()
        entries = codec.mempool_from_rlp(unframe_record(blob))
        if delete:
            os.unlink(self.mempool_path)
            snapshot.sync_dir(self.data_dir)
        return entries

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.sync()
        except (OSError, ValueError):  # pragma: no cover - closed fd
            pass
        self._writer.close()
        try:
            with open(self._lock_path) as fh:
                if fh.read().strip() == str(os.getpid()):
                    os.unlink(self._lock_path)
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ChainStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
