"""World-state snapshots: bounded-replay recovery anchors.

A snapshot is one CRC-framed record (the WAL's framing, reused) whose
payload is ``RLP([height, state_digest_32, state_rlp])``, written
atomically — encode to ``<name>.tmp``, fsync, then ``rename`` — so a
crash mid-write leaves either the previous snapshot set or the new one,
never a half file under the real name.

Snapshot files are named ``snapshot-<height 12 digits>.rlp``. Height 0
is the genesis snapshot written when a store is initialized; it is never
pruned, so recovery always has an anchor even when every later snapshot
is damaged or pruned.
"""

from __future__ import annotations

import os
import re

from ..chain import rlp
from ..chain.state import WorldState
from . import codec
from .errors import CorruptSnapshotError, CorruptWalError
from .wal import frame_record, unframe_record

_NAME_RE = re.compile(r"^snapshot-(\d{12})\.rlp$")


def snapshot_name(height: int) -> str:
    return f"snapshot-{height:012d}.rlp"


def atomic_write(path: str, blob: bytes) -> None:
    """Write-tmp-fsync-rename so *path* is never partially written."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _snapshot_fields(path: str, blob: bytes) -> list:
    """Decode a snapshot payload to its 3 (legacy) or 4 field list."""
    try:
        fields = rlp.as_list(rlp.decode(unframe_record(blob)), "snapshot")
    except (rlp.RLPDecodingError, CorruptWalError, ValueError) as exc:
        raise CorruptSnapshotError(f"{path}: {exc}") from exc
    if len(fields) not in (3, 4):
        raise CorruptSnapshotError(
            f"{path}: snapshot must be a 3- or 4-item list, "
            f"got {len(fields)}"
        )
    return fields


def write_snapshot(
    data_dir: str, height: int, state: WorldState, state_root: bytes = b""
) -> str:
    """Atomically persist *state* at *height*; returns the file path.

    With a Merkleizing writer the trie's *state_root* rides along as a
    4th field; legacy 3-field snapshots keep being written (and read)
    when no root is supplied.
    """
    digest = codec.state_digest_bytes(state)
    fields = [rlp.encode_int(height), digest, codec.state_to_rlp(state)]
    if state_root:
        fields.append(state_root)
    payload = rlp.encode(fields)
    path = os.path.join(data_dir, snapshot_name(height))
    atomic_write(path, frame_record(payload))
    return path


def read_snapshot(path: str) -> tuple[int, bytes, WorldState]:
    """Load one snapshot; returns (height, digest, state).

    Raises :class:`CorruptSnapshotError` on CRC or structural damage,
    including a digest that does not match the decoded state.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    fields = _snapshot_fields(path, blob)
    try:
        height = rlp.decode_int(fields[0])
        digest = rlp.as_bytes(fields[1], "snapshot digest")
        state = codec.state_from_rlp(
            rlp.as_bytes(fields[2], "snapshot state")
        )
    except (rlp.RLPDecodingError, CorruptWalError, ValueError) as exc:
        raise CorruptSnapshotError(f"{path}: {exc}") from exc
    if codec.state_digest_bytes(state) != digest:
        raise CorruptSnapshotError(
            f"{path}: state does not match its stamped digest"
        )
    return height, digest, state


def read_snapshot_stamp(path: str) -> tuple[int, bytes]:
    """(height, digest) of a snapshot without decoding its state.

    The cheap header read the replication streamer uses to validate a
    replica's claimed digest against an anchor it is not going to ship.
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    fields = _snapshot_fields(path, blob)
    try:
        return (
            rlp.decode_int(fields[0]),
            rlp.as_bytes(fields[1], "snapshot digest"),
        )
    except (rlp.RLPDecodingError, CorruptWalError, ValueError) as exc:
        raise CorruptSnapshotError(f"{path}: {exc}") from exc


def read_snapshot_root(path: str) -> bytes:
    """The Merkle state root a snapshot was stamped with (b"" for
    legacy 3-field snapshots or un-Merkleized writers)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    fields = _snapshot_fields(path, blob)
    if len(fields) < 4:
        return b""
    try:
        root = rlp.as_bytes(fields[3], "snapshot state root")
    except rlp.RLPDecodingError as exc:
        raise CorruptSnapshotError(f"{path}: {exc}") from exc
    if root and len(root) != 32:
        raise CorruptSnapshotError(
            f"{path}: snapshot state root must be 32 bytes"
        )
    return root


def list_snapshots(data_dir: str) -> list[tuple[int, str]]:
    """(height, path) of every snapshot file, highest height first."""
    found: list[tuple[int, str]] = []
    for name in os.listdir(data_dir):
        match = _NAME_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(data_dir, name)))
    found.sort(reverse=True)
    return found


def load_latest_snapshot(
    data_dir: str, max_height: int | None = None
) -> tuple[int, bytes, WorldState, list[str]]:
    """The newest *loadable* snapshot (optionally at/below *max_height*).

    Damaged snapshots are skipped — recovery falls back to the next
    older anchor and replays a longer WAL suffix instead of failing.
    Returns (height, digest, state, skipped_paths).
    """
    skipped: list[str] = []
    for height, path in list_snapshots(data_dir):
        if max_height is not None and height > max_height:
            continue
        try:
            loaded_height, digest, state = read_snapshot(path)
        except CorruptSnapshotError:
            skipped.append(path)
            continue
        if loaded_height != height:
            skipped.append(path)
            continue
        return height, digest, state, skipped
    raise CorruptSnapshotError(
        f"no loadable snapshot in {data_dir!r} "
        f"(skipped {len(skipped)} damaged files)"
    )


def prune_snapshots(data_dir: str, retain: int) -> list[str]:
    """Delete all but the newest *retain* snapshots (genesis is kept)."""
    removed: list[str] = []
    kept = 0
    for height, path in list_snapshots(data_dir):
        if height == 0:
            continue
        kept += 1
        if kept > retain:
            os.unlink(path)
            removed.append(path)
    return removed


def sync_dir(data_dir: str) -> None:
    """fsync the directory so renames/creates are durable."""
    try:
        fd = os.open(data_dir, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
