"""Canonical RLP encodings for durable artifacts.

Everything the store writes is RLP over the chain's own codec
(:mod:`repro.chain.rlp`) so the WAL, snapshots, and the spilled mempool
share one wire discipline — and one hardened decoder — with the rest of
the system.

The world-state encoding is *canonical*: accounts sorted by address,
storage slots sorted, empty accounts skipped (the same filter
:meth:`~repro.chain.state.WorldState.state_digest` applies). Two states
that are semantically equal therefore encode to identical bytes, which
is what lets :func:`state_digest_bytes` serve as the commit stamp the
WAL records and recovery re-derives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import rlp
from ..chain.account import Account
from ..chain.block import Block
from ..chain.state import WorldState
from ..chain.transaction import Transaction
from ..crypto import keccak256


def state_to_rlp(state: WorldState) -> bytes:
    """Canonical snapshot encoding of a world state."""
    accounts = []
    for addr, nonce, balance, code, storage in state.state_digest():
        accounts.append(
            [
                rlp.encode_int(addr),
                rlp.encode_int(nonce),
                rlp.encode_int(balance),
                code,
                [
                    [rlp.encode_int(slot), rlp.encode_int(value)]
                    for slot, value in storage
                ],
            ]
        )
    return rlp.encode(accounts)


def state_from_rlp(blob: bytes) -> WorldState:
    """Rebuild a world state from its canonical snapshot encoding."""
    state = WorldState()
    for item in rlp.as_list(rlp.decode(blob), "world state"):
        fields = rlp.as_list(item, "account", 5)
        storage: dict[int, int] = {}
        for pair in rlp.as_list(fields[4], "account storage"):
            slot_value = rlp.as_list(pair, "storage slot", 2)
            storage[rlp.decode_int(slot_value[0])] = rlp.decode_int(
                slot_value[1]
            )
        state.load_account(
            rlp.decode_int(fields[0]),
            Account(
                nonce=rlp.decode_int(fields[1]),
                balance=rlp.decode_int(fields[2]),
                code=rlp.as_bytes(fields[3], "account code"),
                storage=storage,
            ),
        )
    return state


def account_leaf_rlp(address: int, account: Account) -> bytes:
    """Canonical per-account leaf encoding (the digest commitment unit)."""
    return rlp.encode(
        [
            rlp.encode_int(address),
            rlp.encode_int(account.nonce),
            rlp.encode_int(account.balance),
            account.code,
            [
                [rlp.encode_int(slot), rlp.encode_int(value)]
                for slot, value in sorted(account.storage.items())
            ],
        ]
    )


def state_digest_bytes(state: WorldState) -> bytes:
    """32-byte commitment to the full world state — the digest stamped
    into every WAL record and snapshot.

    keccak over the sorted ``(address, leaf_hash)`` pairs of every
    non-empty account, where a leaf hash is keccak over
    :func:`account_leaf_rlp`. Leaf hashes are cached on the state and
    invalidated per-account by its mutators, so the commit-path digest
    costs O(accounts touched since the last digest) leaf encodings plus
    one keccak over ~52 bytes per live account — not a full state
    serialization per block. A freshly loaded state (empty cache)
    recomputes every leaf and lands on the same value, which is what
    lets recovery assert bit-identity against the stamps.
    """
    accounts = state._accounts
    leaves = state._leaf_hashes
    dirty = state._digest_dirty
    # Dirty-driven eviction: an address whose account went away (delete,
    # or revert of a creation) is in the dirty set, so only touched
    # leaves are ever inspected — O(touched), not O(leaves).
    for address in dirty:
        if address not in accounts:
            leaves.pop(address, None)
    for address, account in accounts.items():
        if address in dirty or address not in leaves:
            if account.is_empty:
                leaves.pop(address, None)
            else:
                leaves[address] = keccak256(
                    account_leaf_rlp(address, account)
                )
    dirty.clear()
    return keccak256(
        b"".join(
            address.to_bytes(32, "big") + leaves[address]
            for address in sorted(leaves)
        )
    )


@dataclass(frozen=True)
class WalRecord:
    """One fully decoded WAL record (all wire generations)."""

    block: Block
    digest: bytes
    #: Post-block Merkle state root; empty for legacy records and for
    #: writers running with Merkleization off.
    state_root: bytes = b""
    #: Block witness blob (see repro.trie.witness); empty unless the
    #: writer was started with witness emission on.
    witness: bytes = b""


def encode_wal_payload(
    block: Block,
    post_state_digest: bytes,
    state_root: bytes = b"",
    witness: bytes = b"",
) -> bytes:
    """One WAL record payload: block, flat digest, and (when the writer
    Merkleizes) the state root and optional witness.

    The field count grows only as far as needed — 2 (legacy), 3 (root),
    4 (root + witness) — so records written by an un-Merkleized node are
    byte-identical to the previous wire generation.
    """
    fields: list = [block.to_rlp(), post_state_digest]
    if state_root or witness:
        fields.append(state_root)
    if witness:
        fields.append(witness)
    return rlp.encode(fields)


def decode_wal_record(payload: bytes) -> WalRecord:
    """Decode any wire generation of a WAL record."""
    fields = rlp.as_list(rlp.decode(payload), "wal record")
    if len(fields) not in (2, 3, 4):
        raise rlp.RLPDecodingError(
            f"wal record must be a 2-, 3- or 4-item list, "
            f"got {len(fields)}"
        )
    digest = rlp.as_bytes(fields[1], "wal state digest")
    if len(digest) != 32:
        raise rlp.RLPDecodingError("wal state digest must be 32 bytes")
    state_root = b""
    if len(fields) >= 3:
        state_root = rlp.as_bytes(fields[2], "wal state root")
        if state_root and len(state_root) != 32:
            raise rlp.RLPDecodingError("wal state root must be 32 bytes")
    witness = (
        rlp.as_bytes(fields[3], "wal witness") if len(fields) == 4 else b""
    )
    block = Block.from_rlp(rlp.as_bytes(fields[0], "wal block"))
    return WalRecord(
        block=block, digest=digest, state_root=state_root, witness=witness
    )


def decode_wal_payload(payload: bytes) -> tuple[Block, bytes]:
    """Decode a WAL record to its (block, digest) core — the shape every
    pre-Merkle call site consumes; newer fields are simply ignored."""
    record = decode_wal_record(payload)
    return record.block, record.digest


def mempool_to_rlp(entries) -> bytes:
    """Encode a spilled mempool.

    *entries* is a list of bare :class:`Transaction` objects or of
    ``(transaction, bloom_bytes)`` pairs (the
    :meth:`Mempool.spill_entries` shape — access blooms ride along so
    declared-access filters, whose tags are not on the wire, survive a
    restart). Each pair encodes as a 2-list; a bare transaction encodes
    as its wire blob, which keeps old spill files decodable.
    """
    items = []
    for entry in entries:
        if isinstance(entry, Transaction):
            items.append(entry.to_rlp())
        else:
            tx, bloom_bytes = entry
            items.append([tx.to_rlp(), bytes(bloom_bytes)])
    return rlp.encode(items)


def mempool_from_rlp(blob: bytes) -> list[tuple[Transaction, bytes | None]]:
    """Decode a spilled mempool into ``(transaction, bloom_bytes)`` pairs.

    ``bloom_bytes`` is ``None`` for legacy records that spilled the bare
    transaction; the re-admitting mempool then rebuilds the bloom.
    """
    entries: list[tuple[Transaction, bytes | None]] = []
    for item in rlp.as_list(rlp.decode(blob), "spilled mempool"):
        if isinstance(item, list):
            fields = rlp.as_list(item, "spilled entry", 2)
            entries.append(
                (
                    Transaction.from_rlp(
                        rlp.as_bytes(fields[0], "spilled transaction")
                    ),
                    rlp.as_bytes(fields[1], "spilled bloom"),
                )
            )
        else:
            entries.append(
                (
                    Transaction.from_rlp(
                        rlp.as_bytes(item, "spilled transaction")
                    ),
                    None,
                )
            )
    return entries
