"""The append-only write-ahead block log.

One record per committed block::

    +----------------+----------------+-------------------------+
    | length (u32 BE)| crc32 (u32 BE) | payload (length bytes)  |
    +----------------+----------------+-------------------------+

    payload = RLP([ block_rlp, post_state_digest_32 ])

The CRC covers the payload, so a torn tail write (partial header,
partial payload, or a payload whose bits never made it to the platter)
is *detected* at scan time, reported, and truncated away — a crash
mid-append must cost at most the block that was being appended, never
the log. Framing is deliberately dumb: fixed-width header, no
compression, no in-place mutation, so a scan can always decide exactly
where the valid prefix ends.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field

from .errors import CorruptWalError

#: WAL record header: payload length, CRC32 of the payload.
RECORD_HEADER = struct.Struct(">II")

#: Sanity bound on a single record. A length field above this is treated
#: as framing corruption (a real block of this size is impossible here).
MAX_RECORD_BYTES = 1 << 28


def frame_record(payload: bytes) -> bytes:
    """Frame *payload* as one length+CRC record."""
    if len(payload) > MAX_RECORD_BYTES:
        raise ValueError(
            f"record of {len(payload)} bytes exceeds MAX_RECORD_BYTES"
        )
    return (
        RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    )


def unframe_record(blob: bytes) -> bytes:
    """Inverse of :func:`frame_record` for single-record files
    (snapshots, the spilled mempool). Raises on any damage."""
    if len(blob) < RECORD_HEADER.size:
        raise CorruptWalError("record shorter than its header")
    length, crc = RECORD_HEADER.unpack_from(blob, 0)
    payload = blob[RECORD_HEADER.size:RECORD_HEADER.size + length]
    if len(payload) != length:
        raise CorruptWalError(
            f"record payload truncated: {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) != crc:
        raise CorruptWalError("record CRC mismatch")
    return payload


@dataclass
class WalScan:
    """What a scan of a WAL file found.

    ``records`` is the valid prefix; everything from ``valid_bytes`` on
    is garbage (torn tail, CRC damage, or framing noise) described by
    ``corruption``. ``suffix_records`` counts records that *do* frame
    and checksum correctly beyond the first bad one — a non-zero value
    means mid-log corruption: data after the damage is unrecoverable by
    tail truncation and verify-store must fail loudly.
    """

    records: list[bytes] = field(default_factory=list)
    file_bytes: int = 0
    valid_bytes: int = 0
    corruption: str | None = None
    suffix_records: int = 0

    @property
    def clean(self) -> bool:
        return self.corruption is None

    @property
    def truncated_bytes(self) -> int:
        return self.file_bytes - self.valid_bytes

    @property
    def mid_log_corruption(self) -> bool:
        return self.corruption is not None and self.suffix_records > 0


def _try_record(data: bytes, pos: int) -> tuple[bytes | None, int, str]:
    """Try to read one record at *pos*.

    Returns (payload, next_pos, "") on success or (None, pos, reason).
    """
    if pos + RECORD_HEADER.size > len(data):
        return None, pos, (
            f"torn header: {len(data) - pos} of "
            f"{RECORD_HEADER.size} bytes"
        )
    length, crc = RECORD_HEADER.unpack_from(data, pos)
    if length > MAX_RECORD_BYTES:
        return None, pos, f"implausible record length {length}"
    start = pos + RECORD_HEADER.size
    end = start + length
    if end > len(data):
        return None, pos, (
            f"torn payload: {len(data) - start} of {length} bytes"
        )
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        return None, pos, "payload CRC mismatch"
    return payload, end, ""


def scan_wal(path: str) -> WalScan:
    """Read every valid record from the front of the WAL.

    Never raises on damage: the scan stops at the first bad record and
    reports it. To judge whether the damage is tail-only, the scanner
    then *skips* the bad record's claimed extent and keeps counting
    well-formed records (``suffix_records``) — valid data beyond the
    damage distinguishes unrecoverable mid-log corruption from an
    ordinary crash tear.
    """
    scan = WalScan()
    if not os.path.exists(path):
        return scan
    with open(path, "rb") as fh:
        data = fh.read()
    scan.file_bytes = len(data)

    pos = 0
    while pos < len(data):
        payload, pos, reason = _try_record(data, pos)
        if payload is None:
            scan.corruption = f"offset {pos}: {reason}"
            break
        scan.records.append(payload)
        scan.valid_bytes = pos

    if scan.corruption is not None:
        # Probe past the damaged record for surviving framed records.
        length = None
        if pos + RECORD_HEADER.size <= len(data):
            length, _ = RECORD_HEADER.unpack_from(data, pos)
        if length is not None and length <= MAX_RECORD_BYTES:
            probe = pos + RECORD_HEADER.size + length
            while probe < len(data):
                payload, probe, reason = _try_record(data, probe)
                if payload is None:
                    break
                scan.suffix_records += 1
    return scan


def truncate_wal(path: str, valid_bytes: int) -> None:
    """Repair a torn tail by truncating to the valid prefix."""
    with open(path, "r+b") as fh:
        fh.truncate(valid_bytes)
        fh.flush()
        os.fsync(fh.fileno())


class WalWriter:
    """Appends framed records to the log; the caller owns fsync policy."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "ab")

    @property
    def offset(self) -> int:
        return self._fh.tell()

    def append(self, payload: bytes) -> int:
        """Buffered append of one record; returns bytes written."""
        record = frame_record(payload)
        self._fh.write(record)
        self._fh.flush()  # into the OS page cache; fsync is separate
        return len(record)

    def sync(self) -> None:
        """fsync the log to stable storage."""
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
