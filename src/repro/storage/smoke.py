"""Crash-recovery smoke drill: SIGKILL a serving node, prove nothing lied.

``python -m repro.storage.smoke`` runs the full durability drill over
real processes and sockets:

1. start ``repro serve --data-dir … --fsync always`` as a subprocess;
2. drive it with concurrent closed-loop clients, recording the hash of
   every transaction whose receipt was acknowledged;
3. SIGKILL the server mid-load (no drain, no spill, no atexit);
4. recover the data directory offline and assert the recovered state
   digest is bit-identical to an independent sequential replay of the
   WAL's blocks from the genesis snapshot;
5. restart the server on the same directory and assert it resumes at
   the recovered height and serves a receipt for every acknowledged
   hash over RPC (fsync=always: an ack means durable, full stop).

The CI ``storage-smoke`` job runs exactly this.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

import repro

from ..chain.node import Node
from ..contracts.registry import build_deployment
from . import codec, recovery, snapshot

_LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+)")


class ServerProcess:
    """A ``repro serve`` subprocess plus its parsed listen port."""

    def __init__(self, data_dir: str, accounts: int, extra: list[str]):
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env.get("PYTHONPATH", "")
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--data-dir", data_dir,
                "--accounts", str(accounts),
                *extra,
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port: int | None = None
        self.stderr_lines: list[str] = []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            self.stderr_lines.append(line.rstrip())
            match = _LISTEN_RE.search(line)
            if match:
                self.port = int(match.group(2))
                return
        raise RuntimeError(
            "server never announced its port:\n"
            + "\n".join(self.stderr_lines)
        )

    def kill(self) -> None:
        """SIGKILL — the whole point: no drain, no cleanup, no spill."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait()

    def stop(self) -> int:
        """Graceful stop (SIGINT → drain) and exit code."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGINT)
        try:
            self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:  # pragma: no cover
            self.proc.kill()
            self.proc.wait()
        if self.proc.stderr is not None:
            self.stderr_lines.extend(
                line.rstrip() for line in self.proc.stderr
            )
        return self.proc.returncode


async def _drive_until_kill(
    server: ServerProcess,
    accounts: int,
    clients: int,
    total: int,
    kill_after_blocks: int,
) -> tuple[list[str], int]:
    """Closed-loop load; SIGKILL mid-load once the chain is tall enough.

    Returns (acked tx hashes, chain height last observed before the
    kill). Workers treat a dead connection as the expected end of the
    drill, not an error.
    """
    from ..serve import protocol
    from ..serve.loadgen import (
        RpcClient,
        RpcClientError,
        make_transactions,
    )

    deployment = build_deployment(num_accounts=accounts)
    txs = make_transactions(deployment, total, seed=11)
    queue: asyncio.Queue = asyncio.Queue()
    for tx in txs:
        queue.put_nowait(tx)
    acked: list[str] = []

    async def worker() -> None:
        try:
            client = await RpcClient.connect("127.0.0.1", server.port)
        except ConnectionError:
            return
        try:
            while True:
                try:
                    tx = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                try:
                    await client.call(
                        "repro_sendTransaction",
                        {"tx": protocol.tx_to_wire(tx)},
                    )
                except ConnectionError:
                    return  # the kill landed
                except RpcClientError:
                    continue
                acked.append(tx.hash().hex())
        finally:
            await client.close()

    workers = [
        asyncio.ensure_future(worker()) for _ in range(clients)
    ]
    height = 0
    try:
        stats_client = await RpcClient.connect("127.0.0.1", server.port)
        while height < kill_after_blocks:
            await asyncio.sleep(0.02)
            stats = await stats_client.call("repro_stats")
            height = stats["chainHeight"]
            if all(w.done() for w in workers):
                break  # load exhausted before the target height
    finally:
        # SIGKILL while acks are still streaming back.
        server.kill()
        await asyncio.gather(*workers, return_exceptions=True)
    return acked, height


def _offline_replay_digest(data_dir: str) -> tuple[int, bytes]:
    """Independent check: sequential replay from the genesis snapshot.

    Deliberately does *not* use :func:`repro.storage.recovery.recover` —
    it re-derives the final state with nothing but the genesis snapshot,
    the WAL's decoded blocks, and the plain sequential executor, so a
    bug in recovery's own replay can't vouch for itself.
    """
    from ..chain import rlp as _  # noqa: F401  (keeps import local)
    from .wal import scan_wal

    genesis = os.path.join(data_dir, snapshot.snapshot_name(0))
    _height, _digest, state = snapshot.read_snapshot(genesis)
    node = Node(state=state)
    scan = scan_wal(os.path.join(data_dir, "wal.log"))
    for payload in scan.records:
        block, _stamp = codec.decode_wal_payload(payload)
        node.execute_block(block)
    return len(scan.records), codec.state_digest_bytes(node.state)


async def _fetch_receipts(
    port: int, hashes: list[str]
) -> tuple[int, list[str]]:
    from ..serve.loadgen import RpcClient

    client = await RpcClient.connect("127.0.0.1", port)
    missing: list[str] = []
    try:
        for tx_hash in hashes:
            receipt = await client.call(
                "repro_getReceipt", {"txHash": tx_hash}
            )
            if receipt is None:
                missing.append(tx_hash)
    finally:
        await client.close()
    return len(hashes) - len(missing), missing


def run_crash_drill(
    accounts: int = 32,
    clients: int = 8,
    total: int = 400,
    kill_after_blocks: int = 6,
    block_size: int = 8,
    snapshot_interval: int = 4,
    data_dir: str | None = None,
) -> dict:
    """The full drill; returns a result dict with a ``failures`` list."""
    data_dir = data_dir or tempfile.mkdtemp(prefix="repro-crash-smoke-")
    serve_args = [
        "--fsync", "always",
        "--block-size", str(block_size),
        "--interval-ms", "10",
        "--snapshot-interval", str(snapshot_interval),
    ]
    failures: list[str] = []

    server = ServerProcess(data_dir, accounts, serve_args)
    acked, observed_height = asyncio.run(
        _drive_until_kill(
            server, accounts, clients, total, kill_after_blocks
        )
    )

    # -- offline recovery --------------------------------------------------
    result = recovery.recover(data_dir)
    if result.height < observed_height:
        failures.append(
            f"recovered height {result.height} < height "
            f"{observed_height} the server reported before the kill"
        )
    replay_height, replay_digest = _offline_replay_digest(data_dir)
    if replay_height != result.height:
        failures.append(
            f"offline replay height {replay_height} != recovered "
            f"{result.height}"
        )
    if replay_digest != result.state_digest:
        failures.append(
            "recovered state digest is not bit-identical to the "
            "independent sequential replay"
        )
    report = recovery.verify_store(data_dir)
    if not report.ok:
        failures.append(f"verify-store failed: {report.notes}")

    # -- restart on the same directory -------------------------------------
    restarted = ServerProcess(data_dir, accounts, serve_args)
    try:
        resumed = any(
            f"recovered height {result.height} " in line
            for line in restarted.stderr_lines
        )
        if not resumed:
            failures.append(
                f"restart did not announce recovered height "
                f"{result.height}: {restarted.stderr_lines}"
            )
        served, missing = asyncio.run(
            _fetch_receipts(restarted.port, acked)
        )
        if missing:
            failures.append(
                f"{len(missing)} of {len(acked)} acknowledged "
                f"receipts unfetchable after restart "
                f"(first: {missing[0][:16]}…)"
            )
    finally:
        code = restarted.stop()
    if code != 0:
        failures.append(f"restarted server exited {code}")

    return {
        "data_dir": data_dir,
        "acked": len(acked),
        "killed_at_height": observed_height,
        "recovered_height": result.height,
        "snapshot_height": result.snapshot_height,
        "replayed_blocks": result.replayed_blocks,
        "state_digest": result.state_digest.hex(),
        "receipts_served_after_restart": served,
        "failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--accounts", type=int, default=32)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--transactions", type=int, default=400)
    parser.add_argument(
        "--kill-after-blocks", type=int, default=6,
        help="SIGKILL once the chain reaches this height",
    )
    parser.add_argument("--block-size", type=int, default=8)
    parser.add_argument("--snapshot-interval", type=int, default=4)
    parser.add_argument(
        "--data-dir", default=None,
        help="reuse a directory instead of a fresh tempdir",
    )
    args = parser.parse_args(argv)

    result = run_crash_drill(
        accounts=args.accounts,
        clients=args.clients,
        total=args.transactions,
        kill_after_blocks=args.kill_after_blocks,
        block_size=args.block_size,
        snapshot_interval=args.snapshot_interval,
        data_dir=args.data_dir,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["acked"] == 0:
        result["failures"].append(
            "no transaction was acknowledged before the kill"
        )
    if result["failures"]:
        print(
            "CRASH SMOKE FAILED: " + "; ".join(result["failures"]),
            file=sys.stderr,
        )
        return 1
    print(
        f"crash-smoke ok: killed at height "
        f"{result['killed_at_height']}, recovered "
        f"{result['recovered_height']} "
        f"(snapshot {result['snapshot_height']} + "
        f"{result['replayed_blocks']} replayed), "
        f"{result['receipts_served_after_restart']}/{result['acked']} "
        f"acked receipts served after restart",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
