"""Crash recovery: rebuild a live node from a data directory.

Recovery is *re-execution*, not deserialization of trust: the WAL's
blocks replay through the node's own execution pipeline against the
newest usable snapshot, and after every replayed block the resulting
``state_digest`` must be bit-identical to the digest stamped into that
block's WAL record at commit time. A store that cannot reproduce its own
chain is corrupt, and recovery says so with a typed error instead of
serving a silently divergent state.

Anchor choice honours the receipt-retention contract: receipts are
rebuilt by replay, so the replayed suffix must cover the newest
``receipt_history_blocks`` blocks — the anchor snapshot is the newest
one at or below ``wal_height - receipt_history_blocks`` (archival
``None`` replays from genesis).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

from ..chain.bloom import AccessBloom
from ..chain.node import Node
from ..chain.state import WorldState
from ..core.hotspot.tracker import HotspotTracker
from ..obs import get_registry
from ..trie import StateRootMismatchError
from . import codec, snapshot as snapshots
from .errors import CorruptSnapshotError, CorruptWalError, RecoveryError
from .store import MEMPOOL_NAME, WAL_NAME
from .wal import scan_wal, truncate_wal, unframe_record


@dataclass
class RecoveryResult:
    """Everything :func:`recover` learned and rebuilt."""

    node: Node
    #: Height of the last durably committed block.
    height: int
    #: Height of the snapshot the replay started from.
    snapshot_height: int
    #: Blocks re-executed (``height - snapshot_height``).
    replayed_blocks: int
    #: Damaged/partial WAL records dropped by tail truncation.
    truncated_records: int
    #: Bytes cut from the WAL tail.
    truncated_bytes: int
    #: Description of the tail damage, if any.
    corruption: str | None
    #: Snapshot files skipped because they were damaged or inconsistent.
    skipped_snapshots: list[str] = field(default_factory=list)
    #: Transactions waiting in ``mempool.rlp`` (spilled on drain).
    spilled_pending: int = 0
    #: Post-recovery canonical state digest.
    state_digest: bytes = b""
    #: Hotspot profile rebuilt from the whole chain's traffic.
    tracker: HotspotTracker | None = None
    #: Human-readable recovery notes (tail truncation, skipped files).
    warnings: list[str] = field(default_factory=list)

    @property
    def hotspots(self) -> list[int]:
        return self.tracker.current_hotspots() if self.tracker else []


def _decode_chain(
    records: list[bytes],
) -> tuple[list, str | None, int]:
    """Decode WAL payloads into (block, digest) pairs.

    Stops at the first record that fails structural decode, height
    contiguity, or parent-hash linkage; returns (pairs, reason, index)
    where *index* is the offending record (len(records) when clean).
    """
    from ..chain import rlp

    pairs = []
    prev_hash = b"\x00" * 32
    for index, payload in enumerate(records):
        try:
            block, digest = codec.decode_wal_payload(payload)
        except rlp.RLPDecodingError as exc:
            return pairs, f"record {index}: {exc}", index
        if block.header.height != index + 1:
            return pairs, (
                f"record {index}: height {block.header.height}, "
                f"expected {index + 1}"
            ), index
        if block.header.parent_hash != prev_hash:
            return pairs, (
                f"record {index}: parent hash does not link to "
                f"block {index}"
            ), index
        prev_hash = block.hash()
        pairs.append((block, digest))
    return pairs, None, len(records)


def _choose_anchor(
    data_dir: str,
    pairs: list,
    receipt_history_blocks: int | None,
) -> tuple[int, WorldState, list[str]]:
    """The newest snapshot that keeps the retention window replayable."""
    wal_height = len(pairs)
    if receipt_history_blocks is None:
        anchor_ceiling = 0
    else:
        anchor_ceiling = max(0, wal_height - receipt_history_blocks)
    skipped: list[str] = []
    for height, path in snapshots.list_snapshots(data_dir):
        if height > anchor_ceiling:
            continue
        try:
            loaded_height, digest, state = snapshots.read_snapshot(path)
        except CorruptSnapshotError:
            skipped.append(path)
            continue
        if loaded_height != height:
            skipped.append(path)
            continue
        if height > 0 and digest != pairs[height - 1][1]:
            # Snapshot disagrees with the WAL stamp at its own height —
            # fall back to an older anchor rather than trust it.
            skipped.append(path)
            continue
        return height, state, skipped
    raise RecoveryError(
        f"no usable snapshot anchor in {data_dir!r} "
        f"(skipped {len(skipped)}); cannot recover"
    )


def _count_spilled(data_dir: str) -> int:
    path = os.path.join(data_dir, MEMPOOL_NAME)
    if not os.path.exists(path):
        return 0
    try:
        with open(path, "rb") as fh:
            return len(codec.mempool_from_rlp(unframe_record(fh.read())))
    except Exception:
        return 0


def recover(
    data_dir: str,
    receipt_history_blocks: int | None = 1024,
    repair: bool = True,
    node_factory=None,
) -> RecoveryResult:
    """Rebuild a node from *data_dir*: snapshot + WAL-suffix replay.

    Tail damage (torn/partial final records, CRC mismatches at the end
    of the log) is truncated — with ``repair=True`` the file itself is
    trimmed — warned about, and counted. Damage *followed by further
    valid records* is mid-log corruption and raises
    :class:`CorruptWalError`: truncating there would silently drop
    durably committed blocks. A replayed block whose state digest
    differs from its WAL stamp raises :class:`RecoveryError`.
    """
    data_dir = str(data_dir)
    wal_path = os.path.join(data_dir, WAL_NAME)
    registry = get_registry()
    warnings: list[str] = []

    scan = scan_wal(wal_path)
    if scan.mid_log_corruption:
        raise CorruptWalError(
            f"{wal_path}: {scan.corruption} with {scan.suffix_records} "
            f"valid records beyond it — mid-log corruption, refusing to "
            f"truncate durably committed blocks (run `repro verify-store`)"
        )

    pairs, decode_reason, bad_index = _decode_chain(scan.records)
    if decode_reason is not None and bad_index < len(scan.records) - 1:
        raise CorruptWalError(
            f"{wal_path}: {decode_reason} followed by further records — "
            f"mid-log corruption"
        )

    truncated_records = len(scan.records) - len(pairs)
    corruption = scan.corruption or decode_reason
    valid_prefix_bytes = sum(
        len(record) + 8 for record in scan.records[:len(pairs)]
    )
    truncated_bytes = (
        scan.file_bytes - valid_prefix_bytes if corruption else 0
    )
    if corruption is not None:
        truncated_records += 1 if scan.corruption else 0
        warnings.append(
            f"WAL tail truncated at block {len(pairs) + 1}: {corruption} "
            f"({truncated_bytes} trailing bytes dropped)"
        )
        if registry.enabled:
            registry.counter("storage.wal_truncated_records").inc(
                max(1, truncated_records)
            )
        if repair and os.path.exists(wal_path):
            truncate_wal(wal_path, valid_prefix_bytes)

    anchor_height, state, skipped = _choose_anchor(
        data_dir, pairs, receipt_history_blocks
    )
    for path in skipped:
        warnings.append(f"skipped damaged/inconsistent snapshot {path}")

    # The replay node is deliberately *not* Merkleizing: re-sealing
    # would stamp legacy (rootless) headers in place, changing their
    # hashes and poisoning parent linkage for blocks appended after
    # recovery. Roots are verified once at the tip instead, and the
    # caller's node re-attaches its own trie after the transplant.
    if node_factory is None:
        def node_factory(state):
            return Node(state=state, merkleize=False)
    node = node_factory(state=state)
    node.chain = [block for block, _ in pairs[:anchor_height]]

    replayed = 0
    for block, stamped in pairs[anchor_height:]:
        try:
            # A Merkleizing node re-seals as it replays, so a header
            # whose WAL-stamped state root cannot be reproduced is
            # caught here, before the digest comparison.
            node.execute_block(block)
        except StateRootMismatchError as exc:
            raise RecoveryError(
                f"replay diverged at block {block.header.height}: {exc}"
            ) from None
        actual = codec.state_digest_bytes(node.state)
        if actual != stamped:
            raise RecoveryError(
                f"replay diverged at block {block.header.height}: "
                f"state digest {actual.hex()[:16]}… != stamped "
                f"{stamped.hex()[:16]}…"
            )
        replayed += 1

    if pairs and pairs[-1][0].header.state_root:
        # The WAL tip was sealed by a Merkleizing writer: the recovered
        # state must reproduce that root bit-identically.
        from ..trie import StateTrie

        rebuilt = StateTrie.rebuild_root(node.state)
        claimed = pairs[-1][0].header.state_root
        if rebuilt != claimed:
            raise RecoveryError(
                f"recovered state root {rebuilt.hex()[:16]}… does not "
                f"match the sealed tip root {claimed.hex()[:16]}…"
            )

    # Receipt retention: replay may have gone further back than the
    # window (anchor granularity); trim to the newest N blocks.
    if receipt_history_blocks is not None:
        for block, _ in pairs[:max(0, len(pairs) - receipt_history_blocks)]:
            node.receipts.pop(block.hash(), None)

    tracker = HotspotTracker()
    for block, _ in pairs:
        tracker.observe_block(block.transactions)

    if registry.enabled:
        registry.counter("storage.recovered_blocks").inc(replayed)

    return RecoveryResult(
        node=node,
        height=len(pairs),
        snapshot_height=anchor_height,
        replayed_blocks=replayed,
        truncated_records=truncated_records if corruption else 0,
        truncated_bytes=truncated_bytes,
        corruption=corruption,
        skipped_snapshots=skipped,
        spilled_pending=_count_spilled(data_dir),
        state_digest=codec.state_digest_bytes(node.state),
        tracker=tracker,
        warnings=warnings,
    )


def attach(
    node: Node,
    data_dir: str,
    config=None,
    receipt_history_blocks: int | None = 1024,
    fault_injector=None,
) -> RecoveryResult | None:
    """Make *node* durable in *data_dir*, recovering first if needed.

    Fresh directory: writes the genesis snapshot for the node's current
    state and starts logging. Existing store: runs :func:`recover`,
    transplants the recovered chain/state/receipts into *node*, then
    re-admits any spilled mempool transactions (consuming the spill
    file) and counts them via ``storage.mempool_respilled``. Returns
    the :class:`RecoveryResult` when a recovery ran, else ``None``.
    """
    from ..chain.mempool import AdmissionError
    from .config import StorageConfig
    from .store import ChainStore

    # Keep enough snapshots that a bounded recovery can anchor at or
    # below ``wal_height - receipt_history_blocks`` — pruning to a bare
    # count would silently push the anchor back to genesis and turn
    # bounded recovery into a full replay.
    config = config or StorageConfig()
    if receipt_history_blocks is not None:
        needed = (
            receipt_history_blocks // config.snapshot_interval_blocks + 2
        )
        config = dataclasses.replace(
            config,
            retain_snapshots=max(config.retain_snapshots, needed),
        )

    result = None
    if has_store(data_dir):
        result = recover(
            data_dir, receipt_history_blocks=receipt_history_blocks
        )
        node.state = result.node.state
        node.mempool.state = node.state
        node.chain = result.node.chain
        node.receipts = result.node.receipts
        if node.trie is not None:
            # The transplant replaced the state object wholesale; the
            # trie must re-bind (and re-enable first-touch capture) on
            # the recovered state.
            node.attach_trie()

    store = ChainStore(data_dir, config, fault_injector=fault_injector)
    store.init_genesis(node.state, state_root=node.state_root)

    respilled = 0
    for tx, bloom_bytes in store.load_mempool(delete=True):
        bloom = (
            AccessBloom.from_bytes(bloom_bytes)
            if bloom_bytes is not None
            else None
        )
        try:
            if node.mempool.add(tx, bloom=bloom):
                respilled += 1
        except AdmissionError:
            # Stale against the recovered state (nonce consumed,
            # balance spent) or a gossip duplicate: drop it, exactly
            # as live admission would.
            continue
    if respilled:
        registry = get_registry()
        if registry.enabled:
            registry.counter("storage.mempool_respilled").inc(respilled)
    if result is not None:
        result.spilled_pending = respilled

    node.store = store
    return result


def has_store(data_dir: str) -> bool:
    """True when *data_dir* already holds a chain store."""
    if not os.path.isdir(data_dir):
        return False
    if os.path.exists(os.path.join(data_dir, WAL_NAME)):
        return True
    return bool(snapshots.list_snapshots(data_dir))


@dataclass
class StoreReport:
    """What ``repro verify-store`` found (``ok`` drives the exit code)."""

    wal_records: int = 0
    wal_bytes: int = 0
    chain_height: int = 0
    corruption: str | None = None
    mid_log: bool = False
    truncated_bytes: int = 0
    snapshots: list[tuple[int, str]] = field(default_factory=list)
    damaged_snapshots: list[str] = field(default_factory=list)
    spilled_pending: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """False on unrecoverable damage (tail tears stay recoverable)."""
        return not self.mid_log and not self.damaged_snapshots

    def to_dict(self) -> dict:
        return {
            "walRecords": self.wal_records,
            "walBytes": self.wal_bytes,
            "chainHeight": self.chain_height,
            "corruption": self.corruption,
            "midLogCorruption": self.mid_log,
            "truncatedBytes": self.truncated_bytes,
            "snapshots": [
                {"height": height, "path": path}
                for height, path in self.snapshots
            ],
            "damagedSnapshots": list(self.damaged_snapshots),
            "spilledPending": self.spilled_pending,
            "ok": self.ok,
            "notes": list(self.notes),
        }


def verify_store(data_dir: str) -> StoreReport:
    """Read-only integrity check of a data directory.

    Never mutates anything: scans the WAL (framing + CRC + structural
    decode + height/parent linkage), validates every snapshot against
    its own digest and the WAL stamp at its height, and decodes the
    spilled mempool. Mid-log corruption or damaged snapshots make the
    report not-``ok``; a torn tail alone is recoverable and only noted.
    """
    data_dir = str(data_dir)
    report = StoreReport()
    scan = scan_wal(os.path.join(data_dir, WAL_NAME))
    report.wal_records = len(scan.records)
    report.wal_bytes = scan.file_bytes
    report.corruption = scan.corruption
    report.truncated_bytes = scan.truncated_bytes
    report.mid_log = scan.mid_log_corruption

    pairs, decode_reason, bad_index = _decode_chain(scan.records)
    report.chain_height = len(pairs)
    if decode_reason is not None:
        if bad_index < len(scan.records) - 1:
            report.mid_log = True
        report.corruption = report.corruption or decode_reason
        report.notes.append(decode_reason)
    if scan.corruption is not None:
        report.notes.append(
            f"tail damage: {scan.corruption} "
            f"({scan.truncated_bytes} bytes beyond the valid prefix)"
        )
    if report.mid_log:
        report.notes.append(
            "mid-log corruption: valid records exist beyond the damage"
        )

    if os.path.isdir(data_dir):
        for height, path in snapshots.list_snapshots(data_dir):
            try:
                loaded_height, digest, _state = snapshots.read_snapshot(
                    path
                )
            except CorruptSnapshotError as exc:
                report.damaged_snapshots.append(path)
                report.notes.append(str(exc))
                continue
            if loaded_height != height:
                report.damaged_snapshots.append(path)
                report.notes.append(f"{path}: height field mismatch")
                continue
            if 0 < height <= len(pairs) and digest != pairs[height - 1][1]:
                report.damaged_snapshots.append(path)
                report.notes.append(
                    f"{path}: digest disagrees with the WAL stamp"
                )
                continue
            report.snapshots.append((height, path))

    report.spilled_pending = _count_spilled(data_dir)
    return report
